"""Serving top-k at scale: micro-batching, sharding and caching.

The paper measures algorithms one problem at a time; a deployment serves
a *stream* of problems against latency SLOs.  This example drives the
:mod:`repro.serve` subsystem three ways:

1. a load test at 200 QPS — micro-batches amortise launch overhead and
   multiply capacity over sequential per-request dispatch;
2. a hot-query workload — the LRU result cache answers repeats without
   touching the device;
3. a sharded selection — one big problem split across 4 simulated
   devices, merged hierarchically, identical to the single-shot answer.

Usage::

    python examples/serving.py
"""

from __future__ import annotations

import numpy as np

from repro import topk
from repro.serve import LoadSpec, ServeConfig, run_serve_bench, sharded_topk


def main() -> None:
    # --- 1. closed-loop load test ------------------------------------------
    spec = LoadSpec(qps=200, duration_s=2.0, n=1 << 16, k=64)
    report, _service = run_serve_bench(spec, ServeConfig())
    print(report.format())
    print(
        f"\nbatching pays: {report.stats.mean_occupancy:.1f} requests share "
        f"each launch set -> {report.speedup:.1f}x the sequential capacity"
    )

    # --- 2. hot queries hit the result cache --------------------------------
    hot = LoadSpec(qps=200, duration_s=2.0, n=1 << 16, k=64, payload_pool=16)
    hot_report, _ = run_serve_bench(hot, ServeConfig())
    cache = hot_report.stats.cache
    print(
        f"\nhot-query pool of 16 payloads: {cache['result_hits']} of "
        f"{hot_report.stats.served} requests served from the LRU cache"
    )

    # --- 3. shard a big problem across simulated devices --------------------
    rng = np.random.default_rng(3)
    data = rng.standard_normal(1 << 20).astype(np.float32)
    single = topk(data, 128, algo="air_topk", largest=True)
    shard = sharded_topk(data, 128, shards=4, algo="air_topk", largest=True)
    assert np.array_equal(single.values, shard.values)
    assert np.array_equal(single.indices, shard.indices)
    print(
        f"\nsharded selection ({shard.algo}): identical results, "
        f"{single.time * 1e6:.1f} us single device vs "
        f"{shard.time * 1e6:.1f} us on 4 (per-shard selection + merge)"
    )


if __name__ == "__main__":
    main()
