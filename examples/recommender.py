"""Top-N recommendation serving: batched largest-k over score matrices.

The paper's introduction cites recommender systems as a core top-k
consumer: a serving tier scores every candidate item per user and returns
the N best.  The batch dimension is what matters here — Sec. 5.1's batch
size 100 "is usually large enough for online services" — so this example
runs batched selection the way a ranking service would, and shows why a
device-resident batched algorithm (AIR Top-K) is the right choice over
the per-problem baselines.

Usage::

    python examples/recommender.py
"""

from __future__ import annotations

import numpy as np

from repro import check_topk, topk


def score_batch(
    num_users: int, num_items: int, dim: int, seed: int
) -> np.ndarray:
    """Matrix-factorisation scores: user and item embeddings, dot products."""
    rng = np.random.default_rng(seed)
    users = rng.standard_normal((num_users, dim)).astype(np.float32)
    items = rng.standard_normal((num_items, dim)).astype(np.float32)
    return (users @ items.T) / np.float32(np.sqrt(dim))


def main() -> None:
    num_users, num_items, top_n = 100, 200_000, 20
    scores = score_batch(num_users, num_items, dim=64, seed=11)

    # --- serve one request batch through the facade -------------------------
    ranked = topk(scores, top_n, largest=True)
    values, item_ids = ranked.values, ranked.indices
    check_topk(scores, values, item_ids, largest=True)
    print(
        f"ranked {num_items:,} items for {num_users} users; "
        f"user 0's top items: {item_ids[0][:5]} "
        f"(scores {np.round(values[0][:5], 3)})"
    )

    # --- why batching on-device matters -------------------------------------
    print(f"\nbatch of {num_users} selections, top-{top_n} each:")
    for algo in ("air_topk", "grid_select", "block_select", "radix_select"):
        r = topk(scores, top_n, algo=algo, largest=True)
        c = r.device.counters
        print(
            f"  {algo:13s} {r.time * 1e6:9.1f} us "
            f"({c.kernel_launches:4d} launches, {c.syncs:3d} syncs)"
        )
    print(
        "  -> the host-coordinated baseline pays its launch/sync tax per "
        "user; the batched methods amortise one launch set over the batch."
    )

    # --- per-user latency under a diurnal burst -----------------------------
    burst = topk(scores[:10], top_n, algo="air_topk", largest=True)
    print(
        f"\n10-user burst served in {burst.time * 1e6:.1f} us simulated "
        f"({burst.time / 10 * 1e6:.2f} us/user)"
    )


if __name__ == "__main__":
    main()
