"""On-the-fly selection with GridSelectStream.

WarpSelect's signature capability — kept by GridSelect (paper Sec. 4) — is
consuming data as it is produced, without materialising the full list: the
structure always holds the top-k of everything seen so far.  The paper's
motivating use is fusing selection into a distance-computation kernel; the
same interface serves any producer, e.g. scoring documents as they stream
out of an index.

Usage::

    python examples/streaming_topk.py
"""

from __future__ import annotations

import numpy as np

from repro import GridSelectStream, topk
from repro.datagen import distance_array, make_dataset


def main() -> None:
    rng = np.random.default_rng(5)
    k = 50

    # --- a score stream arriving in chunks --------------------------------
    stream = GridSelectStream(k)
    total = 0
    for step in range(20):
        chunk = rng.standard_normal(rng.integers(1_000, 50_000)).astype(np.float32)
        stream.push(chunk)
        total += chunk.size
        if step % 5 == 4:
            values, _ = stream.topk()
            print(
                f"after {total:>7,} elements: current best {values[0]:+.3f}, "
                f"k-th best {values[-1]:+.3f}"
            )

    values, indices = stream.topk()
    print(
        f"\nfinal top-{k} over {stream.count_seen:,} streamed elements; "
        f"simulated device time {stream.device.elapsed * 1e6:.1f} us"
    )

    # --- equivalence with offline selection --------------------------------
    # replay the same stream offline and compare
    rng = np.random.default_rng(5)
    chunks = [
        rng.standard_normal(rng.integers(1_000, 50_000)).astype(np.float32)
        for _ in range(20)
    ]
    data = np.concatenate(chunks)
    offline = topk(data, k, algo="grid_select")
    assert np.array_equal(values, offline.values)
    print("streaming result matches offline GridSelect exactly")

    # --- streaming ANN: score candidates shard by shard --------------------
    dataset = make_dataset("sift", 100_000, seed=9)
    stream = GridSelectStream(10)
    for shard in range(10):
        lo = shard * 10_000
        dists = distance_array(dataset, 0, subset=lo + 10_000)[lo:]
        stream.push(dists)
    _, neighbour_ids = stream.topk()
    print(f"\n10 nearest neighbours found shard-by-shard: {np.sort(neighbour_ids)}")


if __name__ == "__main__":
    main()
