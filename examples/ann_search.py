"""Approximate-nearest-neighbour search: the paper's Sec. 5.5 workload.

ANN search scores a query against a set of candidate vectors and keeps the
k nearest — the top-k call sits on the critical path of every query.  This
example builds DEEP1B-like and SIFT-like vector sets (the offline stand-ins
for the paper's datasets), runs the full distance->top-k pipeline, and
compares the selection methods at the paper's K values (10 and 100).

Usage::

    python examples/ann_search.py
"""

from __future__ import annotations

import numpy as np

from repro import A100, Device, check_topk, topk
from repro.datagen import distance_array, make_dataset


def search(dataset, query_index: int, k: int, algo: str):
    """One end-to-end query: distances + selection on one device."""
    device = Device(A100)
    dists = distance_array(dataset, query_index, device=device)
    result = topk(dists, k, algo=algo, device=device)
    check_topk(dists, result.values, result.indices)
    return result, device


def main() -> None:
    for name in ("deep1b", "sift"):
        dataset = make_dataset(name, 200_000, seed=42)
        print(
            f"\n=== {dataset.name}: {dataset.num_vectors} vectors, "
            f"{dataset.dim} dimensions ==="
        )

        for k in (10, 100):
            print(f"\n  top-{k} neighbours of query 0:")
            for algo in ("air_topk", "grid_select", "block_select", "sort"):
                result, device = search(dataset, 0, k, algo)
                select_time = device.kernel_stats.get(
                    "ComputeDistances"
                ).time  # distance kernel time
                total = device.elapsed
                print(
                    f"    {algo:13s} end-to-end {total * 1e6:8.1f} us "
                    f"(selection share: "
                    f"{(total - select_time) / total * 100:5.1f}%)"
                )

        # nearest neighbours are the same regardless of the selector
        base, _ = search(dataset, 0, 10, "air_topk")
        alt, _ = search(dataset, 0, 10, "grid_select")
        assert np.array_equal(np.sort(base.indices), np.sort(alt.indices))
        print(
            f"\n  query 0's 10 nearest neighbours: {np.sort(base.indices)[:10]}"
        )


if __name__ == "__main__":
    main()
