"""Deep Gradient Compression: top 0.1% of gradient magnitudes.

The paper's introduction motivates large-K top-k with Deep Gradient
Compression (Lin et al., ICLR'18): distributed training communicates only
the largest 0.1% of gradient entries per step, so every step runs a
top-k over millions of values.  This example compresses a synthetic
gradient tensor, reports the sparsification error, and compares selection
methods at DGC's scale.

Usage::

    python examples/gradient_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import check_topk, topk
from repro.perf import simulate_topk


def make_gradients(n: int, seed: int) -> np.ndarray:
    """Heavy-tailed synthetic gradients (most entries near zero)."""
    rng = np.random.default_rng(seed)
    grads = rng.standard_normal(n).astype(np.float32) * 1e-3
    hot = rng.integers(0, n, size=n // 50)
    grads[hot] += rng.standard_normal(hot.size).astype(np.float32) * 0.1
    return grads


def compress(grads: np.ndarray, ratio: float, algo: str = "air_topk"):
    """Keep the top ``ratio`` fraction of entries by magnitude."""
    k = max(1, int(grads.size * ratio))
    result = topk(np.abs(grads), k, algo=algo, largest=True)
    check_topk(np.abs(grads), result.values, result.indices, largest=True)
    sparse = np.zeros_like(grads)
    sparse[result.indices] = grads[result.indices]
    return sparse, result


def main() -> None:
    n = 1 << 22  # ~4M parameters
    ratio = 0.001  # DGC's top 0.1%
    grads = make_gradients(n, seed=3)

    sparse, result = compress(grads, ratio)
    kept = int((sparse != 0).sum())
    energy = float((sparse**2).sum() / (grads**2).sum())
    print(f"gradient tensor: {n} entries; kept top {ratio:.1%} = {kept} entries")
    print(f"retained gradient energy: {energy:.1%}")
    print(
        f"compression ratio: {n / kept:.0f}x, "
        f"selection time (simulated A100): {result.time * 1e6:.1f} us"
    )

    # --- which selector should a DGC implementation use? -------------------
    # k = 0.1% of millions-to-billions of entries exceeds the queue-method
    # caps (k <= 2048), so radix selection is the only fast option — one of
    # the paper's motivating points for a general algorithm.
    print(f"\nselection methods at DGC scale (n=2^22, k={int(n * ratio)}):")
    for algo in ("air_topk", "radix_select", "sort", "bucket_select"):
        r = topk(np.abs(grads), int(n * ratio), algo=algo, largest=True)
        print(f"  {algo:13s} {r.time * 1e6:9.1f} us")
    from repro import UnsupportedProblem, get_algorithm

    try:
        topk(np.abs(grads), int(n * ratio), algo="warp_select", largest=True)
    except UnsupportedProblem as exc:
        print(f"  warp_select   unsupported: {exc}")

    # --- a billion-parameter model, via the scaled-execution driver --------
    print("\nprojected selection times at n=2^30 (billion-scale model):")
    for algo in ("air_topk", "radix_select", "sort"):
        run = simulate_topk(
            algo, distribution="normal", n=1 << 30, k=(1 << 30) // 1000
        )
        print(f"  {algo:13s} {run.time * 1e3:9.2f} ms  [{run.mode}]")


if __name__ == "__main__":
    main()
