"""Quickstart: select the top-k elements and inspect the simulated run.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import available_algorithms, check_topk, topk


def main() -> None:
    rng = np.random.default_rng(7)
    data = rng.standard_normal(1 << 20).astype(np.float32)
    k = 100

    # --- the one-liner: AIR Top-K on a simulated A100 ---------------------
    result = topk(data, k)
    print(f"smallest {k} values, best first: {result.values[:5]} ...")
    print(f"their positions in the input:   {result.indices[:5]} ...")
    print(f"simulated time on {result.device.spec.name}: {result.time * 1e6:.1f} us")

    # outputs are verifiable against a full-sort oracle
    check_topk(data, result.values, result.indices)
    print("output verified against the oracle")

    # --- largest-k, different algorithm, different GPU --------------------
    largest = topk(data, k, algo="grid_select", largest=True, device="H100")
    print(
        f"\nlargest {k} via GridSelect on H100: "
        f"{largest.values[:3]} ... in {largest.time * 1e6:.1f} us"
    )

    # --- what did the device do? ------------------------------------------
    c = result.device.counters
    print(
        f"\nAIR Top-K run anatomy: {c.kernel_launches} kernel launches, "
        f"{c.bytes_total / 1e6:.1f} MB of device traffic, "
        f"{c.pcie_transfers} PCIe transfers"
    )
    print("\ntimeline:")
    print(result.device.timeline.render(width=70))

    # --- compare the whole roster on one problem ---------------------------
    print(f"\nall algorithms on n=2^20, k={k} (simulated A100):")
    for info in available_algorithms():
        r = topk(data, k, algo=info.name, device="A100")
        check_topk(data, r.values, r.indices)
        batched = "batched" if info.batched_execution else "per-problem"
        print(f"  {info.name:15s} {r.time * 1e6:9.1f} us  [{info.library}, {batched}]")


if __name__ == "__main__":
    main()
