"""High-throughput virtual screening: top 50,000 ligands from 10^8 scores.

The paper's introduction cites drug discovery (Graff et al.): docking
pipelines score ~10^8 molecules and carry the best ~50,000 forward.  This
is the large-N, large-K regime where the queue-based methods cannot run at
all (K far above 2048) and full sorting wastes an order of magnitude of
bandwidth.

The 10^8-score selection is projected with the scaled-execution driver
(DESIGN.md Sec. 2); a 10^6-score screen runs exactly.

Usage::

    python examples/virtual_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import check_topk, topk
from repro.bench import format_time
from repro.perf import simulate_topk


def docking_scores(n: int, seed: int) -> np.ndarray:
    """Synthetic docking scores: lower is better, roughly normal with a
    binding tail."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(-6.0, 1.5, n).astype(np.float32)
    binders = rng.integers(0, n, size=n // 1000)
    scores[binders] -= rng.exponential(2.0, binders.size).astype(np.float32)
    return scores


def main() -> None:
    # --- an exact 10^6-molecule screen -------------------------------------
    n, k = 1_000_000, 500
    scores = docking_scores(n, seed=21)
    hits = topk(scores, k)  # lowest docking score = strongest binder
    check_topk(scores, hits.values, hits.indices)
    print(
        f"screened {n:,} molecules, kept {k}; best score "
        f"{hits.values[0]:.2f}, cutoff {hits.values[-1]:.2f}"
    )
    print(f"selection time (simulated A100): {format_time(hits.time)}")

    # --- the paper-scale screen: 10^8 molecules, top 50,000 ----------------
    big_n, big_k = 10**8, 50_000
    print(f"\nprojected selection of top {big_k:,} from {big_n:,} scores:")
    for algo in ("air_topk", "radix_select", "sample_select", "sort"):
        run = simulate_topk(algo, distribution="normal", n=big_n, k=big_k)
        print(f"  {algo:13s} {format_time(run.time):>10s}  [{run.mode}]")
    print(
        "  (warp/block/grid select cannot run: k = 50,000 exceeds their "
        "2048-result structures)"
    )

    # --- screening in batches: 100 receptor pockets at once ----------------
    pockets = 20
    batch_scores = np.stack(
        [docking_scores(200_000, seed=100 + i) for i in range(pockets)]
    )
    batch_hits = topk(batch_scores, 200)
    check_topk(batch_scores, batch_hits.values, batch_hits.indices)
    print(
        f"\nbatched screen: {pockets} pockets x 200,000 molecules in "
        f"{format_time(batch_hits.time)} "
        f"({batch_hits.device.counters.kernel_launches} kernel launches total)"
    )


if __name__ == "__main__":
    main()
