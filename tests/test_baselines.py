"""Per-baseline behavioural tests: each method's signature cost structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro import check_topk, topk
from repro.algos import (
    AlgorithmInfo,
    BitonicTopK,
    BlockSelect,
    BucketSelect,
    QuickSelect,
    RadixSelect,
    SampleSelect,
    SortTopK,
    WarpSelect,
    algorithm_names,
    available_algorithms,
    get_algorithm,
)
from repro.datagen import generate


class TestRegistry:
    def test_full_roster(self):
        """The paper's Table 1 roster, the two contributions, and the
        cost-model dispatcher."""
        assert algorithm_names() == [
            "air_topk",
            "auto",
            "bitonic_topk",
            "block_select",
            "bucket_approx",
            "bucket_select",
            "drtopk_hybrid",
            "grid_select",
            "quick_select",
            "radix_select",
            "sample_select",
            "sort",
            "twostage_approx",
            "warp_select",
        ]

    def test_capability_records(self):
        """available_algorithms() returns structured capability records."""
        infos = available_algorithms()
        assert all(isinstance(i, AlgorithmInfo) for i in infos)
        assert [i.name for i in infos] == algorithm_names()
        by_name = {i.name: i for i in infos}
        assert by_name["warp_select"].max_k == 2048
        assert by_name["bitonic_topk"].max_k == 256
        assert by_name["grid_select"].batched_execution
        assert not by_name["sort"].batched_execution
        assert "float32" in by_name["air_topk"].dtypes
        # tunables are discovered from the constructors
        assert "alpha" in by_name["air_topk"].tunables
        assert "candidates" in by_name["auto"].tunables

    def test_kwargs_forwarded(self):
        air = get_algorithm("air_topk", alpha=64.0, adaptive=False)
        assert air.alpha == 64.0 and air.adaptive is False

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_algorithm("radixsort9000")

    def test_table1_metadata(self):
        """Library provenance and taxonomy match the paper's Table 1."""
        expect = {
            "sort": ("CUB", "sorting"),
            "warp_select": ("Faiss", "partial sorting"),
            "block_select": ("Faiss", "partial sorting"),
            "bitonic_topk": ("DrTopK", "partial sorting"),
            "quick_select": ("GpuSelection", "partition-based"),
            "bucket_select": ("GpuSelection", "partition-based"),
            "sample_select": ("GpuSelection", "partition-based"),
            "radix_select": ("DrTopK", "partition-based"),
        }
        for name, (library, category) in expect.items():
            algo = get_algorithm(name)
            assert algo.library == library
            assert algo.category == category

    def test_on_the_fly_flags(self):
        """Sec. 2.2: the queue family processes data on-the-fly."""
        for name in ("warp_select", "block_select", "grid_select"):
            assert get_algorithm(name).on_the_fly
        for name in ("sort", "radix_select", "air_topk", "bitonic_topk"):
            assert not get_algorithm(name).on_the_fly


class TestSort:
    def test_kernel_structure(self, rng):
        """One histogram + 4 onesweep passes + gather, per problem."""
        data = rng.standard_normal(10000).astype(np.float32)
        r = topk(data, 10, algo="sort")
        assert r.device.counters.kernel_launches == 6

    def test_batch_serialises(self, rng):
        data = rng.standard_normal((5, 4000)).astype(np.float32)
        r = topk(data, 10, algo="sort")
        assert r.device.counters.kernel_launches == 5 * 6

    def test_moves_full_payload(self, rng):
        """Sorting moves ~16 bytes per element per pass — the waste the
        paper's Sec. 1 motivates partial methods with."""
        n = 1 << 16
        data = rng.standard_normal(n).astype(np.float32)
        r = topk(data, 10, algo="sort")
        assert r.device.counters.bytes_total > 60.0 * n

    def test_k_independent_cost(self, rng):
        data = rng.standard_normal(1 << 15).astype(np.float32)
        small = topk(data, 8, algo="sort").time
        large = topk(data, 8192, algo="sort").time
        assert large < small * 1.5


class TestRadixSelect:
    def test_host_round_trips_per_iteration(self, rng):
        """Every iteration copies the histogram down and parameters up —
        the overhead AIR Top-K eliminates (Fig. 8)."""
        data = rng.standard_normal(1 << 16).astype(np.float32)
        r = topk(data, 100, algo="radix_select")
        c = r.device.counters
        assert c.d2h_transfers >= 2
        assert c.h2d_transfers >= 2
        assert c.syncs > 2

    def test_batch_serialises(self, rng):
        data = rng.standard_normal((4, 8192)).astype(np.float32)
        single = topk(data[:1], 64, algo="radix_select")
        batch = topk(data, 64, algo="radix_select")
        assert batch.device.counters.d2h_transfers == pytest.approx(
            4 * single.device.counters.d2h_transfers, abs=4
        )

    def test_adversarial_skips_identity_filters(self):
        """When one bucket holds everything, the filter pass is skipped."""
        adv = generate("adversarial", 1 << 15, seed=1, adversarial_m=20)[0]
        uni = generate("uniform", 1 << 15, seed=1)[0]
        r_adv = topk(adv, 100, algo="radix_select")
        r_uni = topk(uni, 100, algo="radix_select")
        adv_filters = r_adv.device.kernel_stats.get("Filter")
        uni_filters = r_uni.device.kernel_stats.get("Filter")
        assert adv_filters.launches < uni_filters.launches

    def test_eight_bit_digits(self):
        assert RadixSelect.digit_bits == 8


class TestWarpBlockSelect:
    def test_single_block_per_problem(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        for algo in ("warp_select", "block_select"):
            r = topk(data, 100, algo=algo)
            assert r.device.counters.kernel_launches == 1

    def test_block_faster_than_warp(self, rng):
        """BlockSelect's 4 warps consistently beat WarpSelect (Sec. 5.3)."""
        data = rng.standard_normal(1 << 16).astype(np.float32)
        warp = topk(data, 100, algo="warp_select")
        block = topk(data, 100, algo="block_select")
        assert block.time < warp.time

    def test_batch_parallelises_across_blocks(self, rng):
        """Faiss launches one block per query: batch 8 runs concurrently."""
        data = rng.standard_normal((8, 1 << 14)).astype(np.float32)
        single = topk(data[0], 64, algo="block_select")
        batch = topk(data, 64, algo="block_select")
        assert batch.time < 3 * single.time

    def test_lane_counts(self):
        assert WarpSelect().lanes == 32
        assert BlockSelect().lanes == 128

    def test_max_k(self):
        assert WarpSelect.max_k == 2048
        assert BlockSelect.max_k == 2048


class TestBitonicTopK:
    def test_max_k(self):
        assert BitonicTopK.max_k == 256

    def test_non_power_of_two_k(self, rng):
        data = rng.standard_normal(5000).astype(np.float32)
        r = topk(data, 100, algo="bitonic_topk")  # internally padded to 128
        check_topk(data, r.values, r.indices)

    def test_phase_count(self, rng):
        """log2(n/k) merge-reduce phases after the local sort."""
        data = rng.standard_normal(64 * 128).astype(np.float32)
        r = topk(data, 128, algo="bitonic_topk")
        merge_kernels = [
            name for name in r.device.kernel_stats if name.startswith("BitonicMergeReduce")
        ]
        assert len(merge_kernels) == 6  # 64 runs -> 6 halvings

    def test_time_grows_with_k(self, rng):
        from repro.perf import simulate_topk

        t8 = simulate_topk("bitonic_topk", distribution="uniform", n=1 << 22, k=8).time
        t256 = simulate_topk(
            "bitonic_topk", distribution="uniform", n=1 << 22, k=256
        ).time
        assert t256 > t8


class TestQuickSelect:
    def test_host_coordination(self, rng):
        data = rng.standard_normal(1 << 16).astype(np.float32)
        r = topk(data, 100, algo="quick_select")
        assert r.device.counters.d2h_transfers >= 1

    def test_deterministic_given_seed(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        a = topk(data, 50, algo="quick_select", seed=7)
        b = topk(data, 50, algo="quick_select", seed=7)
        assert np.array_equal(a.indices, b.indices)
        assert a.time == b.time

    def test_terminal_sort_for_small_input(self, rng):
        data = rng.standard_normal(512).astype(np.float32)
        r = topk(data, 10, algo="quick_select")
        assert "QuickSelectTerminalSort" in r.device.kernel_stats
        assert "QuickSelectCount" not in r.device.kernel_stats


class TestBucketSelect:
    def test_minmax_reduction_per_iteration(self, rng):
        data = rng.standard_normal(1 << 16).astype(np.float32)
        r = topk(data, 100, algo="bucket_select")
        assert "MinMaxReduce" in r.device.kernel_stats

    def test_degenerate_all_equal(self):
        data = np.full(1 << 15, 7.0, dtype=np.float32)
        r = topk(data, 100, algo="bucket_select")
        check_topk(data, r.values, r.indices)

    def test_extreme_spread(self):
        """Bucket boundaries with min/max at float extremes must not
        overflow the index arithmetic."""
        rng = np.random.default_rng(1)
        data = rng.standard_normal(1 << 15).astype(np.float32)
        data[0] = -3.4e38
        data[1] = 3.4e38
        r = topk(data, 100, algo="bucket_select")
        check_topk(data, r.values, r.indices)


class TestSampleSelect:
    def test_sample_sort_kernel(self, rng):
        data = rng.standard_normal(1 << 16).astype(np.float32)
        r = topk(data, 100, algo="sample_select")
        assert "SampleGatherSort" in r.device.kernel_stats

    def test_massive_duplicates_terminate(self, rng):
        """Splitters drawn from two distinct values cannot split further;
        the terminal sort must still finish the job."""
        data = rng.choice(np.float32([1.0, 2.0]), size=1 << 15)
        r = topk(data, 5000, algo="sample_select")
        check_topk(data, r.values, r.indices)

    def test_sample_size_bounded_by_candidates(self, rng):
        data = rng.standard_normal(2000).astype(np.float32)
        r = topk(data, 3, algo="sample_select")
        check_topk(data, r.values, r.indices)
