"""Consistency checks between documentation and the code it describes."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_exists_with_paper_check(self):
        text = read("DESIGN.md")
        assert "Paper check" in text
        assert "3581784.3607062" in text  # the paper's DOI

    def test_bench_targets_exist(self):
        """Every bench target DESIGN.md names is a real file."""
        text = read("DESIGN.md")
        for target in re.findall(r"`benchmarks/([\w.]+\.py)`", text):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_packages_exist(self):
        text = read("DESIGN.md")
        for pkg in re.findall(r"`repro\.(\w+)`", text):
            assert (
                (ROOT / "src" / "repro" / pkg).exists()
                or (ROOT / "src" / "repro" / f"{pkg}.py").exists()
            ), pkg


class TestExperimentsDoc:
    def test_every_paper_experiment_covered(self):
        text = read("EXPERIMENTS.md")
        for item in (
            "Table 2",
            "Fig. 6",
            "Fig. 7",
            "Fig. 8",
            "Table 3",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11",
            "Fig. 12",
            "Fig. 13",
        ):
            assert item in text, item

    def test_bench_modules_referenced_exist(self):
        text = read("EXPERIMENTS.md")
        for target in re.findall(r"`(test_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / target).exists(), target


class TestReadme:
    def test_roster_matches_registry(self):
        from repro import algorithm_names

        text = read("README.md")
        for algo in algorithm_names():
            if algo == "drtopk_hybrid":
                continue  # extension, documented in docs/ALGORITHMS.md
            assert f"`{algo}`" in text, algo

    def test_quickstart_code_runs(self):
        """The README's quickstart block executes as written."""
        text = read("README.md")
        block = re.search(
            r"## Quickstart\n\n```python\n(.*?)```", text, re.DOTALL
        ).group(1)
        namespace: dict = {}
        exec(block, namespace)  # noqa: S102 - executing our own README

    def test_doc_links_resolve(self):
        text = read("README.md")
        for link in re.findall(r"\]\(([\w/]+\.md)\)", text):
            assert (ROOT / link).exists(), link


class TestExamples:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "ann_search",
            "gradient_compression",
            "virtual_screening",
            "streaming_topk",
            "recommender",
        ],
    )
    def test_example_exists_with_main(self, name):
        text = (ROOT / "examples" / f"{name}.py").read_text()
        assert "def main()" in text
        assert '__main__' in text
