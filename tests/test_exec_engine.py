"""Tests for the parallel sweep execution engine (repro.exec).

The load-bearing guarantee is determinism: a sweep's CSV must be
byte-identical whether it ran inline or sharded over a process pool —
pinned against a committed golden file so a behaviour change in *either*
path (or in the algorithms underneath) is caught, not silently absorbed.
The failure-isolation contract (retry-once, error rows, timeout rows) is
exercised on the inline path by stubbing the point runner.
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.bench.report import write_csv
from repro.bench.runner import BenchPoint, sweep
from repro.exec import (
    PointSpec,
    ProgressEvent,
    build_grid,
    default_chunk_size,
    execute_point,
    parallel_sweep,
    point_seed,
)
from repro.exec import worker as worker_mod
from repro.faults import FaultPlan, FaultRule

GOLDEN_GRID = dict(
    algos=("air_topk", "sort", "radix_select", "bitonic_topk", "auto"),
    distributions=("uniform",),
    ns=(1024, 4096),
    ks=(16, 2048),
    batches=(1,),
    seed=0,
)
GOLDEN = "tests/data/golden_sweep.csv"


def golden_bytes() -> bytes:
    from pathlib import Path

    return (Path(__file__).parent / "data" / "golden_sweep.csv").read_bytes()


class TestGoldenRegression:
    @pytest.mark.parametrize("workers", (1, 4))
    def test_csv_matches_golden(self, workers, tmp_path):
        """Serial and 4-worker runs both reproduce the committed CSV
        byte for byte."""
        res = sweep(workers=workers, **GOLDEN_GRID)
        path = write_csv(res.points, tmp_path / "sweep.csv")
        assert path.read_bytes() == golden_bytes()

    def test_row_classes_present(self):
        """The golden grid covers every row class the engine can emit."""
        res = sweep(workers=1, **GOLDEN_GRID)
        statuses = {p.status for p in res.points}
        assert statuses == {"ok", "unsupported"}
        details = [p.detail for p in res.points]
        assert any(d.startswith("dispatch=") for d in details)
        assert any("exceeds" in d for d in details)  # k > n rows
        assert any("supports k <=" in d for d in details)  # algo gap rows


class TestPointSeed:
    def test_deterministic(self):
        a = point_seed(0, distribution="uniform", n=1024, k=16, batch=1)
        b = point_seed(0, distribution="uniform", n=1024, k=16, batch=1)
        assert a == b
        assert isinstance(a, int) and 0 <= a < 2**32

    def test_distinct_across_coordinates(self):
        seeds = {
            point_seed(0, distribution=d, n=n, k=k, batch=b)
            for d in ("uniform", "normal")
            for n in (1024, 2048)
            for k in (8, 16)
            for b in (1, 4)
        }
        assert len(seeds) == 16

    def test_depends_on_base_seed(self):
        kw = dict(distribution="uniform", n=1024, k=16, batch=1)
        assert point_seed(0, **kw) != point_seed(1, **kw)


class TestBuildGrid:
    def test_serial_nesting_order(self):
        slots = build_grid(
            algos=("a", "b"),
            distributions=("u", "v"),
            ns=(8,),
            ks=(2, 4),
            batches=(1,),
        )
        coords = [
            (s.distribution, s.batch, s.n, s.k, s.algo)
            for s in slots
            if isinstance(s, PointSpec)
        ]
        assert coords == [
            (d, 1, 8, k, a) for d in ("u", "v") for k in (2, 4) for a in ("a", "b")
        ]
        assert [s.index for s in slots] == list(range(len(slots)))

    def test_k_above_n_becomes_final_row(self):
        slots = build_grid(algos=("a",), ns=(8,), ks=(4, 16))
        assert isinstance(slots[0], PointSpec)
        assert isinstance(slots[1], BenchPoint)
        assert slots[1].status == "unsupported" and "exceeds" in slots[1].detail

    def test_per_point_seed_mode(self):
        shared = build_grid(algos=("a",), ns=(8, 16), ks=(2,), seed=7)
        per = build_grid(
            algos=("a",), ns=(8, 16), ks=(2,), seed=7, seed_mode="per-point"
        )
        assert {s.seed for s in shared} == {7}
        assert len({s.seed for s in per}) == 2

    def test_rejects_unknown_seed_mode(self):
        with pytest.raises(ValueError):
            build_grid(seed_mode="nope")


class TestValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            parallel_sweep(workers=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            parallel_sweep(timeout=-1.0)

    def test_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(1000, 4) == 32  # ceil(1000 / 32)


class TestProgress:
    def test_events_count_up_with_eta(self):
        events: list[ProgressEvent] = []
        parallel_sweep(
            algos=("sort", "air_topk"),
            ns=(1 << 10,),
            ks=(4, 2048),
            progress=events.append,
        )
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)
        assert all(e.eta_s is not None and e.eta_s >= 0 for e in events)
        assert events[-1].fraction == 1.0
        assert events[-1].eta_s == 0.0


def _spec(**overrides) -> PointSpec:
    kw = dict(
        index=0,
        algo="sort",
        distribution="uniform",
        n=1 << 10,
        k=4,
        batch=1,
        spec=None,
        cap=1 << 14,
        seed=0,
        adversarial_m=20,
    )
    kw.update(overrides)
    if kw["spec"] is None:
        from repro.device import A100

        kw["spec"] = A100
    return PointSpec(**kw)


class TestFailureIsolation:
    def test_crash_becomes_error_row(self, monkeypatch):
        def boom(*a, **kw):
            raise RuntimeError("kaput")

        monkeypatch.setattr(worker_mod, "run_point", boom)
        point = execute_point(_spec())
        assert point.status == "error" and point.time is None
        assert "kaput" in point.detail

    def test_retry_once_recovers(self, monkeypatch):
        calls = {"n": 0}
        real = worker_mod.run_point

        def flaky(*a, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(*a, **kw)

        monkeypatch.setattr(worker_mod, "run_point", flaky)
        point = execute_point(_spec())
        assert calls["n"] == 2
        assert point.status == "ok" and point.time is not None

    def test_retries_exhausted(self, monkeypatch):
        calls = {"n": 0}

        def boom(*a, **kw):
            calls["n"] += 1
            raise RuntimeError("persistent")

        monkeypatch.setattr(worker_mod, "run_point", boom)
        execute_point(_spec(retries=1))
        assert calls["n"] == 2  # the attempt plus exactly one retry

    @pytest.mark.skipif(
        not hasattr(signal, "setitimer"), reason="needs POSIX interval timers"
    )
    def test_timeout_becomes_timeout_row(self, monkeypatch):
        calls = {"n": 0}

        def slow(*a, **kw):
            calls["n"] += 1
            time.sleep(5.0)

        monkeypatch.setattr(worker_mod, "run_point", slow)
        start = time.perf_counter()
        point = execute_point(_spec(timeout=0.1))
        assert time.perf_counter() - start < 2.0
        assert point.status == "timeout" and point.time is None
        assert calls["n"] == 1  # a timed-out point is not retried

    def test_error_rows_flow_through_sweep(self, monkeypatch):
        def boom(*a, **kw):
            raise RuntimeError("kaput")

        monkeypatch.setattr(worker_mod, "run_point", boom)
        res = parallel_sweep(algos=("sort",), ns=(1 << 10,), ks=(4,))
        assert [p.status for p in res.points] == ["error"]


class TestWorkerFaults:
    """Injected worker faults (satellite d): deterministic flaky workers,
    retry/backoff, and the workers=1 == workers=N pin under one seed."""

    FLAKY = FaultPlan(
        seed=3,
        rules=(
            FaultRule(kind="worker_crash", rate=0.3, site="exec.point"),
            FaultRule(kind="timeout", rate=0.15, site="exec.point"),
        ),
    )
    GRID = dict(algos=("sort", "air_topk"), ns=(1 << 10, 1 << 11), ks=(16, 32))

    def test_injected_crash_consumes_retries(self):
        plan = FaultPlan(
            seed=3, rules=(FaultRule(kind="worker_crash", rate=0.3),)
        )
        # index 0 with seed 3 crashes on attempt 0 only: the retry recovers
        point = execute_point(_spec(index=0, faults=plan))
        assert point.status == "ok"
        # index 2 crashes on every draw: the default budget (1 retry)
        # exhausts into an error row
        point = execute_point(_spec(index=2, faults=plan))
        assert point.status == "error"
        assert point.detail == "injected worker crash"

    def test_sticky_crash_exhausts_into_error_row(self):
        plan = FaultPlan(
            seed=3,
            rules=(FaultRule(kind="worker_crash", rate=0.3, sticky=True),),
        )
        point = execute_point(_spec(index=0, faults=plan, retries=3))
        assert point.status == "error"
        assert point.detail == "injected worker crash"

    def test_injected_timeout_row_not_retried(self):
        plan = FaultPlan(
            seed=0, rules=(FaultRule(kind="timeout", rate=1.0),)
        )
        point = execute_point(_spec(faults=plan))
        assert point.status == "timeout" and point.time is None
        assert "injected" in point.detail

    def test_backoff_sleeps_between_retries(self, monkeypatch):
        naps: list[float] = []
        monkeypatch.setattr(worker_mod.time, "sleep", naps.append)

        def boom(*a, **kw):
            raise RuntimeError("persistent")

        monkeypatch.setattr(worker_mod, "run_point", boom)
        execute_point(_spec(retries=3, backoff_s=0.01, backoff_cap_s=0.025))
        assert naps == [0.01, 0.02, 0.025]  # capped exponential

    def test_no_backoff_by_default(self, monkeypatch):
        naps: list[float] = []
        monkeypatch.setattr(worker_mod.time, "sleep", naps.append)

        def boom(*a, **kw):
            raise RuntimeError("persistent")

        monkeypatch.setattr(worker_mod, "run_point", boom)
        execute_point(_spec(retries=2))
        assert naps == []

    def test_flaky_sweep_identical_across_worker_counts(self):
        """The acceptance pin: the same fault seed produces the same rows
        at any worker count — injection draws key on the grid index, not
        the process that happens to run the point."""
        serial = parallel_sweep(workers=1, faults=self.FLAKY, **self.GRID)
        pooled = parallel_sweep(workers=4, chunk_size=1, faults=self.FLAKY,
                                **self.GRID)
        assert serial.points == pooled.points
        statuses = {p.status for p in serial.points}
        assert "timeout" in statuses  # chaos actually fired
        rows = [(p.status, p.detail) for p in serial.points
                if p.detail.startswith("injected")]
        assert rows  # at least one injected row, pinned above

    def test_no_plan_unchanged(self):
        """faults=None must reproduce the fault-free sweep exactly."""
        a = parallel_sweep(workers=1, **self.GRID)
        b = parallel_sweep(workers=1, faults=None, **self.GRID)
        assert a.points == b.points
        assert all(p.status == "ok" for p in a.points)


class TestSeedModes:
    def test_per_point_matches_itself_across_workers(self):
        kw = dict(
            algos=("sort", "air_topk"),
            ns=(1 << 10, 1 << 11),
            ks=(4,),
            seed_mode="per-point",
        )
        serial = parallel_sweep(workers=1, **kw)
        pooled = parallel_sweep(workers=2, **kw)
        assert serial.points == pooled.points


class TestCounterMerge:
    """Per-point device counters survive the pool boundary (telemetry
    satellite: workers=1 and workers=N must report identical totals)."""

    GRID = dict(
        algos=("sort", "air_topk", "radix_select"),
        ns=(1 << 10, 1 << 12),
        ks=(16, 2048),
        seed=0,
    )

    def test_ok_rows_carry_counters(self):
        res = parallel_sweep(workers=1, **self.GRID)
        for p in res.points:
            if p.status == "ok":
                assert p.counters is not None
                assert p.counters.kernel_launches > 0
            else:
                assert p.counters is None

    def test_totals_identical_across_worker_counts(self):
        from repro.device import aggregate_counters

        serial = parallel_sweep(workers=1, **self.GRID)
        pooled = parallel_sweep(workers=4, **self.GRID)
        assert serial.points == pooled.points
        total_1 = aggregate_counters(serial.points)
        total_n = aggregate_counters(pooled.points)
        assert total_1 == total_n
        assert total_1.kernel_launches > 0
        assert total_1.bytes_read > 0

    def test_telemetry_merges_worker_spans_and_metrics(self):
        from repro import obs

        with obs.trace_session() as tracer, obs.metrics_session() as registry:
            res = parallel_sweep(workers=2, **self.GRID)
        ok = sum(1 for p in res.points if p.status == "ok")
        # k > n rows are answered by the engine without running a point,
        # so only the executed rows produce a host-side span
        executed = sum(1 for p in res.points if p.k <= p.n)
        point_spans = [e for e in tracer.events if e.cat == "point"]
        assert len(point_spans) == executed
        assert all(e.lane.startswith("host/") for e in point_spans)
        assert len({e.lane for e in point_spans}) >= 2  # both workers ran
        # the engine's own sweep span sits in the main lane
        sweep_spans = [e for e in tracer.events if e.cat == "sweep" and e.name == "sweep"]
        assert len(sweep_spans) == 1 and sweep_spans[0].lane == "host/main"
        # merged metrics tally every point by status
        by_status = {
            key[1][0][1]: c.value
            for key, c in registry._counters.items()
            if key[0] == "sweep.points"
        }
        assert by_status.get("ok") == ok
        assert sum(by_status.values()) == len(res.points)
