"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import A100, Device


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic randomness for tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def device() -> Device:
    """A fresh simulated A100."""
    return Device(A100)


def random_floats(
    rng: np.random.Generator, shape, *, specials: bool = False
) -> np.ndarray:
    """float32 test data, optionally salted with +-inf / NaN / +-0."""
    data = rng.standard_normal(shape).astype(np.float32)
    if specials:
        flat = data.reshape(-1)
        if flat.size >= 8:
            flat[0] = np.inf
            flat[1] = -np.inf
            flat[2] = np.nan
            flat[3] = 0.0
            flat[4] = -0.0
            flat[5] = np.float32(1e-42)  # denormal
    return data
