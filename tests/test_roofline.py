"""Tests for the roofline analyzer and the AIR pass trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIRTopK
from repro.core import PassRecord
from repro.datagen import generate
from repro.device import A100, H100, Device
from repro.perf import (
    render_roofline,
    ridge_intensity,
    roofline_points,
    simulate_topk,
)


class TestRoofline:
    def test_ridge(self):
        assert ridge_intensity(A100) == pytest.approx(19.5e12 / 1.555e12)
        assert ridge_intensity(H100) == pytest.approx(66.9e12 / 3.35e12)

    def test_air_kernels_are_memory_regime(self):
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 22, k=2048
        )
        points = {p.name: p for p in roofline_points(run.device)}
        k1 = points["iteration_fused_kernel(1)"]
        assert k1.regime == "memory"
        assert k1.intensity < ridge_intensity(A100)
        assert 0.5 < k1.efficiency <= 1.0  # near the roof, the Table 3 story

    def test_ceiling_below_roof(self):
        run = simulate_topk("sort", distribution="uniform", n=1 << 20, k=64)
        for p in roofline_points(run.device):
            assert p.achieved_flops <= p.ceiling_flops * (1 + 1e-9)
            assert p.ceiling_flops <= A100.peak_fp32

    def test_render(self):
        run = simulate_topk("air_topk", distribution="uniform", n=1 << 20, k=64)
        text = render_roofline(run.device)
        assert "ridge" in text
        assert "iteration_fused_kernel(1)" in text
        assert "memory" in text

    def test_empty_device(self):
        assert "no kernels" in render_roofline(Device(A100))


class TestAirPassTrace:
    def run_trace(self, dist, n, k, m=20, **kwargs) -> list[PassRecord]:
        air = AIRTopK(**kwargs)
        air.select(generate(dist, n, seed=4, adversarial_m=m)[0], k)
        return air.last_trace

    def test_uniform_small_k_collapses_fast(self):
        trace = self.run_trace("uniform", 1 << 18, 64)
        assert trace[0].candidates_in == 1 << 18
        # a 2048-bucket histogram over continuous data slashes candidates
        assert trace[0].candidates_out < (1 << 18) // 64
        assert trace[1].buffered  # survivors small enough to buffer

    def test_adversarial_m20_trajectory(self):
        """The paper's Sec. 3.2 pathology: pass 0 keeps everything, pass 1
        keeps ~1/4 (bits 20-21 free), nothing is ever buffered."""
        n = 1 << 18
        trace = self.run_trace("adversarial", n, 64, m=20)
        assert trace[0].candidates_out == n
        assert trace[1].candidates_out == pytest.approx(n / 4, rel=0.1)
        assert not any(rec.buffered for rec in trace)

    def test_adversarial_m10_trajectory(self):
        """M=10 leaves bit 10 free in pass 0: ~half survives."""
        n = 1 << 18
        trace = self.run_trace("adversarial", n, 64, m=10)
        assert trace[0].candidates_out == pytest.approx(n / 2, rel=0.1)

    def test_static_ablation_buffers_after_first_pass(self):
        trace = self.run_trace("adversarial", 1 << 16, 64, m=20, adaptive=False)
        assert not trace[0].buffered  # pass 0 has nothing filtered yet
        assert all(rec.buffered for rec in trace[1:])

    def test_candidates_never_increase(self):
        for dist in ("uniform", "normal", "adversarial"):
            trace = self.run_trace(dist, 1 << 16, 100)
            counts = [rec.candidates_out for rec in trace]
            assert counts == sorted(counts, reverse=True)

    def test_k_remaining_bounded_by_candidates(self):
        trace = self.run_trace("normal", 1 << 16, 5000)
        for rec in trace:
            assert 1 <= rec.k_remaining <= rec.candidates_out

    def test_early_stop_recorded(self, rng):
        air = AIRTopK()
        data = rng.standard_normal(1 << 14).astype(np.float32)
        air.select(data, data.shape[0])  # K = N stops after pass 0
        assert air.last_trace[0].early_stopped
        assert len(air.last_trace) == 1

    def test_trace_reset_between_runs(self, rng):
        air = AIRTopK()
        data = rng.standard_normal(4096).astype(np.float32)
        air.select(data, 16)
        first = len(air.last_trace)
        air.select(data, 16)
        assert len(air.last_trace) == first

    def test_batched_rows_tagged(self, rng):
        air = AIRTopK()
        data = rng.standard_normal((3, 4096)).astype(np.float32)
        air.select(data, 16)
        assert {rec.row for rec in air.last_trace} == {0, 1, 2}
