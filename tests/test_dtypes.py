"""64-bit and integer key support across the full algorithm roster.

The paper's benchmark is float32, but a production selection library (the
RAFT code AIR Top-K shipped in supports multiple key types) must handle
wider keys: 64-bit floats get six 11-bit passes instead of three, the
queue family needs a 64-bit sentinel, and the encodings must stay
order-isomorphic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import available_algorithms, check_topk, topk
from repro.algos.queue_common import sentinel_for
from repro.core.air_topk import AIRTopK

# exact roster only; the approximate tier's dtype coverage lives in
# tests/test_approx.py where recall (not equality) is the contract
ALGOS = [info.name for info in available_algorithms() if info.exact]


def make_data(rng, dtype, n):
    dt = np.dtype(dtype)
    if dt.kind == "f":
        return rng.standard_normal(n).astype(dt)  # fp16 rounds: heavy ties
    if dt.kind == "i":
        return rng.integers(np.iinfo(dt).min, np.iinfo(dt).max, n, dtype=dt)
    return rng.integers(0, np.iinfo(dt).max, n, dtype=dt)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize(
    "dtype",
    [
        np.float16,
        np.float32,
        np.float64,
        np.int16,
        np.int32,
        np.int64,
        np.uint16,
        np.uint32,
        np.uint64,
    ],
)
def test_all_algorithms_all_dtypes(algo, dtype, rng):
    data = make_data(rng, dtype, 4000)
    for largest in (False, True):
        r = topk(data, 33, algo=algo, largest=largest)
        check_topk(data, r.values, r.indices, largest=largest)
        assert r.values.dtype == np.dtype(dtype)


@pytest.mark.parametrize("dtype", [np.float64, np.int64])
def test_air_uses_six_passes_for_64bit(dtype, rng):
    """11-bit digits over 64 bits: 6 passes, 7 kernel launches."""
    data = make_data(rng, dtype, 10000)
    r = topk(data, 10, algo="air_topk")
    assert r.device.counters.kernel_launches == 6 + 1


def test_air_passes_for():
    air = AIRTopK()
    assert [p.width for p in air.passes_for(np.uint16)] == [11, 5]
    assert [p.width for p in air.passes_for(np.uint32)] == [11, 11, 10]
    assert [p.width for p in air.passes_for(np.uint64)] == [11] * 5 + [9]


def test_air_uses_two_passes_for_16bit(rng):
    data = rng.standard_normal(10000).astype(np.float16)
    from repro import topk

    r = topk(data, 10, algo="air_topk")
    assert r.device.counters.kernel_launches == 2 + 1


def test_float16_specials_and_largest(rng):
    data = rng.standard_normal(2000).astype(np.float16)
    data[::9] = np.float16(np.nan)
    data[::11] = np.float16(np.inf)
    for algo in ("air_topk", "grid_select", "sort"):
        for largest in (False, True):
            r = topk(data, 30, algo=algo, largest=largest)
            check_topk(data, r.values, r.indices, largest=largest)


def test_sentinel_for():
    assert sentinel_for(np.uint32) == np.uint32(0xFFFFFFFF)
    assert sentinel_for(np.uint64) == np.uint64(0xFFFFFFFFFFFFFFFF)
    with pytest.raises(TypeError):
        sentinel_for(np.int32)


def test_float64_specials(rng):
    data = rng.standard_normal(1000)
    data[::13] = np.nan
    data[::17] = np.inf
    data[::19] = -np.inf
    data[0] = 5e-324  # float64 denormal
    for algo in ("air_topk", "grid_select", "radix_select"):
        for largest in (False, True):
            r = topk(data, 25, algo=algo, largest=largest)
            check_topk(data, r.values, r.indices, largest=largest)


def test_int64_extremes():
    data = np.array(
        [np.iinfo(np.int64).min, -1, 0, 1, np.iinfo(np.int64).max], dtype=np.int64
    )
    r = topk(data, 2, algo="air_topk")
    assert np.array_equal(r.values, [np.iinfo(np.int64).min, -1])
    r = topk(data, 2, algo="air_topk", largest=True)
    assert np.array_equal(r.values, [np.iinfo(np.int64).max, 1])


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.floats(width=64, allow_nan=False, allow_infinity=True),
        min_size=1,
        max_size=100,
    ),
    st.sampled_from(["air_topk", "grid_select", "sort", "radix_select"]),
)
def test_float64_matches_oracle(values, algo):
    data = np.array(values, dtype=np.float64)
    k = max(1, len(values) // 2)
    r = topk(data, k, algo=algo)
    check_topk(data, r.values, r.indices)
