"""Tests for the unified telemetry layer (repro.obs).

Covers the four pieces — span tracer, metrics registry, run manifests,
cost-model drift — plus the two cross-cutting contracts: the disabled
path is a true no-op (shared null span, zero recorded events, golden CSV
unchanged), and the merged Trace-Event export satisfies the schema that
Perfetto/chrome://tracing require.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.bench.report import read_csv, write_csv
from repro.bench.runner import BenchPoint, run_point, sweep
from repro.device import Device, aggregate_counters, timeline_spans
from repro.obs.drift import drift_report, point_drift, record_point_drift
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.schema import SchemaError


GOLDEN_GRID = dict(
    algos=("air_topk", "sort", "radix_select", "bitonic_topk", "auto"),
    distributions=("uniform",),
    ns=(1024, 4096),
    ks=(16, 2048),
    batches=(1,),
    seed=0,
)


def _ok_point(algo="sort", time=1e-4, **kw) -> BenchPoint:
    base = dict(algo=algo, distribution="uniform", n=1024, k=16, batch=1, time=time)
    base.update(kw)
    return BenchPoint(**base)


# --------------------------------------------------------------------------- #
# span tracer
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_disabled_span_is_shared_null_singleton(self):
        assert not obs.tracing_enabled()
        s1 = obs.span("a")
        s2 = obs.span("b", cat="x", foo=1)
        assert s1 is obs.NULL_SPAN and s2 is obs.NULL_SPAN
        with s1 as handle:
            handle.set(ignored=True)  # must not raise

    def test_session_records_spans_with_args(self):
        with obs.trace_session() as tracer:
            with obs.span("work", cat="test", n=8) as s:
                s.set(status="ok")
        assert not obs.tracing_enabled()  # restored on exit
        (event,) = tracer.events
        assert event.name == "work"
        assert event.cat == "test"
        assert event.args == {"n": 8, "status": "ok"}
        assert event.lane == obs.DEFAULT_LANE
        assert event.dur_us >= 0

    def test_exception_recorded_and_propagated(self):
        with obs.trace_session() as tracer:
            with pytest.raises(ValueError):
                with obs.span("explodes", cat="test"):
                    raise ValueError("boom")
        (event,) = tracer.events
        assert event.args["error"] == "ValueError"

    def test_nested_sessions_restore_previous(self):
        with obs.trace_session() as outer:
            with obs.trace_session() as inner:
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer

    def test_lanes_first_seen_order(self):
        with obs.trace_session() as tracer:
            tracer.emit("a", cat="t", lane="host/w2", ts_us=0, dur_us=1)
            tracer.emit("b", cat="t", lane="host/w1", ts_us=0, dur_us=1)
            tracer.emit("c", cat="t", lane="host/w2", ts_us=2, dur_us=1)
        assert tracer.lanes() == ["host/w2", "host/w1"]


class TestDisabledIsNoOp:
    def test_sweep_without_session_records_nothing(self):
        bystander = obs.SpanTracer()  # constructed but never installed
        registry = MetricsRegistry()
        res = sweep(workers=1, **GOLDEN_GRID)
        assert len(res.points) == 20
        assert len(bystander) == 0
        assert len(registry) == 0
        assert obs.get_tracer() is None and obs.get_metrics() is None

    def test_golden_csv_unchanged_by_telemetry_code(self, tmp_path):
        """The seed sweep still reproduces the committed CSV byte for byte
        with all telemetry disabled (the zero-overhead contract)."""
        res = sweep(workers=1, **GOLDEN_GRID)
        path = write_csv(res.points, tmp_path / "sweep.csv")
        golden = (
            Path(__file__).parent / "data" / "golden_sweep.csv"
        ).read_bytes()
        assert path.read_bytes() == golden


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("hits", algo="a").inc()
        reg.counter("hits", algo="a").inc(2)
        reg.counter("hits", algo="b").inc()
        assert reg.counter("hits", algo="a").value == 3
        assert reg.counter("hits", algo="b").value == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_histogram_buckets_and_summary(self):
        h = Histogram(bounds=(0.0, 1.0))
        for v in (-0.5, 0.5, 0.75, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]  # <=0, <=1, overflow
        assert h.count == 4
        assert h.min == -0.5 and h.max == 5.0
        assert h.mean == pytest.approx(5.75 / 4)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 0.0))

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only_b").inc(5)
        a.histogram("h").observe(0.1)
        b.histogram("h").observe(0.3)
        b.gauge("g").set(7)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.counter("only_b").value == 5
        assert a.histogram("h").count == 2
        assert a.gauge("g").value == 7

    def test_merge_rejects_bound_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(0.0, 1.0)).observe(0.5)
        b.histogram("h", bounds=(0.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_count_helper_is_noop_when_disabled(self):
        assert not obs.metrics_enabled()
        obs.count("ghost", algo="x")  # must not raise, must not record
        with obs.metrics_session() as reg:
            obs.count("real", amount=2.0)
            assert reg.counter("real").value == 2.0
        assert not obs.metrics_enabled()

    def test_payload_validates_and_writes(self, tmp_path):
        with obs.metrics_session() as reg:
            reg.counter("c", algo="a").inc()
            reg.gauge("g").set(1.5)
            reg.histogram("h").observe(0.25)
            path = reg.write(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        obs.validate_metrics(payload)
        assert payload["schema"] == "repro.obs.metrics/v1"
        (hist,) = payload["histograms"]
        assert hist["buckets"][-1]["le"] == "+inf"
        assert len(hist["buckets"]) == len(DEFAULT_BOUNDS) + 1


# --------------------------------------------------------------------------- #
# schema validator
# --------------------------------------------------------------------------- #
class TestSchema:
    def test_missing_required_key(self):
        with pytest.raises(SchemaError, match="missing required key"):
            obs.validate({"a": 1}, {"type": "object", "required": ["b"]})

    def test_wrong_type_reports_path(self):
        schema = {
            "type": "object",
            "properties": {"n": {"type": "integer"}},
        }
        with pytest.raises(SchemaError, match=r"\$\.n"):
            obs.validate({"n": "nope"}, schema)

    def test_bool_is_not_a_number(self):
        with pytest.raises(SchemaError):
            obs.validate(True, {"type": "number"})

    def test_const_and_enum(self):
        with pytest.raises(SchemaError):
            obs.validate("v2", {"const": "v1"})
        with pytest.raises(SchemaError):
            obs.validate("Z", {"enum": ["X", "M"]})

    def test_items_checked_per_element(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        obs.validate([1, 2], schema)
        with pytest.raises(SchemaError, match=r"\[1\]"):
            obs.validate([1, "x"], schema)

    def test_union_types(self):
        # nullable fields (e.g. the cluster snapshot's per-cell latency
        # percentiles) use JSON Schema's list-of-types form
        schema = {"type": ["number", "null"]}
        obs.validate(1.5, schema)
        obs.validate(None, schema)
        with pytest.raises(SchemaError, match="number|null"):
            obs.validate("nope", schema)
        with pytest.raises(SchemaError):
            obs.validate(True, schema)  # bool is not a number in unions either


# --------------------------------------------------------------------------- #
# trace export
# --------------------------------------------------------------------------- #
class TestExport:
    def test_round_trip_has_tef_fields(self, tmp_path):
        with obs.trace_session() as tracer:
            tracer.emit("parent", cat="host", lane="host/main", ts_us=10.0, dur_us=5.0)
            tracer.emit("child", cat="sim", lane="point 0/gpu", ts_us=11.0, dur_us=2.0)
            path = obs.write_trace(tracer.events, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        obs.validate_trace(payload)
        events = payload["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in xs} == {"parent", "child"}
        for e in xs:
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert e["ts"] >= 0 and e["dur"] >= 0
        # both lane labels surface as name metadata
        names = {e["args"]["name"] for e in metas}
        assert {"host", "point 0", "main", "gpu"} <= names

    def test_processes_get_distinct_pids(self):
        with obs.trace_session() as tracer:
            tracer.emit("a", cat="t", lane="host/main", ts_us=0, dur_us=1)
            tracer.emit("b", cat="t", lane="sim x/gpu", ts_us=0, dur_us=1)
        payload = obs.chrome_trace(tracer.events)
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["pid"] != xs[1]["pid"]

    def test_timestamps_normalised_to_zero(self):
        with obs.trace_session() as tracer:
            tracer.emit("late", cat="t", lane="host/main", ts_us=1000.0, dur_us=1.0)
        payload = obs.chrome_trace(tracer.events)
        (x,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert x["ts"] == 0.0

    def test_timeline_spans_rebase_onto_wall_clock(self):
        device = Device()
        device.launch_kernel(
            "k",
            grid_blocks=1,
            block_threads=128,
            bytes_read=1024.0,
            span_args={"note": "hello"},
        )
        spans = timeline_spans(
            device.timeline, lane_prefix="sim test", base_us=500.0, device=device
        )
        assert spans, "kernel launch must produce at least one span"
        for span in spans:
            assert span.lane.startswith("sim test/")
            assert span.ts_us >= 500.0
        gpu = [s for s in spans if s.lane == "sim test/gpu"]
        assert gpu[0].args["note"] == "hello"
        assert gpu[0].args["bytes_read"] == pytest.approx(1024.0)


# --------------------------------------------------------------------------- #
# manifests
# --------------------------------------------------------------------------- #
class TestManifest:
    def test_build_and_write_round_trip(self, tmp_path):
        res = sweep(
            algos=("sort", "air_topk"), ns=(1 << 10,), ks=(4, 2048), workers=1
        )
        manifest = obs.build_manifest(
            command="sweep",
            config={"workers": 1},
            seed=0,
            points=res.points,
            wall_time_s=1.25,
            artifacts={"csv": "sweep.csv"},
        )
        path = obs.write_manifest(manifest, tmp_path / "manifest.json")
        loaded = json.loads(path.read_text())
        obs.validate_manifest(loaded)
        assert loaded["grid"]["total_points"] == 4
        assert loaded["status"]["ok"] == 2  # both algos at k=4
        assert loaded["status"]["unsupported"] == 2  # k=2048 > n for both
        assert loaded["versions"]["repro"]
        assert loaded["device_counters"]["kernel_launches"] > 0

    def test_aggregate_counters_sum_and_peak(self):
        res = sweep(algos=("sort",), ns=(1 << 10,), ks=(4,), workers=1)
        (p,) = res.points
        total = aggregate_counters([p, p])
        assert total.kernel_launches == 2 * p.counters.kernel_launches
        assert total.bytes_read == pytest.approx(2 * p.counters.bytes_read)
        # peak workspace takes the max, not the sum
        assert total.peak_workspace_bytes == p.counters.peak_workspace_bytes

    def test_invalid_manifest_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            obs.write_manifest({"schema": "repro.obs.manifest/v1"}, tmp_path / "m.json")


# --------------------------------------------------------------------------- #
# cost-model drift
# --------------------------------------------------------------------------- #
class TestDrift:
    def test_point_drift_ratio(self):
        from repro.perf.costmodel import predict_topk_time

        predicted = predict_topk_time("sort", n=1024, k=16, batch=1)
        point = _ok_point(algo="sort", time=2 * predicted)
        (d,) = point_drift([point])
        assert d.ratio == pytest.approx(2.0)
        assert d.log2_ratio == pytest.approx(1.0)

    def test_auto_rows_map_to_dispatch_target(self):
        point = _ok_point(algo="auto", detail="dispatch=radix_select")
        (d,) = point_drift([point])
        assert d.algo == "radix_select"

    def test_skips_unmeasured_and_unpredictable(self):
        points = [
            _ok_point(algo="sort", time=None, status="error"),
            _ok_point(algo="auto", detail=""),  # no dispatch target
        ]
        assert point_drift(points) == []

    def test_report_summarises_per_algo(self):
        from repro.perf.costmodel import predict_topk_time

        predicted = predict_topk_time("sort", n=1024, k=16, batch=1)
        points = [
            _ok_point(algo="sort", time=2 * predicted),
            _ok_point(algo="sort", time=0.5 * predicted, n=1024, k=16),
        ]
        (row,) = drift_report(points)
        assert row.algo == "sort"
        assert row.points == 2
        assert row.geomean_ratio == pytest.approx(1.0)  # 2x and 0.5x cancel
        assert row.min_ratio == pytest.approx(0.5)
        assert row.max_ratio == pytest.approx(2.0)
        assert row.rmse_log2 == pytest.approx(1.0)

    def test_record_point_drift_fills_histogram(self):
        reg = MetricsRegistry()
        record_point_drift(reg, _ok_point(algo="sort"))
        hist = reg.histogram("costmodel.log2_ratio", algo="sort")
        assert hist.count == 1
        assert reg.counter("costmodel.points", algo="sort").value == 1

    def test_real_sweep_round_trips_through_csv(self, tmp_path):
        res = sweep(
            algos=("sort", "radix_select"), ns=(1 << 10,), ks=(16,), workers=1
        )
        path = write_csv(res.points, tmp_path / "s.csv")
        rows = drift_report(read_csv(path))
        assert {r.algo for r in rows} == {"sort", "radix_select"}
        assert all(r.points == 1 for r in rows)


# --------------------------------------------------------------------------- #
# instrumentation wiring
# --------------------------------------------------------------------------- #
class TestInstrumentation:
    def test_run_point_emits_host_and_sim_spans(self):
        with obs.trace_session() as tracer:
            point = run_point("air_topk", distribution="uniform", n=1 << 12, k=16)
        assert point.status == "ok"
        cats = {e.cat for e in tracer.events}
        assert "point" in cats  # the host-side span
        assert "sim.gpu" in cats  # re-based device timeline
        point_span = next(e for e in tracer.events if e.cat == "point")
        sim = [e for e in tracer.events if e.cat.startswith("sim.")]
        # simulated events live inside the wall-clock window of their point
        assert all(s.ts_us >= point_span.ts_us for s in sim)

    def test_metrics_session_collects_algorithm_counters(self):
        with obs.metrics_session() as reg:
            run_point("air_topk", distribution="uniform", n=1 << 12, k=16)
            run_point("grid_select", distribution="uniform", n=1 << 12, k=16)
        names = {key[0] for key in reg._counters}
        assert "air.passes" in names
        assert "queue.inserts" in names

    def test_local_session_is_isolated_from_parent(self):
        with obs.trace_session() as parent:
            with obs.local_session(trace=True, lane="host/w1") as (tracer, registry):
                assert obs.get_tracer() is tracer
                assert registry is None  # metrics not requested
                with obs.span("inner", cat="test"):
                    pass
            assert obs.get_tracer() is parent
            assert len(parent) == 0  # nothing leaked into the parent buffer
            assert len(tracer) == 1
            assert tracer.events[0].lane == "host/w1"
