"""Chaos suite for the deterministic fault-injection layer.

Pins the PR's acceptance criteria: with faults injected the service
*never* raises and gives every request exactly one terminal outcome;
non-degraded served results are byte-identical to a fault-free run;
degraded results carry the documented recall bound; an empty fault plan
is behaviourally invisible (outputs byte-identical to no plan at all);
and the reference chaos scenario — 5% shard failures + 5% stragglers at
200 QPS — stays at >= 99% availability.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import topk
from repro.faults import (
    FAULT_KINDS,
    NODE_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    HedgePolicy,
    RetryPolicy,
    backoff_schedule,
    fault_draw,
    recall_bound,
    validate_fault_plan,
)
from repro.obs.schema import SchemaError
from repro.serve import (
    AllShardsLost,
    LoadSpec,
    OUTCOMES,
    Request,
    ServeCache,
    ServeConfig,
    TopKService,
    build_requests,
    run_serve_bench,
    sharded_topk,
)

REFERENCE_PLAN = Path(__file__).parent.parent / "benchmarks/fault_plans/reference.json"


def unique_data(n: int, dtype: str = "float32", seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(np.arange(n)).astype(dtype)


# --------------------------------------------------------------------------- #
# plans: validation + JSON round trip
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="meteor_strike", rate=0.1)
        with pytest.raises(ValueError):
            FaultRule(kind="straggler", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="straggler", rate=0.1, factor=0.5)

    def test_empty_detection(self):
        assert FaultPlan().empty
        assert FaultPlan(rules=[FaultRule(kind="straggler", rate=0.0)]).empty
        assert not FaultPlan(rules=[FaultRule(kind="straggler", rate=0.1)]).empty

    def test_rules_normalised_to_tuple_and_hashable(self):
        plan = FaultPlan(seed=1, rules=[FaultRule(kind="timeout", rate=0.1)])
        assert isinstance(plan.rules, tuple)
        hash(plan)  # picklable/hashable across multiprocessing

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(kind="shard_failure", rate=0.05),
                FaultRule(kind="straggler", rate=0.1, site="serve.shard",
                          factor=6.0, sticky=True),
            ),
        )
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_schema_rejects_garbage(self):
        with pytest.raises(SchemaError):
            validate_fault_plan({"schema": "repro.faults.plan/v1", "seed": 0})
        with pytest.raises(SchemaError):
            validate_fault_plan(
                {
                    "schema": "repro.faults.plan/v1",
                    "seed": 0,
                    "rules": [{"kind": "nope", "rate": 0.1}],
                }
            )

    def test_reference_plan_is_valid(self):
        payload = json.loads(REFERENCE_PLAN.read_text())
        validate_fault_plan(payload)
        plan = FaultPlan.from_payload(payload)
        kinds = {rule.kind for rule in plan.rules}
        # the reference exercises every single-node kind; the node_* kinds
        # live in the cluster plan (benchmarks/fault_plans/cluster.json)
        assert kinds == set(SERVE_FAULT_KINDS)


# --------------------------------------------------------------------------- #
# injector: pure-hash draws
# --------------------------------------------------------------------------- #
class TestInjector:
    def test_draw_is_deterministic_and_uniform_ish(self):
        a = fault_draw(1, "straggler", "serve.shard", "shard=0")
        assert a == fault_draw(1, "straggler", "serve.shard", "shard=0")
        assert 0.0 <= a < 1.0
        draws = [
            fault_draw(1, "straggler", "serve.shard", f"shard={i}")
            for i in range(400)
        ]
        assert 0.3 < float(np.mean(draws)) < 0.7

    def test_draw_sensitive_to_every_argument(self):
        base = fault_draw(1, "straggler", "serve.shard", "shard=0")
        assert base != fault_draw(2, "straggler", "serve.shard", "shard=0")
        assert base != fault_draw(1, "timeout", "serve.shard", "shard=0")
        assert base != fault_draw(1, "straggler", "serve.batch", "shard=0")
        assert base != fault_draw(1, "straggler", "serve.shard", "shard=1")

    def test_decide_respects_rate_and_site(self):
        plan = FaultPlan(
            seed=5,
            rules=(FaultRule(kind="straggler", rate=1.0, site="serve.shard"),),
        )
        inj = plan.injector()
        assert inj.decide("straggler", "serve.shard", "x") is not None
        assert inj.decide("straggler", "exec.point", "x") is None  # wrong site
        assert inj.decide("timeout", "serve.shard", "x") is None  # wrong kind
        assert FaultPlan(seed=5).injector().decide(
            "straggler", "serve.shard", "x"
        ) is None  # no rules

    def test_transient_vs_sticky_retries(self):
        transient = FaultPlan(
            seed=0, rules=(FaultRule(kind="worker_crash", rate=0.5),)
        ).injector()
        flips = {
            transient.decide("worker_crash", "exec.point", "p", f"attempt={i}")
            is not None
            for i in range(16)
        }
        assert flips == {True, False}  # fresh draw per attempt

        sticky = FaultPlan(
            seed=0,
            rules=(FaultRule(kind="worker_crash", rate=0.5, sticky=True),),
        ).injector()
        outcomes = {
            sticky.decide("worker_crash", "exec.point", "p", f"attempt={i}")
            is not None
            for i in range(16)
        }
        assert len(outcomes) == 1  # attempt number stripped: one fate

    def test_order_independence(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind="straggler", rate=0.5),))
        a, b = plan.injector(), plan.injector()
        keys = [f"shard={i}" for i in range(32)]
        fired_fwd = [a.decide("straggler", "serve.shard", k) is not None for k in keys]
        fired_rev = [
            b.decide("straggler", "serve.shard", k) is not None
            for k in reversed(keys)
        ]
        assert fired_fwd == fired_rev[::-1]

    def test_event_log_and_counts(self):
        plan = FaultPlan(
            seed=5, rules=(FaultRule(kind="straggler", rate=1.0, factor=7.0),)
        )
        inj = plan.injector()
        event = inj.decide("straggler", "serve.shard", "shard=3")
        assert event.factor == 7.0
        assert inj.fault_counts() == {"straggler": 1}
        assert inj.events[0].kind == "straggler"
        assert isinstance(inj, FaultInjector)


# --------------------------------------------------------------------------- #
# node-level kinds (the cluster router's seam)
# --------------------------------------------------------------------------- #
class TestNodeFaultKinds:
    def test_kind_registry_split(self):
        # the serve kinds fire inside a node, the node kinds fire at the
        # cluster router; together they are the full registry
        assert set(NODE_FAULT_KINDS) == {"node_crash", "node_partition"}
        assert set(SERVE_FAULT_KINDS) | set(NODE_FAULT_KINDS) == set(
            FAULT_KINDS
        )
        assert not set(SERVE_FAULT_KINDS) & set(NODE_FAULT_KINDS)

    @pytest.mark.parametrize("kind", NODE_FAULT_KINDS)
    def test_draws_are_key_independent_pure_hashes(self, kind):
        # same purity contract as every other kind: a draw depends only
        # on (seed, kind, site, key) — not on any other draw having
        # happened, so workers=1 == workers=N holds cluster-wide
        base = fault_draw(1, kind, "cluster.node", "node=0")
        assert base == fault_draw(1, kind, "cluster.node", "node=0")
        assert 0.0 <= base < 1.0
        assert base != fault_draw(2, kind, "cluster.node", "node=0")
        assert base != fault_draw(1, kind, "cluster.node", "node=1")
        assert base != fault_draw(1, kind, "serve.shard", "node=0")
        other = [k for k in NODE_FAULT_KINDS if k != kind][0]
        assert base != fault_draw(1, other, "cluster.node", "node=0")

    @pytest.mark.parametrize("kind", NODE_FAULT_KINDS)
    def test_sticky_ignores_the_epoch(self, kind):
        # sticky = the node left for good: the epoch (an attempt= key
        # part) is stripped, one fate per node
        sticky = FaultPlan(
            seed=0,
            rules=(
                FaultRule(kind=kind, rate=0.5, site="cluster.node", sticky=True),
            ),
        ).injector()
        fates = {
            sticky.decide(
                kind, "cluster.node", "node=3", f"attempt=epoch:{epoch}"
            )
            is not None
            for epoch in range(16)
        }
        assert len(fates) == 1

    @pytest.mark.parametrize("kind", NODE_FAULT_KINDS)
    def test_transient_redraws_per_epoch(self, kind):
        transient = FaultPlan(
            seed=0,
            rules=(FaultRule(kind=kind, rate=0.5, site="cluster.node"),),
        ).injector()
        fates = {
            transient.decide(
                kind, "cluster.node", "node=3", f"attempt=epoch:{epoch}"
            )
            is not None
            for epoch in range(16)
        }
        assert fates == {True, False}  # leave/rejoin churn

    def test_cluster_plan_round_trips_and_validates(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(
                    kind="node_crash", rate=0.3, site="cluster.node", sticky=True
                ),
                FaultRule(
                    kind="node_partition", rate=0.1, site="cluster.node"
                ),
            ),
        )
        path = plan.save(tmp_path / "cluster_plan.json")
        payload = json.loads(path.read_text())
        validate_fault_plan(payload)
        assert FaultPlan.load(path) == plan


# --------------------------------------------------------------------------- #
# recovery policies
# --------------------------------------------------------------------------- #
class TestPolicies:
    def test_backoff_schedule_caps(self):
        assert backoff_schedule(4, base_s=1.0, cap_s=5.0) == [1.0, 2.0, 4.0]
        assert backoff_schedule(5, base_s=1.0, cap_s=3.0) == [1.0, 2.0, 3.0, 3.0]
        assert backoff_schedule(1, base_s=1.0, cap_s=5.0) == []

    def test_retry_policy(self):
        policy = RetryPolicy(retries=2, backoff_base_s=0.1, backoff_cap_s=0.15)
        assert policy.attempts == 3
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.15)  # capped
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)

    def test_hedge_threshold_and_noop_identity(self):
        hedge = HedgePolicy(quantile=0.5, factor=3.0)
        times = [1.0, 1.0, 1.0, 10.0]
        thr = hedge.threshold(times)
        assert thr == pytest.approx(3.0)
        # the hedged straggler races a clean duplicate from the threshold
        assert min(10.0, thr + 1.0) == pytest.approx(4.0)
        # and a healthy shard is provably untouched: min(t, thr + t) == t
        for t in times:
            assert min(t, thr + t) == t

    def test_circuit_breaker_lifecycle(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1.0)
        assert breaker.state == "closed" and breaker.allow(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.1)  # second failure trips it
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow(0.5)  # cooling down
        assert breaker.allow(1.2)  # half-open probe allowed
        assert breaker.record_failure(1.2)  # probe fails: re-open
        assert not breaker.allow(1.3)
        assert breaker.allow(2.3)
        breaker.record_success()  # probe succeeds: closed again
        assert breaker.state == "closed" and breaker.allow(2.4)

    def test_recall_bound_contract(self):
        coverage, bound = recall_bound(64, 1000, 0)
        assert coverage == 1.0 and 0.0 < bound < 1.0
        coverage, bound = recall_bound(64, 1000, 250)
        assert coverage == pytest.approx(0.75)
        assert 0.0 <= bound < coverage  # Hoeffding slack below coverage
        # losing everything floors at zero
        assert recall_bound(4, 100, 100)[1] == 0.0
        with pytest.raises(ValueError):
            recall_bound(64, 100, 101)


# --------------------------------------------------------------------------- #
# sharder under faults
# --------------------------------------------------------------------------- #
class TestShardedFaults:
    def test_transient_failures_recovered_exactly(self):
        data = unique_data(4096)
        clean = sharded_topk(data, 64, shards=4, algo="sort")
        plan = FaultPlan(
            seed=1, rules=(FaultRule(kind="shard_failure", rate=0.4),)
        )
        injected = sharded_topk(
            data, 64, shards=4, algo="sort", injector=plan.injector()
        )
        # retries recover every transient failure: results identical
        assert not injected.degraded
        assert np.array_equal(clean.values, injected.values)
        assert np.array_equal(clean.indices, injected.indices)
        assert injected.meta["retries"] >= 1
        # failed attempts + backoff make the run slower, never faster
        assert injected.time > clean.time

    def test_sticky_failure_degrades_with_bound(self):
        data = unique_data(4096)
        plan = FaultPlan(
            seed=11,
            rules=(FaultRule(kind="shard_failure", rate=0.3, sticky=True),),
        )
        result = sharded_topk(
            data, 64, shards=4, algo="sort", injector=plan.injector()
        )
        assert result.degraded and result.meta["shards_lost"] >= 1
        assert 0.0 <= result.recall_bound <= result.meta["coverage"] <= 1.0
        assert "[degraded" in result.algo
        # the answer is the exact top-k of the surviving shards: every
        # returned index must avoid the lost ranges and every value match
        lost = set()
        from repro.serve.sharder import shard_bounds

        bounds = shard_bounds(4096, 4)
        for shard in result.meta["lost_shards"]:
            lost.update(range(*bounds[shard]))
        assert not lost.intersection(result.indices.tolist())
        assert np.array_equal(data[result.indices], result.values)
        # empirical recall honours the reported bound (unique data)
        true_topk = set(np.argsort(data)[:64].tolist())
        recall = len(true_topk.intersection(result.indices.tolist())) / 64
        assert recall >= result.recall_bound

    def test_straggler_inflates_time_only(self):
        data = unique_data(4096)
        clean = sharded_topk(data, 64, shards=4, algo="sort")
        plan = FaultPlan(
            seed=1, rules=(FaultRule(kind="straggler", rate=0.5, factor=50.0),)
        )
        slow = sharded_topk(
            data, 64, shards=4, algo="sort", injector=plan.injector()
        )
        assert np.array_equal(clean.values, slow.values)
        assert slow.time > clean.time

    def test_hedging_caps_straggler_inflation(self):
        data = unique_data(4096)
        # seed 8 inflates exactly one of the four shards, so the sibling
        # quantile stays clean and the hedge threshold can bite
        plan = FaultPlan(
            seed=8, rules=(FaultRule(kind="straggler", rate=0.5, factor=50.0),)
        )
        unhedged = sharded_topk(
            data, 64, shards=4, algo="sort", injector=plan.injector(),
            hedge=HedgePolicy(quantile=0.5, factor=1e9),  # never hedge
        )
        hedged = sharded_topk(
            data, 64, shards=4, algo="sort", injector=plan.injector(),
            hedge=HedgePolicy(quantile=0.5, factor=2.0),
        )
        assert hedged.meta["hedges"] >= 1
        assert hedged.time < unhedged.time
        assert np.array_equal(hedged.values, unhedged.values)

    def test_all_shards_lost_raises(self):
        data = unique_data(1024)
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule(kind="shard_failure", rate=1.0, sticky=True),),
        )
        with pytest.raises(AllShardsLost):
            sharded_topk(data, 16, shards=4, algo="sort",
                         injector=plan.injector())

    def test_no_injector_seams_are_noops(self):
        data = unique_data(4096)
        a = sharded_topk(data, 64, shards=4, algo="sort")
        b = sharded_topk(data, 64, shards=4, algo="sort")
        # fault seams contribute nothing: identical deterministic runs, and
        # meta carries only the launch-regime flag plus the always-present
        # timing breakdown — no fault accounting keys
        assert a.time == b.time
        assert a.meta == b.meta
        assert set(a.meta) == {"batched_execution", "shard_times_s", "merge_s"}
        assert a.meta["batched_execution"] is False
        assert set(a.meta["shard_times_s"]) == {0, 1, 2, 3}
        assert np.array_equal(a.values, b.values)


# --------------------------------------------------------------------------- #
# cache corruption + breaker integration
# --------------------------------------------------------------------------- #
class TestCacheCorruption:
    def test_checksum_detects_and_repairs(self, rng):
        cache = ServeCache()
        data = rng.standard_normal(256).astype(np.float32)
        result = topk(data, 8, algo="sort")
        cache.put_result(data, 8, False, result.values, result.indices)
        assert cache.get_result(data, 8, False) is not None
        assert cache.corrupt_result(data, 8, False)
        assert cache.get_result(data, 8, False) is None  # detected, evicted
        assert cache.corruptions == 1
        assert cache.stats()["result_corruptions"] == 1
        # repaired: a fresh put serves cleanly again
        cache.put_result(data, 8, False, result.values, result.indices)
        values, _, _ = cache.get_result(data, 8, False)
        assert np.array_equal(values, result.values)

    def test_corrupt_missing_entry_is_noop(self, rng):
        cache = ServeCache()
        assert not cache.corrupt_result(
            rng.standard_normal(64).astype(np.float32), 4, False
        )
        assert cache.corruptions == 0

    def test_service_never_serves_corrupt_results(self):
        # every cache read corrupted: all requests recomputed, all correct
        plan = FaultPlan(
            seed=6, rules=(FaultRule(kind="cache_corruption", rate=1.0),)
        )
        config = ServeConfig(algo="sort", max_batch=4, max_delay_s=0.0,
                             faults=plan, breaker_threshold=3)
        service = TopKService(config)
        data = unique_data(256)
        requests = [
            # the same payload five times: a cache workout
            Request(rid=i, data=data, k=8, largest=False, arrival_s=i * 0.01)
            for i in range(5)
        ]
        stats = service.run(requests)
        assert stats.served == 5 and stats.failed == 0
        expected = topk(data, 8, algo="sort")
        for outcome in service.outcomes:
            assert np.array_equal(outcome.values, expected.values)
        # corruption was detected (not served) and ultimately tripped the
        # breaker into bypassing the cache
        assert service.cache.corruptions >= 1
        assert stats.faults.get("cache_corruption", 0) >= 1
        assert service.breaker.trips >= 1 and stats.breaker_trips >= 1


# --------------------------------------------------------------------------- #
# the service under chaos: the tentpole property tests
# --------------------------------------------------------------------------- #
CHAOS_SPEC = LoadSpec(
    qps=400.0, duration_s=0.25, n=4096, k=32, payload_pool=48, seed=11
)
CHAOS_CONFIG = dict(
    algo="sort", max_batch=8, max_delay_s=0.005, shards=4, shard_min_n=1024
)
_baseline_cache: dict = {}


def _baseline_outcomes() -> dict:
    """Fault-free reference outcomes per rid (computed once)."""
    if "outcomes" not in _baseline_cache:
        service = TopKService(ServeConfig(**CHAOS_CONFIG))
        service.run(build_requests(CHAOS_SPEC))
        _baseline_cache["outcomes"] = {o.rid: o for o in service.outcomes}
    return _baseline_cache["outcomes"]


class TestServiceChaos:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        shard_rate=st.floats(min_value=0.0, max_value=0.3),
        straggler_rate=st.floats(min_value=0.0, max_value=0.3),
        crash_rate=st.floats(min_value=0.0, max_value=0.15),
        corrupt_rate=st.floats(min_value=0.0, max_value=0.5),
        timeout_rate=st.floats(min_value=0.0, max_value=0.15),
        sticky=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_chaos_invariants(
        self, seed, shard_rate, straggler_rate, crash_rate, corrupt_rate,
        timeout_rate, sticky,
    ):
        """Under any mix of faults: the service never raises, every request
        gets exactly one terminal outcome, and every non-degraded served
        result is byte-identical to the fault-free run."""
        plan = FaultPlan(
            seed=seed,
            rules=(
                FaultRule(kind="shard_failure", rate=shard_rate, sticky=sticky),
                FaultRule(kind="straggler", rate=straggler_rate, factor=8.0),
                FaultRule(kind="worker_crash", rate=crash_rate,
                          site="serve.batch"),
                FaultRule(kind="cache_corruption", rate=corrupt_rate),
                FaultRule(kind="timeout", rate=timeout_rate, factor=3.0,
                          site="serve.batch"),
            ),
        )
        requests = build_requests(CHAOS_SPEC)
        service = TopKService(ServeConfig(**CHAOS_CONFIG, faults=plan))
        stats = service.run(requests)  # must not raise

        # exactly one terminal outcome per request
        rids = sorted(o.rid for o in service.outcomes)
        assert rids == [r.rid for r in requests]
        assert stats.total == len(requests)
        assert all(o.status in OUTCOMES for o in service.outcomes)

        baseline = _baseline_outcomes()
        for outcome in service.outcomes:
            if outcome.status == "served":
                ref = baseline[outcome.rid]
                assert np.array_equal(outcome.values, ref.values)
                assert np.array_equal(outcome.indices, ref.indices)
            elif outcome.status == "degraded":
                assert outcome.recall_bound is not None
                assert 0.0 <= outcome.recall_bound <= 1.0
                assert outcome.values is not None
            elif outcome.status == "failed":
                assert outcome.error
                assert outcome.values is None

    def test_replay_determinism(self):
        """The same plan replays the same chaos, outcome for outcome."""
        plan = FaultPlan(
            seed=77,
            rules=(
                FaultRule(kind="shard_failure", rate=0.15, sticky=True),
                FaultRule(kind="worker_crash", rate=0.1, site="serve.batch"),
            ),
        )
        runs = []
        for _ in range(2):
            service = TopKService(ServeConfig(**CHAOS_CONFIG, faults=plan))
            service.run(build_requests(CHAOS_SPEC))
            runs.append(service)
        a, b = runs
        assert [o.status for o in a.outcomes] == [o.status for o in b.outcomes]
        assert a.stats.faults == b.stats.faults
        for x, y in zip(a.outcomes, b.outcomes):
            assert x.rid == y.rid and x.finish_s == y.finish_s
            if x.values is not None:
                assert np.array_equal(x.values, y.values)

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        """An installed-but-empty injector must change nothing at all."""
        reports = []
        services = []
        for faults in (None, FaultPlan(seed=123)):
            report, service = run_serve_bench(
                CHAOS_SPEC, ServeConfig(**CHAOS_CONFIG, faults=faults)
            )
            reports.append(report)
            services.append(service)
        assert reports[0].format() == reports[1].format()
        assert reports[0].stats.latencies_s == reports[1].stats.latencies_s
        for a, b in zip(services[0].outcomes, services[1].outcomes):
            assert a.rid == b.rid and a.status == b.status
            assert a.finish_s == b.finish_s
            if a.values is not None:
                assert np.array_equal(a.values, b.values)
                assert np.array_equal(a.indices, b.indices)

    def test_acceptance_availability_under_reference_chaos(self):
        """PR acceptance: 5% shard failures + 5% stragglers at 200 QPS keep
        availability >= 99% with zero unhandled exceptions."""
        plan = FaultPlan.load(REFERENCE_PLAN)
        report, service = run_serve_bench(
            LoadSpec(qps=200.0, duration_s=2.0, seed=0),
            ServeConfig(shards=4, faults=plan),
        )
        stats = report.stats
        assert stats.total == stats.served + stats.degraded + stats.shed + \
            stats.timeout + stats.failed
        assert stats.availability >= 0.99
        # chaos actually happened — this is not a vacuous pass
        assert sum(stats.faults.values()) >= 1
        text = report.format()
        assert "availability" in text and "faults:" in text

    def test_degraded_outcomes_not_cached(self):
        """A degraded answer must never be served from the result cache."""
        plan = FaultPlan(
            seed=4,
            rules=(FaultRule(kind="shard_failure", rate=0.9, sticky=True),),
        )
        config = ServeConfig(algo="sort", max_batch=1, max_delay_s=0.0,
                             shards=4, shard_min_n=256, faults=plan)
        service = TopKService(config)
        data = unique_data(2048)
        service.run([
            Request(rid=0, data=data, k=16, largest=False, arrival_s=0.0),
            Request(rid=1, data=data, k=16, largest=False, arrival_s=0.5),
        ])
        degraded = [o for o in service.outcomes if o.status == "degraded"]
        if degraded:  # high rate makes this near-certain; never from cache
            assert not any(o.cache_hit for o in degraded)
            assert service.stats.cache["result_hits"] == 0
