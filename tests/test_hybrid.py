"""Tests for the Dr. Top-K delegate hybrid (paper Sec. 2.2 extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import UnsupportedProblem, check_topk, topk
from repro.algos import DrTopKHybrid
from repro.datagen import generate


class TestCorrectness:
    @pytest.mark.parametrize(
        "base", ["air_topk", "grid_select", "sort", "radix_select", "bucket_select"]
    )
    def test_matches_oracle(self, base, rng):
        data = rng.standard_normal(50000).astype(np.float32)
        r = topk(data, 100, algo="drtopk_hybrid", params={"base": base})
        check_topk(data, r.values, r.indices)

    @pytest.mark.parametrize("distribution", ["uniform", "normal", "adversarial"])
    def test_distributions(self, distribution):
        data = generate(distribution, 30000, seed=2)[0]
        r = topk(data, 50, algo="drtopk_hybrid")
        check_topk(data, r.values, r.indices)

    def test_largest_mode(self, rng):
        data = rng.standard_normal(20000).astype(np.float32)
        r = topk(data, 40, algo="drtopk_hybrid", largest=True)
        check_topk(data, r.values, r.indices, largest=True)

    def test_winners_concentrated_in_one_range(self, rng):
        """All top-k elements in a single delegate range must survive —
        the soundness case the delegate argument covers via ties."""
        data = rng.standard_normal(65536).astype(np.float32) + 100
        data[1000:1064] = -np.arange(64, dtype=np.float32)
        r = topk(data, 64, algo="drtopk_hybrid", params={"delegate_size": 64})
        check_topk(data, r.values, r.indices)
        assert set(r.indices.tolist()) == set(range(1000, 1064))

    def test_one_winner_per_range(self, rng):
        """Opposite extreme: each top-k element in a different range."""
        data = rng.standard_normal(65536).astype(np.float32) + 100
        positions = np.arange(0, 65536, 1024)[:32]
        data[positions] = -np.arange(32, dtype=np.float32)
        r = topk(data, 32, algo="drtopk_hybrid", params={"delegate_size": 128})
        check_topk(data, r.values, r.indices)
        assert set(r.indices.tolist()) == set(positions.tolist())

    def test_ties_at_cutoff(self, rng):
        data = rng.choice(np.float32([1.0, 2.0, 3.0]), size=20000)
        r = topk(data, 500, algo="drtopk_hybrid")
        check_topk(data, r.values, r.indices)

    def test_partial_last_range(self, rng):
        """n not divisible by g: the padded tail must never be selected."""
        data = rng.standard_normal(10007).astype(np.float32)
        r = topk(data, 30, algo="drtopk_hybrid", params={"delegate_size": 64})
        check_topk(data, r.values, r.indices)

    def test_batched(self, rng):
        data = rng.standard_normal((4, 20000)).astype(np.float32)
        r = topk(data, 25, algo="drtopk_hybrid")
        check_topk(data, r.values, r.indices)

    def test_k_equals_n(self, rng):
        data = rng.standard_normal(3000).astype(np.float32)
        r = topk(data, 3000, algo="drtopk_hybrid")
        check_topk(data, r.values, r.indices)

    def test_degenerate_delegate_size(self, rng):
        """g=1 falls back to the plain base algorithm."""
        data = rng.standard_normal(5000).astype(np.float32)
        r = topk(data, 10, algo="drtopk_hybrid", params={"delegate_size": 1})
        check_topk(data, r.values, r.indices)


class TestStructure:
    def test_delegate_kernel_present(self, rng):
        data = rng.standard_normal(100000).astype(np.float32)
        r = topk(data, 64, algo="drtopk_hybrid")
        assert "ComputeDelegates" in r.device.kernel_stats
        assert "GatherCandidateRanges" in r.device.kernel_stats

    def test_default_g_balances_phases(self):
        h = DrTopKHybrid()
        g = h._choose_g(1 << 20, 256)
        assert 32 <= g <= 128  # ~sqrt(n/k) = 64

    def test_base_reads_far_less_data(self, rng):
        """The hybrid's raison d'etre: the base only ever touches
        N/g + k*g elements after the one cheap reduction pass."""
        n = 1 << 20
        data = rng.standard_normal(n).astype(np.float32)
        hybrid = topk(data, 64, algo="drtopk_hybrid", params={"base": "sort"})
        plain = topk(data, 64, algo="sort")
        assert hybrid.device.counters.bytes_total < 0.5 * (
            plain.device.counters.bytes_total
        )

    def test_helps_slow_bases_at_scale(self):
        from repro.perf import simulate_topk

        hybrid = simulate_topk(
            "drtopk_hybrid", distribution="uniform", n=1 << 26, k=256, base="sort"
        )
        plain = simulate_topk("sort", distribution="uniform", n=1 << 26, k=256)
        assert plain.time / hybrid.time > 3

    def test_inherits_base_k_cap(self):
        data = np.zeros(100000, dtype=np.float32)
        with pytest.raises(UnsupportedProblem):
            topk(data, 4096, algo="drtopk_hybrid", params={"base": "grid_select"})

    def test_invalid_delegate_size(self):
        with pytest.raises(ValueError):
            DrTopKHybrid(delegate_size=0)

    def test_metadata(self):
        h = DrTopKHybrid()
        assert h.category == "hybrid"
        assert h.library == "Dr.Top-K"


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=3000),
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=2**31),
)
def test_hybrid_property(n, k_raw, g, seed):
    rng = np.random.default_rng(seed)
    k = 1 + (k_raw - 1) % n
    data = rng.standard_normal(n).astype(np.float32)
    r = topk(data, k, algo="drtopk_hybrid", params={"delegate_size": g})
    check_topk(data, r.values, r.indices)
