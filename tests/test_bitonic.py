"""Tests for the bitonic sorting/merging networks and their op counts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import (
    bitonic_merge,
    bitonic_sort,
    comparator_count_merge,
    comparator_count_sort,
    merge_select_lower,
    merge_select_lower_with_payload,
)


class TestComparatorCounts:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (2, 1), (4, 6), (8, 24), (16, 80), (32, 240), (1024, 28160)],
    )
    def test_sort_closed_form(self, n, expected):
        assert comparator_count_sort(n) == expected

    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (4, 4), (8, 12), (32, 80)])
    def test_merge_closed_form(self, n, expected):
        assert comparator_count_merge(n) == expected

    @pytest.mark.parametrize("bad", [0, -4, 3, 12])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ValueError):
            comparator_count_sort(bad)
        with pytest.raises(ValueError):
            comparator_count_merge(bad)


class TestBitonicSort:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32, 128, 512])
    def test_matches_npsort(self, rng, n):
        rows = rng.standard_normal((7, n)).astype(np.float32)
        out, _, comps = bitonic_sort(rows)
        assert np.array_equal(out, np.sort(rows, axis=1))
        assert comps == comparator_count_sort(n)

    def test_network_executes_exact_comparator_count(self, rng):
        rows = rng.integers(0, 1000, size=(3, 64)).astype(np.uint32)
        _, _, comps = bitonic_sort(rows)
        assert comps == comparator_count_sort(64) == 672

    def test_payload_follows_keys(self, rng):
        rows = rng.standard_normal((4, 16)).astype(np.float32)
        payload = np.tile(np.arange(16), (4, 1))
        out, pay, _ = bitonic_sort(rows, payload)
        for r in range(4):
            assert np.allclose(rows[r][pay[r]], out[r])

    def test_input_unmodified(self, rng):
        rows = rng.standard_normal((2, 8)).astype(np.float32)
        snapshot = rows.copy()
        bitonic_sort(rows)
        assert np.array_equal(rows, snapshot)

    def test_duplicates(self):
        rows = np.array([[3, 1, 3, 1, 2, 2, 0, 0]], dtype=np.uint32)
        out, _, _ = bitonic_sort(rows)
        assert np.array_equal(out[0], np.array([0, 0, 1, 1, 2, 2, 3, 3]))

    def test_rejects_non_power_of_two_rows(self):
        with pytest.raises(ValueError):
            bitonic_sort(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            bitonic_sort(np.zeros((4,), dtype=np.float32))

    def test_rejects_mismatched_payload(self):
        with pytest.raises(ValueError):
            bitonic_sort(np.zeros((2, 4)), np.zeros((2, 8)))


class TestBitonicMerge:
    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_sorts_bitonic_input(self, rng, n):
        half = np.sort(rng.standard_normal((5, n // 2)).astype(np.float32), axis=1)
        other = np.sort(rng.standard_normal((5, n // 2)).astype(np.float32), axis=1)
        bitonic = np.concatenate([half, other[:, ::-1]], axis=1)
        out, _, comps = bitonic_merge(bitonic)
        assert np.array_equal(out, np.sort(bitonic, axis=1))
        assert comps == comparator_count_merge(n)

    def test_payload(self, rng):
        asc = np.sort(rng.standard_normal((2, 4)).astype(np.float32), axis=1)
        desc = np.sort(rng.standard_normal((2, 4)).astype(np.float32), axis=1)[:, ::-1]
        seq = np.concatenate([asc, desc], axis=1)
        payload = np.tile(np.arange(8), (2, 1))
        out, pay, _ = bitonic_merge(seq, payload)
        for r in range(2):
            assert np.allclose(seq[r][pay[r]], out[r])


class TestMergeSelectLower:
    def test_selects_k_smallest_of_union(self, rng):
        a = np.sort(rng.standard_normal((6, 32)).astype(np.float32), axis=1)
        b = np.sort(rng.standard_normal((6, 32)).astype(np.float32), axis=1)
        lower, comps = merge_select_lower(a, b)
        expect = np.sort(np.concatenate([a, b], axis=1), axis=1)[:, :32]
        assert np.array_equal(np.sort(lower, axis=1), expect)
        assert comps == 32

    def test_result_is_bitonic(self, rng):
        """The lower half is a rotation of an ascending/descending sequence."""
        a = np.sort(rng.standard_normal((1, 16)).astype(np.float32), axis=1)
        b = np.sort(rng.standard_normal((1, 16)).astype(np.float32), axis=1)
        lower, _ = merge_select_lower(a, b)
        merged, _, _ = bitonic_merge(lower)
        assert np.array_equal(merged, np.sort(lower, axis=1))

    def test_with_payload(self, rng):
        a = np.sort(rng.standard_normal((3, 8)).astype(np.float32), axis=1)
        b = np.sort(rng.standard_normal((3, 8)).astype(np.float32), axis=1)
        ai = np.arange(8)[None, :].repeat(3, axis=0)
        bi = (np.arange(8) + 100)[None, :].repeat(3, axis=0)
        keys, payload, comps = merge_select_lower_with_payload(a, ai, b, bi)
        assert comps == 8
        for r in range(3):
            for c in range(8):
                src = a[r] if payload[r, c] < 100 else b[r]
                pos = payload[r, c] % 100
                assert keys[r, c] == src[pos]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge_select_lower(np.zeros((2, 4)), np.zeros((2, 8)))


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=96),
)
def test_bitonic_sort_property(log_n, pool):
    """Sorting arbitrary uint32 rows equals np.sort, any power-of-two width."""
    n = 1 << log_n
    rng = np.random.default_rng(42)
    rows = rng.choice(
        np.array(pool, dtype=np.uint32), size=(3, n), replace=True
    )
    out, _, comps = bitonic_sort(rows)
    assert np.array_equal(out, np.sort(rows, axis=1))
    assert comps == comparator_count_sort(n)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31))
def test_merge_select_lower_property(log_k, seed):
    k = 1 << log_k
    rng = np.random.default_rng(seed)
    a = np.sort(rng.integers(0, 100, size=(2, k), dtype=np.uint32), axis=1)
    b = np.sort(rng.integers(0, 100, size=(2, k), dtype=np.uint32), axis=1)
    lower, _ = merge_select_lower(a, b)
    expect = np.sort(np.concatenate([a, b], axis=1), axis=1)[:, :k]
    assert np.array_equal(np.sort(lower, axis=1), expect)
