"""Differential test layer: every algorithm against a NumPy reference.

Every registered algorithm — including the ``auto`` dispatcher — runs over
a seeded grid of dtypes (float32/float64/int32/uint32), both selection
directions, heavy-tie data, and float specials (±inf, NaN), at k = 1,
n/2 and n.  Each output must match the ``np.partition`` reference exactly
after normalisation into the library's monotone key space (ties at the
boundary may be broken arbitrarily, so the comparison is multiset
equality of keys — the contract :func:`repro.verify.check_topk` checks).

A second class pins the ``auto`` acceptance criterion: on every point of
the grid the dispatcher's simulated time never loses to the *worst*
concrete algorithm (a dispatcher that can't beat "pick anything" would be
pointless).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algos import UnsupportedProblem, get_algorithm
from repro.bench import ALL_ALGORITHMS
from repro.perf import simulate_topk
from repro.primitives import priority_keys
from repro.verify import check_topk

N = 512
KS = (1, N // 2, N)  # the k extremes plus the middle
DTYPES = ("float32", "float64", "int32", "uint32")
ALGOS = ALL_ALGORITHMS + ("auto",)


def _case_data(dtype: str, kind: str, seed: int) -> np.ndarray:
    """Seeded input for one differential case."""
    rng = np.random.default_rng(seed)
    dt = np.dtype(dtype)
    if dt.kind == "f":
        if kind == "uniform":
            return rng.standard_normal(N).astype(dt)
        if kind == "ties":
            # 8 distinct values over 512 slots: every k cuts through a tie
            return rng.integers(0, 8, N).astype(dt)
        if kind == "special":
            data = rng.standard_normal(N).astype(dt)
            idx = rng.permutation(N)
            data[idx[:32]] = np.inf
            data[idx[32:64]] = -np.inf
            data[idx[64:96]] = np.nan
            data[idx[96:112]] = -0.0
            data[idx[112:128]] = 0.0
            return data
    else:
        info = np.iinfo(dt)
        if kind == "uniform":
            return rng.integers(
                info.min, info.max, N, dtype=dt, endpoint=True
            )
        if kind == "ties":
            lo = max(info.min, -4)
            return rng.integers(lo, lo + 8, N, dtype=dt)
    raise AssertionError(f"no kind {kind!r} for dtype {dtype}")


def _kinds(dtype: str) -> tuple[str, ...]:
    if np.dtype(dtype).kind == "f":
        return ("uniform", "ties", "special")
    return ("uniform", "ties")


def _partition_reference(data: np.ndarray, k: int, largest: bool) -> np.ndarray:
    """Top-k key multiset via np.partition in monotone key space."""
    keys = priority_keys(np.ascontiguousarray(data)[None, :], largest=largest)[0]
    return np.sort(np.partition(keys, k - 1)[:k])


@pytest.mark.parametrize("largest", (False, True), ids=("smallest", "largest"))
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("algo", ALGOS)
class TestDifferential:
    def test_matches_partition_reference(self, algo, dtype, largest):
        algorithm = get_algorithm(algo)
        for kind in _kinds(dtype):
            for k in KS:
                if algorithm.supports(N, k) is not None:
                    continue  # an expected Fig. 6/7 gap, not a failure
                seed = hash((dtype, kind, k)) % (2**31)
                data = _case_data(dtype, kind, seed)
                res = algorithm.select(data, k, largest=largest, seed=seed)
                label = f"{algo} {dtype} {kind} k={k} largest={largest}"
                # full output contract: indices valid, multiset == oracle
                check_topk(data, res.values, res.indices, largest=largest)
                # and explicitly against np.partition, the issue's reference
                got = np.sort(
                    priority_keys(
                        np.ascontiguousarray(res.values)[None, :],
                        largest=largest,
                    )[0]
                )
                expect = _partition_reference(data, k, largest)
                assert np.array_equal(got, expect), label


class TestUnsupportedIsExplicit:
    """Gaps must be declared via supports()/UnsupportedProblem, never
    silently wrong output."""

    @pytest.mark.parametrize("algo", ALGOS)
    def test_supports_agrees_with_select(self, algo):
        algorithm = get_algorithm(algo)
        data = _case_data("float32", "uniform", 7)
        for k in KS:
            reason = algorithm.supports(N, k)
            if reason is None:
                algorithm.select(data, k)  # must not raise
            else:
                with pytest.raises(UnsupportedProblem):
                    algorithm.select(data, k)


class TestAutoNeverWorst:
    """The dispatcher must never lose to the worst concrete algorithm."""

    GRID = [
        (n, k, batch)
        for n in (1 << 12, 1 << 14, 1 << 16)
        for k in (1, 64, 2048)
        for batch in (1, 4)
    ]

    def test_auto_beats_worst_everywhere(self):
        losses = []
        for n, k, batch in self.GRID:
            times = {}
            for algo in ALL_ALGORITHMS:
                try:
                    times[algo] = simulate_topk(
                        algo,
                        distribution="uniform",
                        n=n,
                        k=k,
                        batch=batch,
                        seed=3,
                    ).time
                except UnsupportedProblem:
                    continue
            run = simulate_topk(
                "auto", distribution="uniform", n=n, k=k, batch=batch, seed=3
            )
            assert run.dispatch in times, (
                f"auto dispatched to {run.dispatch!r}, which did not run "
                f"at n={n} k={k} batch={batch}"
            )
            worst = max(times.values())
            if run.time > worst:
                losses.append((n, k, batch, run.dispatch, run.time, worst))
        assert not losses, f"auto lost to the worst algorithm at: {losses}"
