"""Differential test layer: every algorithm against a NumPy reference.

Every registered algorithm — including the ``auto`` dispatcher — runs over
a seeded grid of dtypes (float32/float64/int32/uint32), both selection
directions, heavy-tie data, and float specials (±inf, NaN), at k = 1,
n/2 and n.  Each output must match the ``np.partition`` reference exactly
after normalisation into the library's monotone key space (ties at the
boundary may be broken arbitrarily, so the comparison is multiset
equality of keys — the contract :func:`repro.verify.check_topk` checks).

A second class pins the ``auto`` acceptance criterion: on every point of
the grid the dispatcher's simulated time never loses to the *worst*
concrete algorithm (a dispatcher that can't beat "pick anything" would be
pointless).

The fault-injected pass (:class:`TestDegradedDifferential`) extends the
layer to degraded results: a sharded selection that irrecoverably loses a
shard must still return the *exact* top-k of the surviving data, and its
empirical recall against the full np.partition reference must honour the
``recall_bound`` it reports — across the same dtype/direction grid.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.algos import UnsupportedProblem, get_algorithm
from repro.bench import ALL_ALGORITHMS
from repro.faults import FaultPlan, FaultRule
from repro.perf import simulate_topk
from repro.primitives import priority_keys
from repro.serve import sharded_topk
from repro.serve.sharder import shard_bounds
from repro.verify import check_topk

N = 512
KS = (1, N // 2, N)  # the k extremes plus the middle
DTYPES = ("float32", "float64", "int32", "uint32")
ALGOS = ALL_ALGORITHMS + ("auto",)


def _case_data(dtype: str, kind: str, seed: int) -> np.ndarray:
    """Seeded input for one differential case."""
    rng = np.random.default_rng(seed)
    dt = np.dtype(dtype)
    if dt.kind == "f":
        if kind == "uniform":
            return rng.standard_normal(N).astype(dt)
        if kind == "ties":
            # 8 distinct values over 512 slots: every k cuts through a tie
            return rng.integers(0, 8, N).astype(dt)
        if kind == "special":
            data = rng.standard_normal(N).astype(dt)
            idx = rng.permutation(N)
            data[idx[:32]] = np.inf
            data[idx[32:64]] = -np.inf
            data[idx[64:96]] = np.nan
            data[idx[96:112]] = -0.0
            data[idx[112:128]] = 0.0
            return data
    else:
        info = np.iinfo(dt)
        if kind == "uniform":
            return rng.integers(
                info.min, info.max, N, dtype=dt, endpoint=True
            )
        if kind == "ties":
            lo = max(info.min, -4)
            return rng.integers(lo, lo + 8, N, dtype=dt)
    raise AssertionError(f"no kind {kind!r} for dtype {dtype}")


def _kinds(dtype: str) -> tuple[str, ...]:
    if np.dtype(dtype).kind == "f":
        return ("uniform", "ties", "special")
    return ("uniform", "ties")


def _partition_reference(data: np.ndarray, k: int, largest: bool) -> np.ndarray:
    """Top-k key multiset via np.partition in monotone key space."""
    keys = priority_keys(np.ascontiguousarray(data)[None, :], largest=largest)[0]
    return np.sort(np.partition(keys, k - 1)[:k])


@pytest.mark.parametrize("largest", (False, True), ids=("smallest", "largest"))
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("algo", ALGOS)
class TestDifferential:
    def test_matches_partition_reference(self, algo, dtype, largest):
        algorithm = get_algorithm(algo)
        for kind in _kinds(dtype):
            for k in KS:
                if algorithm.supports(N, k) is not None:
                    continue  # an expected Fig. 6/7 gap, not a failure
                seed = hash((dtype, kind, k)) % (2**31)
                data = _case_data(dtype, kind, seed)
                res = algorithm.select(data, k, largest=largest, seed=seed)
                label = f"{algo} {dtype} {kind} k={k} largest={largest}"
                # full output contract: indices valid, multiset == oracle
                check_topk(data, res.values, res.indices, largest=largest)
                # and explicitly against np.partition, the issue's reference
                got = np.sort(
                    priority_keys(
                        np.ascontiguousarray(res.values)[None, :],
                        largest=largest,
                    )[0]
                )
                expect = _partition_reference(data, k, largest)
                assert np.array_equal(got, expect), label


@pytest.mark.parametrize("largest", (False, True), ids=("smallest", "largest"))
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("algo", ALL_ALGORITHMS)
class TestBatchedDifferential:
    """Batched execution is a pure layout change: a (batch, n) call must be
    byte-identical — values, indices, dtypes — to stacking the single-shot
    result of each row.  This pins the fused batched hot paths (AIR,
    BucketSelect, the queue family) to their per-row reference semantics
    across dtypes, directions, ties and float specials.

    ``auto`` is deliberately absent: its dispatch decision depends on the
    batch shape, so cross-batch identity is not part of its contract.
    """

    BATCHES = (1, 3, 17)
    BIG_BATCH = 100

    @staticmethod
    def _rows(algo: str, dtype: str, kind: str, batch: int, seed: int):
        return np.stack(
            [_case_data(dtype, kind, seed + 31 * i) for i in range(batch)]
        )

    @staticmethod
    def _assert_identical(batched, data, algorithm, k, largest, seed, label):
        for i in range(data.shape[0]):
            single = algorithm.select(
                data[i], k, largest=largest, seed=seed
            )
            assert batched.values.dtype == single.values.dtype, label
            assert (
                batched.values[i].tobytes() == single.values.tobytes()
            ), f"{label} row={i} values"
            assert np.array_equal(
                batched.indices[i], single.indices
            ), f"{label} row={i} indices"

    def test_batched_equals_stacked_single_shot(self, algo, dtype, largest):
        algorithm = get_algorithm(algo)
        for kind in _kinds(dtype):
            for batch in self.BATCHES:
                for k in (1, 16):
                    if algorithm.supports(N, k) is not None:
                        continue
                    seed = hash((dtype, kind, batch, k)) % (2**31)
                    data = self._rows(algo, dtype, kind, batch, seed)
                    res = algorithm.select(
                        data, k, largest=largest, seed=seed
                    )
                    self._assert_identical(
                        res, data, algorithm, k, largest, seed,
                        f"{algo} {dtype} {kind} batch={batch} k={k} "
                        f"largest={largest}",
                    )

    def test_big_batch_equals_stacked_single_shot(self, algo, dtype, largest):
        """batch=100 spot check on the tie/special-heavy inputs."""
        kind = "special" if np.dtype(dtype).kind == "f" else "ties"
        k = 16
        algorithm = get_algorithm(algo)
        if algorithm.supports(N, k) is not None:
            pytest.skip(f"{algo} does not support n={N}, k={k}")
        seed = hash((dtype, kind, self.BIG_BATCH)) % (2**31)
        data = self._rows(algo, dtype, kind, self.BIG_BATCH, seed)
        res = algorithm.select(data, k, largest=largest, seed=seed)
        self._assert_identical(
            res, data, algorithm, k, largest, seed,
            f"{algo} {dtype} {kind} batch={self.BIG_BATCH} k={k} "
            f"largest={largest}",
        )


@pytest.mark.parametrize("largest", (False, True), ids=("smallest", "largest"))
@pytest.mark.parametrize("algo", ("quick_select", "sample_select"))
class TestStochasticPartitionLargeN:
    """At n=512 the stochastic partition family finishes entirely inside
    its terminal sort fast path; n=8192 forces real recursion/iteration
    levels, so the fused loop itself (count passes, scatter compaction,
    splitter histograms, per-row survivor masks) is differentially pinned
    to the per-row reference byte-for-byte."""

    N_LARGE = 8192

    def test_fused_loop_equals_stacked_single_shot(self, algo, largest):
        algorithm = get_algorithm(algo)
        rng = np.random.default_rng(99)
        for batch in (1, 7):
            for k in (16, 256):
                data = rng.standard_normal((batch, self.N_LARGE)).astype(
                    np.float32
                )
                # a heavy-tie row makes pivot/splitter boundaries cut
                # through duplicates in at least one lane of the batch
                data[-1] = rng.integers(0, 8, self.N_LARGE).astype(np.float32)
                res = algorithm.select(data, k, largest=largest, seed=5)
                for i in range(batch):
                    single = algorithm.select(
                        data[i], k, largest=largest, seed=5
                    )
                    label = f"{algo} n={self.N_LARGE} batch={batch} k={k} row={i}"
                    assert (
                        res.values[i].tobytes() == single.values.tobytes()
                    ), label
                    assert np.array_equal(res.indices[i], single.indices), label


class TestUnsupportedIsExplicit:
    """Gaps must be declared via supports()/UnsupportedProblem, never
    silently wrong output."""

    @pytest.mark.parametrize("algo", ALGOS)
    def test_supports_agrees_with_select(self, algo):
        algorithm = get_algorithm(algo)
        data = _case_data("float32", "uniform", 7)
        for k in KS:
            reason = algorithm.supports(N, k)
            if reason is None:
                algorithm.select(data, k)  # must not raise
            else:
                with pytest.raises(UnsupportedProblem):
                    algorithm.select(data, k)


@pytest.mark.parametrize("largest", (False, True), ids=("smallest", "largest"))
@pytest.mark.parametrize("dtype", DTYPES)
class TestDegradedDifferential:
    """Degraded results vs np.partition: exact on survivors, recall-bounded
    on the full data (satellite b of the fault-injection PR)."""

    SHARDS = 4
    K = 64
    # sticky -> every retry of the doomed shard fails too, forcing the
    # degraded path deterministically (seed 11 loses >= 1 of 4 shards)
    PLAN = FaultPlan(
        seed=11, rules=(FaultRule(kind="shard_failure", rate=0.3, sticky=True),)
    )

    def test_degraded_recall_bound_holds(self, dtype, largest):
        for kind in _kinds(dtype):
            seed = hash((dtype, kind, "degraded")) % (2**31)
            rng = np.random.default_rng(seed)
            data = np.concatenate(
                [_case_data(dtype, kind, seed + i) for i in range(4)]
            )
            rng.shuffle(data)
            n = data.shape[0]
            result = sharded_topk(
                data, self.K, shards=self.SHARDS, algo="sort",
                largest=largest, injector=self.PLAN.injector(),
            )
            label = f"{dtype} {kind} largest={largest}"
            assert result.degraded and result.recall_bound is not None, label

            # 1. exact on the surviving data: multiset-equal to the
            # np.partition reference computed with the lost ranges removed
            bounds = shard_bounds(n, self.SHARDS)
            lost = np.zeros(n, dtype=bool)
            for shard in result.meta["lost_shards"]:
                lo, hi = bounds[shard]
                lost[lo:hi] = True
            survivors = data[~lost]
            # indices must round-trip into the full data and avoid the
            # lost ranges (check_topk would demand the full-data oracle,
            # which a degraded result by definition cannot match)
            values = np.asarray(result.values)
            gathered = data[result.indices]
            if values.dtype.kind == "f":
                assert np.array_equal(gathered, values, equal_nan=True), label
            else:
                assert np.array_equal(gathered, values), label
            assert not lost[result.indices].any(), label
            got = np.sort(
                priority_keys(
                    np.ascontiguousarray(result.values)[None, :],
                    largest=largest,
                )[0]
            )
            expect = _partition_reference(survivors, self.K, largest)
            assert np.array_equal(got, expect), label

            # 2. empirical recall vs the FULL-data reference honours the
            # reported probabilistic bound (key multisets handle ties)
            full = _partition_reference(data, self.K, largest)
            overlap = sum(
                (Counter(full.tolist()) & Counter(got.tolist())).values()
            )
            recall = overlap / self.K
            assert recall >= result.recall_bound, (
                f"{label}: recall {recall:.3f} < bound "
                f"{result.recall_bound:.3f}"
            )
            assert recall <= 1.0

    def test_transient_faults_stay_exact(self, dtype, largest):
        """Non-degraded fault runs must stay a *differential no-op*: the
        same key multiset as np.partition on the full data."""
        plan = FaultPlan(
            seed=1, rules=(FaultRule(kind="shard_failure", rate=0.4),)
        )
        data = _case_data(dtype, "uniform", 13)
        data = np.concatenate([data, _case_data(dtype, "uniform", 14)])
        result = sharded_topk(
            data, self.K, shards=self.SHARDS, algo="sort",
            largest=largest, injector=plan.injector(),
        )
        assert not result.degraded
        got = np.sort(
            priority_keys(
                np.ascontiguousarray(result.values)[None, :], largest=largest
            )[0]
        )
        assert np.array_equal(got, _partition_reference(data, self.K, largest))


class TestAutoNeverWorst:
    """The dispatcher must never lose to the worst concrete algorithm."""

    GRID = [
        (n, k, batch)
        for n in (1 << 12, 1 << 14, 1 << 16)
        for k in (1, 64, 2048)
        for batch in (1, 4)
    ]

    def test_auto_beats_worst_everywhere(self):
        losses = []
        for n, k, batch in self.GRID:
            times = {}
            for algo in ALL_ALGORITHMS:
                try:
                    times[algo] = simulate_topk(
                        algo,
                        distribution="uniform",
                        n=n,
                        k=k,
                        batch=batch,
                        seed=3,
                    ).time
                except UnsupportedProblem:
                    continue
            run = simulate_topk(
                "auto", distribution="uniform", n=n, k=k, batch=batch, seed=3
            )
            assert run.dispatch in times, (
                f"auto dispatched to {run.dispatch!r}, which did not run "
                f"at n={n} k={k} batch={batch}"
            )
            worst = max(times.values())
            if run.time > worst:
                losses.append((n, k, batch, run.dispatch, run.time, worst))
        assert not losses, f"auto lost to the worst algorithm at: {losses}"
