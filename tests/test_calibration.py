"""Robustness of the paper's qualitative claims to calibration constants.

The cost model's behavioural constants are empirical (see
repro.perf.calibration).  The paper's *qualitative* findings must not hinge
on any single constant's exact value: these tests perturb the key knobs by
±30% and re-check the core orderings.  (The module reloads calibration
after each test so perturbations cannot leak.)
"""

from __future__ import annotations

import importlib

import pytest

from repro.perf import calibration


@pytest.fixture(autouse=True)
def restore_calibration():
    saved = {
        name: getattr(calibration, name)
        for name in dir(calibration)
        if name.isupper()
    }
    yield
    for name, value in saved.items():
        setattr(calibration, name, value)
    importlib.reload(calibration)


def times(n, k, algos, **kwargs):
    from repro.perf import simulate_topk

    return {
        a: simulate_topk(a, distribution="uniform", n=n, k=k, cap=1 << 16, **kwargs).time
        for a in algos
    }


class TestConstantDocumentation:
    def test_every_constant_is_annotated(self):
        """Each behavioural constant carries rationale in the module source."""
        import inspect

        source = inspect.getsource(calibration)
        for name in dir(calibration):
            if name.isupper():
                assert source.count(name) >= 1

    def test_constants_positive(self):
        for name in dir(calibration):
            if name.isupper():
                assert getattr(calibration, name) > 0, name

    def test_scatter_penalties_ordered(self):
        """Atomic-append contention exceeds plain scatter inefficiency."""
        assert calibration.ATOMIC_SCATTER_PENALTY > calibration.SCATTER_WRITE_PENALTY
        assert calibration.SCATTER_WRITE_PENALTY >= 1.0

    def test_queue_efficiency_ordering(self):
        """Shared-queue streaming beats per-thread queues; the GridSelect
        thread-queue ablation sits between Faiss and the shared design."""
        assert (
            calibration.WARP_EFFICIENCY_THREAD_QUEUE
            < calibration.WARP_EFFICIENCY_THREAD_QUEUE_GRID
            < calibration.WARP_EFFICIENCY_SHARED_QUEUE
            <= 1.0
        )


class TestPerturbationRobustness:
    @pytest.mark.parametrize("factor", [0.7, 1.3])
    def test_air_beats_radix_under_scatter_perturbation(self, factor):
        calibration.SCATTER_WRITE_PENALTY *= factor
        t = times(1 << 22, 256, ("air_topk", "radix_select"))
        assert t["air_topk"] < t["radix_select"]

    @pytest.mark.parametrize("factor", [0.7, 1.3])
    def test_grid_beats_block_under_efficiency_perturbation(self, factor):
        calibration.WARP_EFFICIENCY_THREAD_QUEUE = min(
            0.95, calibration.WARP_EFFICIENCY_THREAD_QUEUE * factor
        )
        t = times(1 << 24, 256, ("grid_select", "block_select"))
        assert t["grid_select"] < t["block_select"]

    @pytest.mark.parametrize("factor", [0.7, 1.3])
    def test_adaptive_wins_adversarial_under_atomic_perturbation(self, factor):
        from repro.perf import simulate_topk

        calibration.ATOMIC_SCATTER_PENALTY = max(
            calibration.SCATTER_WRITE_PENALTY,
            calibration.ATOMIC_SCATTER_PENALTY * factor,
        )
        on = simulate_topk(
            "air_topk", distribution="adversarial", n=1 << 22, k=2048, cap=1 << 16
        )
        off = simulate_topk(
            "air_topk",
            distribution="adversarial",
            n=1 << 22,
            k=2048,
            cap=1 << 16,
            adaptive=False,
        )
        assert on.time < off.time

    @pytest.mark.parametrize("factor", [0.7, 1.3])
    def test_k_growth_of_queue_family_survives(self, factor):
        calibration.QUEUE_K_OPS_KNEE *= factor
        small = times(1 << 24, 32, ("grid_select",))["grid_select"]
        large = times(1 << 24, 2048, ("grid_select",))["grid_select"]
        assert large > small

    @pytest.mark.parametrize("factor", [0.7, 1.3])
    def test_air_vs_sota_positive_under_host_cost_perturbation(self, factor):
        calibration.HOST_RADIX_ITER_SECONDS *= factor
        calibration.HOST_SCAN_SECONDS *= factor
        t = times(
            1 << 22,
            256,
            ("air_topk", "sort", "radix_select", "sample_select", "bucket_select"),
        )
        assert t["air_topk"] == min(t.values())
