"""Tests for the warp collectives behind GridSelect's two-step insertion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import ballot, lane_rank, two_step_positions


class TestBallot:
    def test_packs_lanes(self):
        mask = ballot(np.array([True, False, True, True]))
        assert mask == 0b1101

    def test_empty_predicate(self):
        assert ballot(np.zeros(32, dtype=bool)) == 0

    def test_all_lanes(self):
        assert ballot(np.ones(32, dtype=bool)) == 0xFFFFFFFF

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ballot(np.zeros((2, 2), dtype=bool))

    def test_rejects_oversized_warp(self):
        with pytest.raises(ValueError):
            ballot(np.zeros(65, dtype=bool))


class TestLaneRank:
    def test_counts_prior_qualified(self):
        ranks = lane_rank(np.array([True, False, True, True, False]))
        assert np.array_equal(ranks, [0, 1, 1, 2, 3])

    def test_matches_popc_of_lower_ballot_bits(self, rng):
        pred = rng.random(32) < 0.4
        mask = ballot(pred)
        for lane in range(32):
            expected = bin(mask & ((1 << lane) - 1)).count("1")
            assert lane_rank(pred)[lane] == expected


class TestTwoStepPositions:
    def test_paper_figure5_example(self):
        """Fig. 5: 8 lanes, queue size 4 (scaled-down), fill 1.

        Lanes 0,2,4,6,7 hold qualified candidates.  With one slot already
        used, positions are 1,2,3,4,5: lanes 0,2,4 insert immediately,
        lanes 6,7 wait for the flush.
        """
        pred = np.array([1, 0, 1, 0, 1, 0, 1, 1], dtype=bool)
        first, second, new_fill = two_step_positions(pred, queue_fill=1, queue_size=4)
        assert np.array_equal(first, [1, 0, 1, 0, 1, 0, 0, 0])
        assert np.array_equal(second, [0, 0, 0, 0, 0, 0, 1, 1])
        assert new_fill == 2  # 6 total - 4 flushed

    def test_no_flush_when_space(self):
        pred = np.array([True, True, False, False])
        first, second, new_fill = two_step_positions(pred, queue_fill=0, queue_size=8)
        assert first.sum() == 2 and second.sum() == 0
        assert new_fill == 2

    def test_exact_fill_flushes(self):
        """The paper triggers the flush when the queue becomes full."""
        pred = np.array([True, True])
        first, second, new_fill = two_step_positions(pred, queue_fill=2, queue_size=4)
        assert first.sum() == 2 and second.sum() == 0
        assert new_fill == 0  # full -> flushed -> empty

    def test_fill_conservation(self, rng):
        fill = 0
        total_inserted = 0
        flushes = 0
        for _ in range(50):
            pred = rng.random(32) < 0.5
            before = fill
            first, second, fill = two_step_positions(pred, before, 32)
            q = int(pred.sum())
            total_inserted += q
            if before + q >= 32:
                flushes += 1
            assert first.sum() + second.sum() == q
        assert total_inserted == flushes * 32 + fill

    def test_invalid_fill(self):
        with pytest.raises(ValueError):
            two_step_positions(np.array([True]), queue_fill=5, queue_size=4)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.booleans(), min_size=1, max_size=32),
    st.integers(min_value=0, max_value=31),
)
def test_two_step_partition_property(pred_list, fill_raw):
    """first/second partition the qualified lanes; positions are unique."""
    pred = np.array(pred_list, dtype=bool)
    queue_size = 32
    fill = min(fill_raw, queue_size)
    first, second, new_fill = two_step_positions(pred, fill, queue_size)
    assert not np.any(first & second)
    assert np.array_equal(first | second, pred)
    # storing positions are unique and dense
    positions = fill + lane_rank(pred)[pred]
    assert len(set(positions.tolist())) == len(positions)
    assert 0 <= new_fill < queue_size or (new_fill == fill + pred.sum() < queue_size)
