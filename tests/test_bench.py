"""Tests for the benchmark harness: sweeps, SOTA, Table 2, reporting."""

from __future__ import annotations

import csv

import pytest

from repro.bench import (
    ALL_ALGORITHMS,
    BASELINE_ALGORITHMS,
    OUR_ALGORITHMS,
    BenchPoint,
    SweepResult,
    format_series_table,
    format_table,
    format_time,
    geomean,
    run_point,
    speedup_range,
    sweep,
    table2,
    write_csv,
)


@pytest.fixture(scope="module")
def mini_sweep() -> SweepResult:
    return sweep(
        distributions=("uniform",),
        ns=(1 << 12, 1 << 14),
        ks=(8, 64),
        batches=(1,),
        cap=1 << 16,
    )


class TestRoster:
    def test_partition(self):
        assert set(OUR_ALGORITHMS) | set(BASELINE_ALGORITHMS) == set(ALL_ALGORITHMS)
        assert not set(OUR_ALGORITHMS) & set(BASELINE_ALGORITHMS)
        assert len(BASELINE_ALGORITHMS) == 8


class TestRunPoint:
    def test_supported(self):
        p = run_point("air_topk", distribution="uniform", n=1 << 12, k=16)
        assert p.time is not None and p.time > 0
        assert p.mode == "exact"

    def test_unsupported_yields_none(self):
        p = run_point("bitonic_topk", distribution="uniform", n=1 << 12, k=512)
        assert p.time is None
        assert p.status == "unsupported"
        assert p.detail  # the reason is recorded, not silently dropped

    def test_ok_status(self):
        p = run_point("sort", distribution="uniform", n=1 << 12, k=16)
        assert p.status == "ok" and p.detail == ""

    def test_auto_records_dispatch(self):
        p = run_point("auto", distribution="uniform", n=1 << 12, k=16)
        assert p.status == "ok"
        assert p.detail.startswith("dispatch=")
        assert p.detail.removeprefix("dispatch=") in ALL_ALGORITHMS


class TestSweep:
    def test_grid_coverage(self, mini_sweep):
        assert len(mini_sweep.points) == len(ALL_ALGORITHMS) * 2 * 2
        assert len(mini_sweep.keys()) == 4

    def test_records_k_above_n_as_unsupported(self):
        res = sweep(
            algos=("air_topk",),
            distributions=("uniform",),
            ns=(16,),
            ks=(8, 64),
            cap=1 << 16,
        )
        # the k > n point is recorded explicitly, not silently dropped
        assert len(res.points) == 2
        ok, bad = res.points
        assert ok.status == "ok" and ok.k == 8
        assert bad.status == "unsupported" and bad.k == 64
        assert bad.time is None and "exceeds" in bad.detail

    def test_time_of(self, mini_sweep):
        t = mini_sweep.time_of("sort", "uniform", 1 << 12, 8, 1)
        assert t is not None
        assert mini_sweep.time_of("sort", "uniform", 1 << 13, 8, 1) is None

    def test_sota_excludes_our_methods(self, mini_sweep):
        key = ("uniform", 1 << 12, 8, 1)
        sota = mini_sweep.sota_time(*key)
        baseline_times = [
            mini_sweep.time_of(a, *key)
            for a in BASELINE_ALGORITHMS
            if mini_sweep.time_of(a, *key) is not None
        ]
        assert sota == min(baseline_times)
        air = mini_sweep.time_of("air_topk", *key)
        # even if AIR is faster, SOTA must not include it
        assert sota >= min(baseline_times)
        assert air not in (None,)

    def test_series(self, mini_sweep):
        s = mini_sweep.series(
            "air_topk", distribution="uniform", batch=1, vary="k", fixed={"n": 1 << 12}
        )
        assert [x for x, _ in s] == [8, 64]
        with pytest.raises(ValueError):
            mini_sweep.series(
                "air_topk", distribution="uniform", batch=1, vary="z", fixed={}
            )

    def test_progress_callback(self):
        seen = []
        sweep(
            algos=("air_topk", "sort"),
            distributions=("uniform",),
            ns=(1 << 10,),
            ks=(4,),
            cap=1 << 14,
            progress=seen.append,
        )
        assert len(seen) == 2
        assert all(isinstance(p, BenchPoint) for p in seen)


class TestSpeedups:
    def test_range_vs_algorithm(self, mini_sweep):
        r = speedup_range(
            mini_sweep,
            numerator="air_topk",
            denominator="radix_select",
            distribution="uniform",
            batch=1,
        )
        assert r.points == 4
        assert 0 < r.low <= r.high

    def test_range_vs_sota(self, mini_sweep):
        r = speedup_range(
            mini_sweep,
            numerator="air_topk",
            denominator="sota",
            distribution="uniform",
            batch=1,
        )
        assert r.points == 4

    def test_empty_range(self, mini_sweep):
        r = speedup_range(
            mini_sweep,
            numerator="air_topk",
            denominator="sota",
            distribution="normal",
            batch=1,
        )
        assert r.points == 0
        assert r.formatted() == "n/a"

    def test_table2_rows(self, mini_sweep):
        rows = table2(mini_sweep, batches=(1,), distributions=("uniform",))
        assert len(rows) == 1
        row = rows[0]
        assert row.air_vs_radix.low > 1.0  # AIR always beats RadixSelect here
        assert "-" in row.air_vs_radix.formatted()


class TestReport:
    def test_format_time(self):
        assert format_time(None) == "-"
        assert format_time(5e-6) == "5.00us"
        assert format_time(5e-3) == "5.000ms"
        assert format_time(5.0) == "5.000s"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines[:1])) == 1

    def test_format_table_validates(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_series_table(self, mini_sweep):
        text = format_series_table(
            mini_sweep,
            algos=("air_topk", "sort"),
            distribution="uniform",
            batch=1,
            vary="k",
            fixed={"n": 1 << 12},
        )
        assert "air_topk" in text and "sort" in text
        assert "2^3" in text  # power-of-two x labels

    def test_write_csv(self, mini_sweep, tmp_path):
        path = write_csv(mini_sweep.points, tmp_path / "out" / "points.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == [
            "algo",
            "distribution",
            "n",
            "k",
            "batch",
            "time_s",
            "mode",
            "status",
            "detail",
        ]
        assert len(rows) == len(mini_sweep.points) + 1

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
