"""Tests for prefix scans, target-bucket search and digit histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import (
    batched_digit_histogram,
    block_scan_ops,
    digit_histogram,
    exclusive_scan,
    find_target_bucket,
    inclusive_scan,
)


class TestScans:
    def test_inclusive(self):
        assert np.array_equal(inclusive_scan(np.array([1, 2, 3])), [1, 3, 6])

    def test_exclusive(self):
        assert np.array_equal(exclusive_scan(np.array([1, 2, 3])), [0, 1, 3])

    def test_exclusive_2d(self):
        x = np.array([[1, 2], [3, 4]])
        out = exclusive_scan(x, axis=1)
        assert np.array_equal(out, [[0, 1], [0, 3]])

    def test_relationship(self, rng):
        x = rng.integers(0, 10, 100)
        assert np.array_equal(exclusive_scan(x) + x, inclusive_scan(x))

    def test_block_scan_ops(self):
        assert block_scan_ops(1) == 0
        assert block_scan_ops(2048) == 2048 * 11
        with pytest.raises(ValueError):
            block_scan_ops(0)


class TestFindTargetBucket:
    def test_paper_figure1_example(self):
        """Fig. 1 of the paper: N=9, K=4, histogram [3, 2, 1, 3]."""
        hist = np.array([3, 2, 1, 3])
        psum = inclusive_scan(hist)
        target = find_target_bucket(psum, 4)
        assert target == 1  # digit '01', because psum[1] = 5 >= 4 > psum[0] = 3

    def test_first_bucket(self):
        psum = inclusive_scan(np.array([5, 1, 1]))
        assert find_target_bucket(psum, 1) == 0
        assert find_target_bucket(psum, 5) == 0
        assert find_target_bucket(psum, 6) == 1

    def test_last_bucket(self):
        psum = inclusive_scan(np.array([1, 0, 3]))
        assert find_target_bucket(psum, 4) == 2

    def test_skips_empty_buckets(self):
        psum = inclusive_scan(np.array([0, 0, 4, 0]))
        assert find_target_bucket(psum, 1) == 2

    def test_k_out_of_range(self):
        psum = inclusive_scan(np.array([2, 2]))
        with pytest.raises(ValueError):
            find_target_bucket(psum, 0)
        with pytest.raises(ValueError):
            find_target_bucket(psum, 5)

    def test_batched(self):
        hists = np.array([[3, 2, 1], [1, 1, 4]])
        psum = inclusive_scan(hists, axis=1)
        out = find_target_bucket(psum, np.array([4, 3]))
        assert np.array_equal(out, [1, 2])

    def test_batched_validates_k_shape(self):
        psum = inclusive_scan(np.ones((2, 4), dtype=int), axis=1)
        with pytest.raises(ValueError):
            find_target_bucket(psum, np.array([1, 1, 1]))


class TestHistogram:
    def test_basic(self):
        digits = np.array([0, 1, 1, 3, 3, 3])
        assert np.array_equal(digit_histogram(digits, 4), [1, 2, 0, 3])

    def test_empty(self):
        assert np.array_equal(digit_histogram(np.array([], dtype=np.int64), 4), [0] * 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            digit_histogram(np.array([4]), 4)
        with pytest.raises(ValueError):
            digit_histogram(np.array([-1]), 4)

    def test_batched_matches_per_row(self, rng):
        digits = rng.integers(0, 16, size=(5, 200)).astype(np.uint32)
        batched = batched_digit_histogram(digits, 16)
        for row in range(5):
            assert np.array_equal(batched[row], digit_histogram(digits[row], 16))

    def test_batched_requires_2d(self):
        with pytest.raises(ValueError):
            batched_digit_histogram(np.zeros(4, dtype=np.uint32), 4)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=200),
)
def test_target_bucket_invariant(digit_list, k_raw):
    """psum[j-1] < K <= psum[j] — the paper's Sec. 2.3 definition."""
    digits = np.array(digit_list)
    hist = digit_histogram(digits, 16)
    psum = inclusive_scan(hist)
    k = 1 + (k_raw - 1) % len(digit_list)
    j = int(find_target_bucket(psum, k))
    assert psum[j] >= k
    assert j == 0 or psum[j - 1] < k


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=64))
def test_histogram_sums_to_count(digit_list):
    digits = np.array(digit_list, dtype=np.int64)
    hist = digit_histogram(digits, 8)
    assert hist.sum() == len(digit_list)
    assert (hist >= 0).all()
