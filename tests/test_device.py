"""Tests for the simulated device: specs, scheduling, counters, timeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import (
    A10,
    A100,
    H100,
    V100,
    Device,
    GPUSpec,
    Timeline,
    TraceEvent,
    ceil_div,
    get_spec,
    next_pow2,
    occupancy,
    streaming_grid,
)


class TestSpecs:
    def test_presets(self):
        assert A100.sm_count == 108
        assert H100.peak_bandwidth > 2 * A100.peak_bandwidth
        assert A10.peak_bandwidth < A100.peak_bandwidth
        assert V100.peak_bandwidth < A100.peak_bandwidth

    def test_get_spec(self):
        assert get_spec("a100") is A100
        assert get_spec("H100") is H100
        assert get_spec("v100") is V100
        with pytest.raises(KeyError):
            get_spec("B100")

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", sm_count=0, peak_bandwidth=1, peak_fp32=1, clock_hz=1)
        with pytest.raises(ValueError):
            GPUSpec(name="bad", sm_count=1, peak_bandwidth=-1, peak_fp32=1, clock_hz=1)

    def test_bandwidth_fraction_saturates(self):
        assert A100.bandwidth_fraction(0) == 0.0
        assert A100.bandwidth_fraction(A100.saturation_warps) == 1.0
        assert A100.bandwidth_fraction(10 * A100.saturation_warps) == 1.0
        half = A100.bandwidth_fraction(A100.saturation_warps / 2)
        assert half == pytest.approx(0.5)

    def test_with_overrides(self):
        fast = A100.with_overrides(peak_bandwidth=2e12)
        assert fast.peak_bandwidth == 2e12
        assert fast.sm_count == A100.sm_count
        assert A100.peak_bandwidth != 2e12  # original untouched


class TestLaunchHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 3) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    def test_next_pow2(self):
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(1025) == 2048
        with pytest.raises(ValueError):
            next_pow2(0)

    def test_occupancy_limited_by_threads(self):
        occ = occupancy(A100, block_threads=1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by in ("threads", "registers")

    def test_occupancy_limited_by_shared_mem(self):
        occ = occupancy(A100, block_threads=128, shared_mem_per_block=100 * 1024)
        assert occ.limited_by == "shared_mem"
        assert occ.blocks_per_sm == 1

    def test_occupancy_limited_by_registers(self):
        occ = occupancy(A100, block_threads=256, registers_per_thread=128)
        assert occ.limited_by == "registers"
        assert occ.blocks_per_sm == 2

    def test_occupancy_validation(self):
        with pytest.raises(ValueError):
            occupancy(A100, block_threads=0)
        with pytest.raises(ValueError):
            occupancy(A100, block_threads=2048)

    def test_streaming_grid_covers_input(self):
        blocks = streaming_grid(A100, 1 << 20, block_threads=256, items_per_thread=8)
        assert blocks * 256 * 8 >= 1 << 20

    def test_streaming_grid_caps_waves(self):
        small = streaming_grid(A100, 1 << 20)
        huge = streaming_grid(A100, 1 << 34)
        assert huge >= small
        assert huge <= A100.sm_count * 8 * 32  # resident x max_waves bound

    def test_streaming_grid_tiny(self):
        assert streaming_grid(A100, 0) == 1
        assert streaming_grid(A100, 1) == 1


class TestTimeline:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(name="x", stream="gpu", start=2.0, end=1.0)
        with pytest.raises(ValueError):
            TraceEvent(name="x", stream="nope", start=0.0, end=1.0)

    def test_busy_and_gaps(self):
        tl = Timeline()
        tl.record("a", "gpu", 0.0, 1.0)
        tl.record("b", "gpu", 3.0, 4.0)
        assert tl.busy_time("gpu") == pytest.approx(2.0)
        assert tl.idle_gaps("gpu") == [(1.0, 3.0)]
        assert tl.span == pytest.approx(4.0)

    def test_render_contains_streams_and_legend(self):
        tl = Timeline()
        tl.record("kern", "gpu", 0.0, 1e-6)
        tl.record("copy", "pcie_d2h", 1e-6, 3e-6)
        text = tl.render()
        assert "gpu" in text and "pcie_d2h" in text
        assert "K=kern" in text and "C=copy" in text

    def test_render_empty(self):
        assert "empty" in Timeline().render()


class TestDeviceScheduling:
    def test_kernels_execute_in_order(self, device):
        device.launch_kernel("k1", grid_blocks=4, block_threads=256, bytes_read=1e6)
        device.launch_kernel("k2", grid_blocks=4, block_threads=256, bytes_read=1e6)
        events = device.timeline.stream_events("gpu")
        assert [e.name for e in events] == ["k1", "k2"]
        assert events[1].start >= events[0].end

    def test_launch_overhead_occupies_cpu(self, device):
        for _ in range(10):
            device.launch_kernel("k", grid_blocks=1, block_threads=32)
        assert device.cpu_time == pytest.approx(
            10 * device.spec.kernel_launch_latency, rel=1e-9
        )

    def test_gpu_starves_without_submissions(self, device):
        """A tiny kernel ends before the CPU can submit the next one."""
        device.launch_kernel("k1", grid_blocks=1, block_threads=32)
        t_gap_start = device.gpu_time
        device.host_compute("busy", 1e-3)
        device.launch_kernel("k2", grid_blocks=1, block_threads=32)
        ev = device.timeline.stream_events("gpu")[-1]
        assert ev.start >= t_gap_start + 1e-3

    def test_blocking_copy_drains_stream(self, device):
        device.launch_kernel("k", grid_blocks=108, block_threads=256, bytes_read=1e9)
        kernel_end = device.gpu_time
        device.memcpy_d2h("hist", 1024)
        copy = device.timeline.stream_events("pcie_d2h")[0]
        assert copy.start >= kernel_end

    def test_synchronize_waits_for_gpu(self, device):
        device.launch_kernel("k", grid_blocks=108, block_threads=256, bytes_read=1e9)
        device.synchronize()
        assert device.cpu_time >= device.gpu_time

    def test_elapsed_monotone(self, device):
        previous = 0.0
        for action in range(20):
            if action % 3 == 0:
                device.launch_kernel("k", grid_blocks=2, block_threads=64, flops=1e6)
            elif action % 3 == 1:
                device.memcpy_h2d("h", 128)
            else:
                device.synchronize()
            assert device.elapsed >= previous
            previous = device.elapsed


class TestDeviceCounters:
    def test_kernel_accounting(self, device):
        device.launch_kernel(
            "k",
            grid_blocks=16,
            block_threads=256,
            bytes_read=1000.0,
            bytes_written=500.0,
            flops=250.0,
        )
        c = device.counters
        assert c.kernel_launches == 1
        assert c.bytes_read == 1000.0
        assert c.bytes_written == 500.0
        assert c.flops == 250.0
        stats = device.kernel_stats["k"]
        assert stats.launches == 1
        assert stats.bytes_total == 1500.0
        assert stats.time > 0

    def test_pcie_accounting(self, device):
        device.memcpy_d2h("d", 2048)
        device.memcpy_h2d("h", 64)
        c = device.counters
        assert c.d2h_transfers == 1 and c.h2d_transfers == 1
        assert c.pcie_bytes == 2048 + 64

    def test_workspace_peak(self, device):
        device.allocate_workspace(100)
        device.allocate_workspace(50)
        device.free_workspace(100)
        device.allocate_workspace(30)
        assert device.counters.peak_workspace_bytes == 150

    def test_negative_rejected(self, device):
        with pytest.raises(ValueError):
            device.launch_kernel("k", grid_blocks=1, block_threads=32, flops=-1.0)
        with pytest.raises(ValueError):
            device.memcpy_d2h("d", -1)
        with pytest.raises(ValueError):
            device.host_compute("h", -1)


class TestScaledAccounting:
    def test_scalable_quantities_multiplied(self):
        dev = Device(A100, scale=4.0)
        dev.launch_kernel(
            "k", grid_blocks=16, block_threads=256, bytes_read=100.0, flops=10.0
        )
        assert dev.counters.bytes_read == 400.0
        assert dev.counters.flops == 40.0

    def test_fixed_quantities_not_scaled(self):
        dev = Device(A100, scale=4.0)
        dev.launch_kernel(
            "k",
            grid_blocks=16,
            block_threads=256,
            bytes_read=100.0,
            fixed_bytes_written=8.0,
            fixed_flops=2.0,
        )
        assert dev.counters.bytes_written == 8.0
        assert dev.counters.flops == 2.0

    def test_scalable_false(self):
        dev = Device(A100, scale=8.0)
        dev.launch_kernel(
            "k", grid_blocks=1, block_threads=32, bytes_read=64.0, scalable=False
        )
        assert dev.counters.bytes_read == 64.0

    def test_pcie_not_scaled_by_default(self):
        dev = Device(A100, scale=8.0)
        dev.memcpy_d2h("d", 100)
        assert dev.counters.d2h_bytes == 100

    def test_workspace_scaled(self):
        dev = Device(A100, scale=2.0)
        dev.allocate_workspace(100)
        assert dev.counters.peak_workspace_bytes == 200

    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            Device(A100, scale=0.5)

    def test_scaled_time_close_to_exact(self):
        """A scaled launch prices the same as the equivalent full launch."""
        exact = Device(A100)
        exact.launch_kernel(
            "k", grid_blocks=432, block_threads=256, bytes_read=4e9
        )
        scaled = Device(A100, scale=1000.0)
        scaled.launch_kernel(
            "k", grid_blocks=432, block_threads=256, bytes_read=4e6
        )
        assert scaled.elapsed == pytest.approx(exact.elapsed, rel=1e-9)
