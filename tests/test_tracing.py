"""Tests for the chrome-trace exporter and the select_k wrapper."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import select_k, topk
from repro.device import STREAMS, chrome_trace, write_chrome_trace
from repro.verify import oracle_topk_values


class TestChromeTrace:
    @pytest.fixture()
    def run(self, rng):
        data = rng.standard_normal(50000).astype(np.float32)
        return topk(data, 128, algo="radix_select")

    def test_event_structure(self, run):
        payload = chrome_trace(run.device.timeline, device=run.device)
        events = payload["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == len(STREAMS)
        assert len(slices) == len(run.device.timeline.events)
        for e in slices:
            assert e["dur"] >= 0
            assert e["ts"] >= 0
            assert e["cat"] in STREAMS

    def test_timestamps_in_microseconds(self, run):
        payload = chrome_trace(run.device.timeline)
        last_end = max(
            e["ts"] + e["dur"] for e in payload["traceEvents"] if e["ph"] == "X"
        )
        assert last_end == pytest.approx(run.device.elapsed * 1e6, rel=0.01)

    def test_kernel_args_attached(self, run):
        payload = chrome_trace(run.device.timeline, device=run.device)
        kernel_events = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "CalculateOccurrence"
        ]
        assert kernel_events
        assert "bytes_read" in kernel_events[0]["args"]

    def test_write_roundtrip(self, run, tmp_path):
        path = write_chrome_trace(run.device, tmp_path / "deep" / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]

    def test_streams_are_separate_tracks(self, run):
        payload = chrome_trace(run.device.timeline)
        tids = {
            e["cat"]: e["tid"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert tids["gpu"] != tids["cpu"]
        assert len(set(tids.values())) == len(tids)


class TestSelectK:
    """select_k() is a deprecated v1 shim; every call must warn."""

    def test_matches_topk(self, rng):
        data = rng.standard_normal((3, 2000)).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            values, indices = select_k(data, 16)
        assert np.array_equal(values, oracle_topk_values(data, 16))
        assert np.array_equal(np.take_along_axis(data, indices, axis=1), values)

    def test_select_min_false(self, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            values, _ = select_k(data, 4, select_min=False)
        assert np.array_equal(values, oracle_topk_values(data, 4, largest=True))

    def test_algo_and_kwargs_forwarded(self, rng):
        data = rng.standard_normal(5000).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            values, _ = select_k(data, 8, algo="grid_select", seed=5)
        assert np.array_equal(values, oracle_topk_values(data, 8))
