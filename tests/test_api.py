"""The v2 facade: one keyword-only topk(), deprecation shims, devices."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import A100, H100, Device, check_topk, get_spec, select_k, topk
from repro.api import resolve_device


class TestFacade:
    def test_default_is_auto_dispatch(self, rng):
        data = rng.standard_normal(4096).astype(np.float32)
        r = topk(data, 16)
        assert r.algo == "auto"
        check_topk(data, r.values, r.indices)

    def test_keyword_only(self, rng):
        data = rng.standard_normal(256).astype(np.float32)
        with pytest.raises(TypeError):
            topk(data, 8, "air_topk")  # algo must be keyword

    def test_largest_and_algo(self, rng):
        data = rng.standard_normal(4096).astype(np.float32)
        r = topk(data, 16, algo="grid_select", largest=True)
        check_topk(data, r.values, r.indices, largest=True)

    def test_params_reach_the_algorithm(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        fused = topk(data, 64, algo="air_topk", params={"fuse_last_filter": True})
        plain = topk(data, 64, algo="air_topk", params={"fuse_last_filter": False})
        assert np.array_equal(fused.values, plain.values)
        launches = lambda r: r.device.counters.kernel_launches  # noqa: E731
        assert launches(fused) == launches(plain) - 1

    def test_batch_reshapes_flat_buffer(self, rng):
        flat = rng.standard_normal(8 * 1024).astype(np.float32)
        r = topk(flat, 8, algo="sort", batch=8)
        assert r.values.shape == (8, 8)
        expected = topk(flat.reshape(8, 1024), 8, algo="sort")
        assert np.array_equal(r.values, expected.values)
        assert np.array_equal(r.indices, expected.indices)

    def test_batch_must_divide(self, rng):
        flat = rng.standard_normal(1000).astype(np.float32)
        with pytest.raises(ValueError):
            topk(flat, 4, batch=7)

    def test_batch_must_match_2d(self, rng):
        data = rng.standard_normal((4, 128)).astype(np.float32)
        with pytest.raises(ValueError):
            topk(data, 4, batch=3)
        assert topk(data, 4, algo="sort", batch=4).values.shape == (4, 4)


class TestDeviceResolution:
    def test_default_is_a100(self):
        run_device, spec = resolve_device(None)
        assert run_device is None and spec is A100

    def test_preset_name(self):
        _, spec = resolve_device("H100")
        assert spec is get_spec("H100")

    def test_spec_object(self):
        _, spec = resolve_device(H100)
        assert spec is H100

    def test_existing_device_is_reused(self, rng):
        dev = Device(A100)
        data = rng.standard_normal(512).astype(np.float32)
        r = topk(data, 4, algo="sort", device=dev)
        assert r.device is dev

    def test_bad_device_type(self):
        with pytest.raises(TypeError):
            resolve_device(3.14)

    def test_facade_accepts_preset_string(self, rng):
        data = rng.standard_normal(512).astype(np.float32)
        r = topk(data, 4, algo="sort", device="H100")
        assert r.device.spec is get_spec("H100")


class TestDeprecationShims:
    """Old v1 signatures keep working, warn, and return identical results."""

    def test_select_k_warns_and_matches(self, rng):
        data = rng.standard_normal((3, 2000)).astype(np.float32)
        with pytest.warns(DeprecationWarning, match="select_k"):
            values, indices = select_k(data, 16)
        modern = topk(data, 16, algo="air_topk")
        assert np.array_equal(values, modern.values)
        assert np.array_equal(indices, modern.indices)

    def test_select_k_select_min_false(self, rng):
        data = rng.standard_normal(2000).astype(np.float32)
        with pytest.warns(DeprecationWarning):
            values, indices = select_k(data, 8, select_min=False)
        modern = topk(data, 8, algo="air_topk", largest=True)
        assert np.array_equal(values, modern.values)
        assert np.array_equal(indices, modern.indices)

    def test_spec_kwarg_warns_and_matches(self, rng):
        data = rng.standard_normal(2000).astype(np.float32)
        with pytest.warns(DeprecationWarning, match="spec="):
            old = topk(data, 8, algo="sort", spec=H100)
        new = topk(data, 8, algo="sort", device=H100)
        assert old.device.spec is H100
        assert np.array_equal(old.values, new.values)
        assert np.array_equal(old.indices, new.indices)

    def test_loose_tuning_kwargs_warn_and_match(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        with pytest.warns(DeprecationWarning, match="params"):
            old = topk(data, 64, algo="air_topk", early_stop=False)
        new = topk(data, 64, algo="air_topk", params={"early_stop": False})
        assert np.array_equal(old.values, new.values)
        assert np.array_equal(old.indices, new.indices)

    def test_modern_calls_do_not_warn(self, rng):
        data = rng.standard_normal(2000).astype(np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            topk(data, 8, algo="air_topk", device="A100", params={"alpha": 64.0})
