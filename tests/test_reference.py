"""Tests for the sequential heap reference, and cross-checks against it."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import topk
from repro.reference import BoundedHeap, heap_topk


class TestBoundedHeap:
    def test_fills_then_filters(self):
        heap = BoundedHeap(3)
        assert heap.threshold is None
        for key in (5, 1, 9):
            assert heap.offer(key, key)
        assert heap.threshold == 9
        assert heap.offer(2, 2)       # displaces 9
        assert not heap.offer(100, 100)
        keys, idx = heap.items()
        assert list(keys) == [1, 2, 5]
        assert list(idx) == [1, 2, 5]

    def test_heap_property_maintained(self, rng):
        heap = BoundedHeap(16)
        for i, key in enumerate(rng.integers(0, 1000, 500)):
            heap.offer(int(key), i)
            # parent >= children throughout
            size = len(heap)
            for pos in range(1, size):
                assert heap._keys[(pos - 1) // 2] >= heap._keys[pos]

    def test_work_is_logarithmic(self, rng):
        """sift work per push is O(log k), not O(k)."""
        import math

        k = 256
        heap = BoundedHeap(k)
        n = 20000
        for i, key in enumerate(rng.integers(0, 2**32, n)):
            heap.offer(int(key), i)
        assert heap.sifts <= heap.pushes * (math.log2(k) + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedHeap(0)


class TestHeapTopK:
    def test_matches_sort(self, rng):
        data = rng.standard_normal(5000).astype(np.float32)
        values, indices = heap_topk(data, 40)
        assert np.array_equal(values, np.sort(data)[:40])
        assert np.array_equal(data[indices], values)

    def test_largest(self, rng):
        data = rng.standard_normal(2000).astype(np.float32)
        values, _ = heap_topk(data, 10, largest=True)
        assert np.array_equal(values, np.sort(data)[::-1][:10])

    def test_nan_policy_matches_library(self):
        data = np.array([np.nan, 1.0, -1.0, np.nan], dtype=np.float32)
        values, _ = heap_topk(data, 2)
        assert np.array_equal(values, [-1.0, 1.0])
        values, _ = heap_topk(data, 2, largest=True)
        assert np.array_equal(values, [1.0, -1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            heap_topk(np.zeros((2, 2), np.float32), 1)
        with pytest.raises(ValueError):
            heap_topk(np.zeros(4, np.float32), 5)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(width=32, allow_nan=True, allow_infinity=True),
        min_size=1,
        max_size=300,
    ),
    st.integers(min_value=1, max_value=300),
    st.booleans(),
    st.sampled_from(["air_topk", "grid_select", "radix_select", "sort"]),
)
def test_gpu_algorithms_agree_with_heap_reference(values, k_raw, largest, algo):
    """Independent cross-check: the simulated GPU methods select the same
    key multiset as a textbook sequential heap."""
    data = np.array(values, dtype=np.float32)
    k = 1 + (k_raw - 1) % data.shape[0]
    ref_values, _ = heap_topk(data, k, largest=largest)
    got = topk(data, k, algo=algo, largest=largest).values
    ref_bits = np.sort(ref_values.view(np.uint32))
    # compare canonicalised bit patterns (NaN payloads may differ)
    def canon(x):
        x = np.where(np.isnan(x), np.float32(np.nan), x)
        return np.sort(x.view(np.uint32))

    assert np.array_equal(canon(got), canon(ref_values))
