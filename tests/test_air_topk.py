"""Behavioural tests for AIR Top-K: fusion, adaptivity, early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIRTopK, check_topk, topk
from repro.datagen import generate
from repro.device import A100, Device


#: facade-level keywords; everything else is AIR tuning and goes in params=
_FACADE_KEYS = ("largest", "seed", "device", "batch")


def run_air(data, k, **kwargs):
    facade = {key: kwargs.pop(key) for key in _FACADE_KEYS if key in kwargs}
    return topk(data, k, algo="air_topk", params=kwargs or None, **facade)


class TestIterationFusedDesign:
    def test_four_kernel_launches(self, rng):
        """3 fused kernels + 1 last filter (Sec. 3.1, Fig. 3)."""
        data = rng.standard_normal(1 << 16).astype(np.float32)
        r = run_air(data, 256)
        assert r.device.counters.kernel_launches == 4
        names = [e.name for e in r.device.timeline.stream_events("gpu")]
        assert names == [
            "iteration_fused_kernel(1)",
            "iteration_fused_kernel(2)",
            "iteration_fused_kernel(3)",
            "last_filter_kernel",
        ]

    def test_no_pcie_traffic(self, rng):
        """The iteration-fused design removes every host round trip."""
        data = rng.standard_normal(1 << 14).astype(np.float32)
        r = run_air(data, 100)
        c = r.device.counters
        assert c.pcie_transfers == 0
        assert c.pcie_bytes == 0

    def test_only_final_sync(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        r = run_air(data, 100)
        assert r.device.counters.syncs == 1  # the benchmark's end-of-run sync

    def test_batch_shares_launches(self, rng):
        """One launch set covers the whole batch — no per-problem kernels."""
        data = rng.standard_normal((50, 4096)).astype(np.float32)
        r = run_air(data, 64)
        assert r.device.counters.kernel_launches == 4

    def test_input_loaded_twice_at_most(self, rng):
        """Uniform data: first pass reads N, the fused filter re-reads N,
        later passes read only the (buffered) survivors — the Sec. 3.1
        traffic argument (2*G1 + sum G_i)."""
        n = 1 << 18
        data = generate("uniform", n, seed=1)[0]
        r = run_air(data, 1024)
        read = r.device.counters.bytes_read
        assert read < 2.3 * 4 * n  # ~2 full passes plus small buffers
        assert read >= 2.0 * 4 * n

    def test_eleven_bit_digits(self):
        air = AIRTopK()
        assert [p.width for p in air.passes] == [11, 11, 10]

    def test_custom_digit_width(self, rng):
        air = AIRTopK(digit_bits=8)
        assert len(air.passes) == 4
        data = rng.standard_normal(5000).astype(np.float32)
        r = air.select(data, 10)
        check_topk(data, r.values, r.indices)
        assert r.device.counters.kernel_launches == 5  # 4 fused + last filter


class TestAdaptiveStrategy:
    def test_uniform_adopts_buffer(self, rng):
        """Evenly distributed data: survivors collapse, buffers pay off."""
        data = generate("uniform", 1 << 18, seed=2)[0]
        r = run_air(data, 128)
        # candidate buffers stay within the adaptive bound
        bound = 2 * 8.0 * (1 << 18) / 128.0
        assert r.device.counters.peak_workspace_bytes <= bound + 1

    def test_adversarial_skips_buffer(self):
        """Radix-adversarial data: nothing is eliminated early, so the
        adaptive kernel never writes candidates (Sec. 3.2)."""
        data = generate("adversarial", 1 << 16, seed=3, adversarial_m=20)[0]
        adaptive = run_air(data, 64)
        static = run_air(data, 64, adaptive=False)
        assert (
            adaptive.device.counters.bytes_written
            < static.device.counters.bytes_written / 2
        )

    def test_adaptive_never_more_traffic(self):
        """Adaptive traffic <= static traffic on every distribution."""
        for dist in ("uniform", "normal", "adversarial"):
            data = generate(dist, 1 << 16, seed=4)[0]
            adaptive = run_air(data, 256)
            static = run_air(data, 256, adaptive=False)
            assert (
                adaptive.device.counters.bytes_total
                <= static.device.counters.bytes_total * 1.01
            )

    def test_adaptive_faster_on_adversarial(self):
        data = generate("adversarial", 1 << 20, seed=5, adversarial_m=20)[0]
        adaptive = run_air(data, 2048)
        static = run_air(data, 2048, adaptive=False)
        assert static.time / adaptive.time > 1.5

    def test_workspace_bound_scales_with_alpha(self, rng):
        """Sec. 3.2: raising alpha shrinks the memory footprint bound."""
        data = generate("uniform", 1 << 16, seed=6)[0]
        small = run_air(data, 64, alpha=1024.0)
        large = run_air(data, 64, alpha=16.0)
        assert (
            small.device.counters.peak_workspace_bytes
            < large.device.counters.peak_workspace_bytes
        )

    def test_alpha_lower_bound_enforced(self):
        """alpha < 4 makes buffering strictly unprofitable (Sec. 3.2)."""
        with pytest.raises(ValueError):
            AIRTopK(alpha=2.0)
        AIRTopK(alpha=4.0)  # the bound itself is allowed

    def test_static_ablation_correct(self, rng):
        for dist in ("uniform", "adversarial"):
            data = generate(dist, 20000, seed=7)[0]
            r = run_air(data, 333, adaptive=False)
            check_topk(data, r.values, r.indices)

    def test_mixed_distribution_buffers_late(self):
        """Adversarial leading bits + uniform tail: the strategy skips
        buffering early and adopts it in later iterations (Sec. 3.2)."""
        data = generate("adversarial", 1 << 17, seed=8, adversarial_m=11)[0]
        r = run_air(data, 64)
        check_topk(data, r.values, r.indices)
        # some buffering happened (bytes written beyond outputs+histograms)
        assert r.device.counters.peak_workspace_bytes > 0


class TestEarlyStopping:
    def test_k_equals_n_stops_after_first_pass(self, rng):
        """The trivial K = N case (Sec. 3.3): one histogram pass + gather."""
        data = rng.standard_normal(1 << 16).astype(np.float32)
        n = data.shape[0]
        with_stop = run_air(data, n)
        without = run_air(data, n, early_stop=False)
        assert with_stop.device.counters.bytes_read < without.device.counters.bytes_read
        check_topk(data, with_stop.values, with_stop.indices)

    def test_tie_groups_trigger_stop(self, rng):
        """Heavy ties make the updated K equal the updated candidate count
        mid-computation, the case Sec. 3.3 describes."""
        pool = rng.standard_normal(64).astype(np.float32)
        data = rng.choice(pool, size=1 << 16)
        # choose k at a tie-group boundary
        values, counts = np.unique(data, return_counts=True)
        k = int(counts[:3].sum())
        with_stop = run_air(data, k)
        without = run_air(data, k, early_stop=False)
        check_topk(data, with_stop.values, with_stop.indices)
        assert with_stop.time <= without.time

    def test_ablation_still_correct(self, rng):
        data = rng.standard_normal(30000).astype(np.float32)
        r = run_air(data, 30000, early_stop=False)
        check_topk(data, r.values, r.indices)

    def test_never_slower(self, rng):
        for k in (1, 100, 5000, 30000):
            data = rng.standard_normal(30000).astype(np.float32)
            on = run_air(data, k)
            off = run_air(data, k, early_stop=False)
            assert on.time <= off.time * 1.001


class TestLastFilterFusion:
    def test_correct_for_all_distributions(self):
        for dist in ("uniform", "normal", "adversarial"):
            data = generate(dist, 30000, seed=17)[0]
            r = run_air(data, 345, fuse_last_filter=True)
            check_topk(data, r.values, r.indices)

    def test_one_fewer_launch(self, rng):
        data = rng.standard_normal(1 << 16).astype(np.float32)
        plain = run_air(data, 256)
        fused = run_air(data, 256, fuse_last_filter=True)
        assert (
            fused.device.counters.kernel_launches
            == plain.device.counters.kernel_launches - 1
        )

    def test_papers_tradeoff(self):
        """Sec. 3.1: fusing helps uniform data, hurts adversarial data —
        the reason the paper does not adopt it."""
        uni = generate("uniform", 1 << 20, seed=18)[0]
        adv = generate("adversarial", 1 << 20, seed=18, adversarial_m=20)[0]
        assert (
            run_air(uni, 2048, fuse_last_filter=True).time
            < run_air(uni, 2048).time
        )
        assert (
            run_air(adv, 2048, fuse_last_filter=True).time
            > run_air(adv, 2048).time
        )

    def test_forces_final_buffer(self):
        """The fused filter materialises the final candidate list even when
        the adaptive rule would skip it."""
        adv = generate("adversarial", 1 << 18, seed=19, adversarial_m=20)[0]
        from repro import AIRTopK

        air = AIRTopK(fuse_last_filter=True)
        air.select(adv, 64)
        assert air.last_trace[-1].buffered
        air_plain = AIRTopK()
        air_plain.select(adv, 64)
        assert not air_plain.last_trace[-1].buffered

    def test_with_early_stop(self, rng):
        data = rng.standard_normal(8192).astype(np.float32)
        r = run_air(data, 8192, fuse_last_filter=True)
        check_topk(data, r.values, r.indices)


class TestAIRInternals:
    def test_candidate_bookkeeping_consistency(self, rng):
        """The internal assertion (histogram count vs loaded candidates)
        holds across many random inputs — run a spread of shapes."""
        for n in (100, 1000, 2049, 65536):
            for k in (1, n // 3 + 1, n):
                data = rng.standard_normal(n).astype(np.float32)
                r = run_air(data, k)
                check_topk(data, r.values, r.indices)

    def test_duplicated_digit_prefixes(self):
        """Keys where an early digit pattern repeats in later positions —
        the case that breaks the naive Algorithm-1 reload test and needs
        the RAFT full-prefix semantics."""
        base = np.uint32(0b01010101010_01010101010_0101010101)
        keys = np.array(
            [base, base ^ np.uint32(1), base ^ np.uint32(1 << 11)], dtype=np.uint32
        )
        data = keys.view(np.float32)
        rng = np.random.default_rng(0)
        filler = rng.uniform(1.0, 2.0, 5000).astype(np.float32)
        all_data = np.concatenate([data, filler])
        r = run_air(all_data, 50)
        check_topk(all_data, r.values, r.indices)

    def test_shared_device_accumulates(self, rng):
        """Two runs against one device accumulate time and counters."""
        dev = Device(A100)
        data = rng.standard_normal(4096).astype(np.float32)
        r1 = run_air(data, 10, device=dev)
        t1 = dev.elapsed
        r2 = run_air(data, 10, device=dev)
        assert dev.elapsed > t1
        assert dev.counters.kernel_launches == 8
