"""Tests for the one-call paper-suite runner and related guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro import algorithm_names, topk
from repro.bench import run_paper_suite
from repro.cli import main


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    out = tmp_path_factory.mktemp("suite")
    return run_paper_suite(out_dir=out, cap=1 << 14), out


class TestPaperSuite:
    def test_all_sections_present(self, suite):
        result, _ = suite
        titles = [t for t, _ in result.sections]
        assert any("Table 2" in t for t in titles)
        assert any("Fig. 8" in t for t in titles)
        assert any("Table 3" in t for t in titles)
        assert any("ablations" in t for t in titles)
        assert any("Fig. 12" in t for t in titles)
        assert any("Fig. 13" in t for t in titles)

    def test_render(self, suite):
        result, _ = suite
        text = result.render()
        assert "AIR vs Radix" in text
        assert "iteration_fused_kernel" in text
        assert "suite completed" in text

    def test_outputs_written(self, suite):
        _, out = suite
        assert (out / "paper_grid.csv").exists()
        assert (out / "paper_suite.txt").exists()
        assert "Table 2" in (out / "paper_suite.txt").read_text()

    def test_sweep_attached(self, suite):
        result, _ = suite
        assert result.sweep_result is not None
        assert len(result.sweep_result.points) > 100

    def test_cli_reproduce(self, capsys, tmp_path):
        assert main(["reproduce", "--cap", "2^13", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert (tmp_path / "paper_suite.txt").exists()


class TestInputPurity:
    """No algorithm may mutate caller data — a library-grade guarantee."""

    @pytest.mark.parametrize("algo", algorithm_names())
    def test_input_unmodified(self, algo, rng):
        data = rng.standard_normal(3000).astype(np.float32)
        snapshot = data.copy()
        topk(data, 50, algo=algo)
        assert np.array_equal(data, snapshot)

    @pytest.mark.parametrize("algo", ["air_topk", "grid_select"])
    def test_batched_input_unmodified(self, algo, rng):
        data = rng.standard_normal((4, 1000)).astype(np.float32)
        snapshot = data.copy()
        topk(data, 10, algo=algo, largest=True)
        assert np.array_equal(data, snapshot)

    def test_noncontiguous_input(self, rng):
        base = rng.standard_normal(4000).astype(np.float32)
        view = base[::2]  # stride-2 view
        r = topk(view, 20, algo="air_topk")
        from repro import check_topk

        check_topk(np.ascontiguousarray(view), r.values, r.indices)


class TestRepeatability:
    @pytest.mark.parametrize("algo", algorithm_names())
    def test_same_seed_same_everything(self, algo, rng):
        data = rng.standard_normal(4000).astype(np.float32)
        a = topk(data, 64, algo=algo, seed=3)
        b = topk(data, 64, algo=algo, seed=3)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.indices, b.indices)
        assert a.time == b.time
        assert a.device.counters.bytes_total == b.device.counters.bytes_total
