"""Tests for the performance layer: scaled execution and SOL metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import UnsupportedProblem
from repro.datagen import generate
from repro.device import A100, H100, Device
from repro.perf import (
    MIN_SCALED_N,
    SimulatedRun,
    scale_factors,
    simulate_topk,
    sol_report,
)


class TestScaleFactors:
    def test_exact_below_cap(self):
        n_s, k_s, scale = scale_factors(1 << 16, 100, 1, cap=1 << 20)
        assert (n_s, k_s, scale) == (1 << 16, 100, 1.0)

    def test_scaled_above_cap(self):
        n_s, k_s, scale = scale_factors(1 << 30, 2048, 1, cap=1 << 20)
        assert n_s == 1 << 20
        assert scale == pytest.approx(1 << 10)
        assert k_s == 2  # k shrinks by the same factor

    def test_k_floor(self):
        n_s, k_s, scale = scale_factors(1 << 30, 10, 1, cap=1 << 20)
        assert k_s == 1

    def test_ratio_preserved_for_k_equals_n(self):
        n_s, k_s, scale = scale_factors(1 << 28, 1 << 28, 1, cap=1 << 18)
        assert k_s == n_s

    def test_batch_shares_cap(self):
        n_s, _, _ = scale_factors(1 << 20, 10, 100, cap=1 << 20)
        assert n_s >= MIN_SCALED_N
        assert n_s * 100 <= max(1 << 20, MIN_SCALED_N * 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_factors(0, 1, 1, cap=100)
        with pytest.raises(ValueError):
            scale_factors(10, 11, 1, cap=100)
        with pytest.raises(ValueError):
            scale_factors(10, 1, 1, cap=0)


class TestSimulateTopk:
    def test_exact_mode_carries_result(self):
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 14, k=64
        )
        assert run.mode == "exact"
        assert run.result is not None
        assert run.time == run.result.time

    def test_scaled_mode(self):
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 26, k=256, cap=1 << 18
        )
        assert run.mode == "scaled"
        assert run.result is None
        assert run.device.scale > 1

    def test_scaled_time_tracks_exact(self):
        """At a size both modes can run, they agree within a few percent."""
        n, k = 1 << 20, 512
        exact = simulate_topk(
            "air_topk", distribution="uniform", n=n, k=k, cap=1 << 22
        )
        scaled = simulate_topk(
            "air_topk", distribution="uniform", n=n, k=k, cap=1 << 16
        )
        assert scaled.time == pytest.approx(exact.time, rel=0.2)

    def test_scaled_queue_algorithm_tracks_exact(self):
        n, k = 1 << 20, 64
        exact = simulate_topk(
            "grid_select", distribution="uniform", n=n, k=k, cap=1 << 22
        )
        scaled = simulate_topk(
            "grid_select", distribution="uniform", n=n, k=k, cap=1 << 16
        )
        assert scaled.time == pytest.approx(exact.time, rel=0.35)

    def test_unsupported_problem_propagates(self):
        with pytest.raises(UnsupportedProblem):
            simulate_topk(
                "warp_select", distribution="uniform", n=1 << 26, k=4096, cap=1 << 16
            )

    def test_unsupported_uses_nominal_k(self):
        """k scales below the cap, but support is checked on nominal k."""
        with pytest.raises(UnsupportedProblem):
            simulate_topk(
                "bitonic_topk", distribution="uniform", n=1 << 26, k=512, cap=1 << 16
            )

    def test_explicit_data(self, rng):
        data = rng.standard_normal(5000).astype(np.float32)
        run = simulate_topk(
            "sort", distribution="unused", n=5000, k=10, data=data
        )
        assert run.mode == "exact"
        assert np.array_equal(run.result.values[0], np.sort(data)[:10])

    def test_explicit_data_shape_checked(self, rng):
        with pytest.raises(ValueError):
            simulate_topk(
                "sort",
                distribution="unused",
                n=100,
                k=10,
                data=rng.standard_normal(99).astype(np.float32),
            )

    def test_spec_forwarded(self):
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 24, k=256, spec=H100
        )
        assert run.device.spec is H100

    def test_algo_kwargs_forwarded(self):
        on = simulate_topk(
            "air_topk", distribution="adversarial", n=1 << 22, k=64, cap=1 << 18
        )
        off = simulate_topk(
            "air_topk",
            distribution="adversarial",
            n=1 << 22,
            k=64,
            cap=1 << 18,
            adaptive=False,
        )
        assert off.time > on.time


class TestSolReport:
    def test_air_report_shape(self):
        run = simulate_topk("air_topk", distribution="uniform", n=1 << 20, k=2048)
        rows = sol_report(run.device)
        names = [r.name for r in rows]
        assert "iteration_fused_kernel(1)" in names
        assert sum(r.time_fraction for r in rows) == pytest.approx(1.0)
        for r in rows:
            assert 0.0 <= r.memory_sol <= 1.0
            assert 0.0 <= r.compute_sol <= 1.0

    def test_streaming_kernel_is_memory_bound(self):
        """The paper's Table 3 observation: the big fused kernels sit near
        the memory roofline with moderate compute utilisation."""
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 30, k=2048, cap=1 << 20
        )
        rows = {r.name: r for r in sol_report(run.device)}
        k1 = rows["iteration_fused_kernel(1)"]
        assert k1.memory_sol > 0.75
        assert k1.compute_sol < k1.memory_sol

    def test_formatted_row(self):
        run = simulate_topk("air_topk", distribution="uniform", n=1 << 16, k=16)
        row = sol_report(run.device)[0].row()
        assert len(row) == 4
        assert row[1].endswith("%")

    def test_empty_device(self):
        assert sol_report(Device(A100)) == []
