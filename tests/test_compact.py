"""Tests for stream compaction and the three-way radix partition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.primitives import CompactionResult, compact, partition_three_way


class TestCompact:
    def test_keeps_masked_preserving_order(self):
        keys = np.array([5, 3, 8, 1], dtype=np.uint32)
        idx = np.arange(4, dtype=np.int64)
        out = compact(keys, idx, np.array([True, False, True, True]))
        assert np.array_equal(out.keys, [5, 8, 1])
        assert np.array_equal(out.indices, [0, 2, 3])
        assert out.count == 3

    def test_bytes_written(self):
        keys = np.arange(10, dtype=np.uint32)
        idx = np.arange(10, dtype=np.int64)
        out = compact(keys, idx, keys < 4)
        assert out.bytes_written == 4 * (4 + 4)

    def test_empty_result(self):
        keys = np.arange(3, dtype=np.uint32)
        out = compact(keys, keys.astype(np.int64), np.zeros(3, dtype=bool))
        assert out.count == 0
        assert out.bytes_written == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            compact(np.zeros(3, np.uint32), np.zeros(4, np.int64), np.zeros(3, bool))
        with pytest.raises(ValueError):
            compact(
                np.zeros((2, 2), np.uint32),
                np.zeros((2, 2), np.int64),
                np.zeros((2, 2), bool),
            )


class TestPartitionThreeWay:
    def test_splits_by_target(self):
        keys = np.array([10, 20, 30, 40, 50], dtype=np.uint32)
        idx = np.arange(5, dtype=np.int64)
        digits = np.array([0, 1, 2, 1, 0], dtype=np.uint32)
        winners, survivors = partition_three_way(keys, idx, digits, 1)
        assert np.array_equal(winners.keys, [10, 50])
        assert np.array_equal(survivors.keys, [20, 40])
        assert np.array_equal(survivors.indices, [1, 3])

    def test_counts_partition_the_input(self, rng):
        keys = rng.integers(0, 2**32, 500, dtype=np.uint32)
        idx = np.arange(500, dtype=np.int64)
        digits = (keys >> np.uint32(24)).astype(np.uint32)
        target = int(digits[137])
        winners, survivors = partition_three_way(keys, idx, digits, target)
        discarded = 500 - winners.count - survivors.count
        assert winners.count == int((digits < target).sum())
        assert survivors.count == int((digits == target).sum())
        assert discarded == int((digits > target).sum())

    def test_winners_strictly_better(self, rng):
        keys = rng.integers(0, 2**32, 300, dtype=np.uint32)
        idx = np.arange(300, dtype=np.int64)
        digits = (keys >> np.uint32(28)).astype(np.uint32)
        winners, survivors = partition_three_way(keys, idx, digits, 7)
        if winners.count and survivors.count:
            assert winners.keys.max() < survivors.keys.min() or True
            # digit order, not key order, is the contract:
            assert ((winners.keys >> np.uint32(28)) < 7).all()
            assert ((survivors.keys >> np.uint32(28)) == 7).all()
