"""Tests for the roofline cost model."""

from __future__ import annotations

import pytest

from repro.device import A100, A10, H100
from repro.perf import KernelCostModel, LaunchShape


@pytest.fixture
def model() -> KernelCostModel:
    return KernelCostModel(A100)


FULL = LaunchShape(grid_blocks=4 * A100.sm_count, block_threads=256)
ONE_BLOCK = LaunchShape(grid_blocks=1, block_threads=128)
ONE_WARP = LaunchShape(grid_blocks=1, block_threads=32)


class TestLaunchShape:
    def test_warp_count(self):
        assert LaunchShape(2, 96).warps(32) == 6
        assert LaunchShape(1, 33).warps(32) == 2  # partial warp rounds up

    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchShape(0, 32)
        with pytest.raises(ValueError):
            LaunchShape(1, 0)


class TestRoofline:
    def test_memory_bound_kernel(self, model):
        cost = model.price(FULL, bytes_read=4e9, flops=1e6)
        assert cost.bound == "memory"
        # 4 GB at ~1.4 TB/s effective: a few milliseconds
        assert 2e-3 < cost.duration < 5e-3

    def test_compute_bound_kernel(self, model):
        cost = model.price(FULL, bytes_read=1e6, flops=1e12)
        assert cost.bound == "compute"
        assert cost.compute_time > cost.mem_time

    def test_latency_bound_kernel(self, model):
        cost = model.price(ONE_WARP, dependent_cycles=1e7)
        assert cost.bound == "latency"
        assert cost.latency_time == pytest.approx(1e7 / A100.clock_hz)

    def test_max_not_sum(self, model):
        both = model.price(FULL, bytes_read=4e9, flops=1e12)
        mem_only = model.price(FULL, bytes_read=4e9)
        # overlapping resources: the duration is the max, not the sum
        assert both.duration < mem_only.duration + 1e12 / A100.effective_fp32

    def test_tail_latency_floor(self, model):
        cost = model.price(FULL)
        assert cost.duration == pytest.approx(A100.kernel_tail_latency)


class TestOccupancyEffects:
    def test_single_block_much_slower_on_large_data(self, model):
        """The BlockSelect effect (paper Sec. 5.3): 1 block vs a full grid."""
        full = model.price(FULL, bytes_read=4e9).duration
        one = model.price(ONE_BLOCK, bytes_read=4e9).duration
        assert one / full > 100

    def test_warp_efficiency_slows_memory(self, model):
        fast = model.price(ONE_BLOCK, bytes_read=1e9, warp_efficiency=1.0).duration
        slow = model.price(ONE_BLOCK, bytes_read=1e9, warp_efficiency=0.25).duration
        assert slow > 3 * fast

    def test_warp_efficiency_validation(self, model):
        with pytest.raises(ValueError):
            model.price(FULL, warp_efficiency=0.0)
        with pytest.raises(ValueError):
            model.price(FULL, warp_efficiency=1.5)

    def test_first_burst_makes_small_transfers_cheap(self, model):
        """Tiny inputs finish in ~one memory round trip even on one block."""
        small = model.price(ONE_BLOCK, bytes_read=4096).mem_time
        assert small <= 2 * A100.mem_latency_cycles / A100.clock_hz

    def test_saturated_floor(self, model):
        """No launch can beat the device's effective peak bandwidth."""
        cost = model.price(FULL, bytes_read=1e9)
        assert cost.mem_time >= 1e9 / A100.effective_bandwidth

    def test_more_blocks_never_slower(self, model):
        times = [
            model.price(
                LaunchShape(blocks, 256), bytes_read=1e9
            ).duration
            for blocks in (1, 4, 16, 64, 256, 1024)
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a * (1 + 1e-9)


class TestPcie:
    def test_latency_floor(self, model):
        assert model.pcie_time(0) == A100.pcie_latency

    def test_bandwidth_term(self, model):
        t = model.pcie_time(22e9)
        assert t == pytest.approx(A100.pcie_latency + 1.0)

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.pcie_time(-1)


class TestCrossDevice:
    def test_bandwidth_ordering_carries_to_time(self):
        """H100 < A100 < A10 run time for the same memory-bound kernel —
        the paper's Fig. 12 observation that AIR Top-K scales with memory
        bandwidth."""
        times = {}
        for spec in (A100, H100, A10):
            model = KernelCostModel(spec)
            shape = LaunchShape(grid_blocks=4 * spec.sm_count, block_threads=256)
            times[spec.name] = model.price(shape, bytes_read=4e9).duration
        assert times["H100"] < times["A100"] < times["A10"]
        # ratios roughly track bandwidth ratios (paper: ~2x and ~3x)
        assert times["A100"] / times["H100"] == pytest.approx(
            H100.peak_bandwidth / A100.peak_bandwidth, rel=0.1
        )
