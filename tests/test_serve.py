"""The serving subsystem: merge identity, batching, caching, backpressure.

Pins the PR's acceptance criteria: sharded selection is byte-identical
to single-shot ``topk()`` across dtypes and both directions, and the
micro-batched service reaches >= 3x sequential capacity at batch
occupancy >= 8 under the default 200-QPS load.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import check_topk, topk
from repro.bench.report import percentile, percentiles, status_counts
from repro.serve import (
    GroupKey,
    LoadSpec,
    LRUCache,
    MicroBatcher,
    Request,
    ServeCache,
    ServeConfig,
    TopKService,
    build_requests,
    fingerprint,
    hierarchical_merge,
    merge_pair,
    poisson_arrivals,
    run_serve_bench,
    shard_bounds,
    sharded_topk,
    uniform_arrivals,
)

ALL_DTYPES = (
    "float16",
    "float32",
    "float64",
    "int16",
    "int32",
    "int64",
    "uint16",
    "uint32",
    "uint64",
)


def unique_data(n: int, dtype: str, seed: int = 7) -> np.ndarray:
    """A shuffled 0..n-1 ramp: every value unique and exactly representable."""
    rng = np.random.default_rng(seed)
    return rng.permutation(np.arange(n)).astype(dtype)


# --------------------------------------------------------------------------- #
# sharding + merge
# --------------------------------------------------------------------------- #
class TestShardBounds:
    def test_partition(self):
        bounds = shard_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert bounds[0][0] == 0 and bounds[-1][1] == 10

    @pytest.mark.parametrize("n,shards", [(1, 1), (7, 7), (100, 3), (64, 8)])
    def test_covers_everything(self, n, shards):
        bounds = shard_bounds(n, shards)
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(n))

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            shard_bounds(4, 5)


class TestMerge:
    def test_merge_pair_keeps_best(self):
        a = (np.array([[1.0, 3.0]]), np.array([[0, 2]]))
        b = (np.array([[2.0, 4.0]]), np.array([[5, 7]]))
        values, indices = merge_pair(a, b, 3, largest=False)
        assert values.tolist() == [[1.0, 2.0, 3.0]]
        assert indices.tolist() == [[0, 5, 2]]

    def test_ties_break_by_index(self):
        a = (np.array([[5.0]]), np.array([[9]]))
        b = (np.array([[5.0]]), np.array([[2]]))
        _, indices = merge_pair(a, b, 2, largest=True)
        assert indices.tolist() == [[2, 9]]

    def test_levels_is_tree_depth(self):
        partials = [
            (np.array([[float(i)]]), np.array([[i]])) for i in range(5)
        ]
        values, indices, levels = hierarchical_merge(partials, 3)
        assert levels == 3  # ceil(log2 5)
        assert values.tolist() == [[0.0, 1.0, 2.0]]
        assert indices.tolist() == [[0, 1, 2]]


class TestShardedIdentity:
    """Acceptance pin: sharded == single-shot, byte for byte."""

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("largest", [False, True])
    def test_byte_identical_across_dtypes(self, dtype, largest):
        data = unique_data(1024, dtype)
        single = topk(data, 33, algo="air_topk", largest=largest)
        shard = sharded_topk(
            data, 33, shards=4, algo="air_topk", largest=largest
        )
        assert single.values.dtype == shard.values.dtype
        assert np.array_equal(single.values, shard.values)
        assert np.array_equal(single.indices, shard.indices)

    @pytest.mark.parametrize("shards", [2, 4, 7, 16])
    def test_shard_counts(self, shards, rng):
        data = rng.permutation(np.arange(1 << 12)).astype(np.float32)
        single = topk(data, 100, algo="air_topk")
        shard = sharded_topk(data, 100, shards=shards, algo="air_topk")
        assert np.array_equal(single.values, shard.values)
        assert np.array_equal(single.indices, shard.indices)
        assert shard.algo == f"sharded(air_topkx{shards})"

    def test_batched_rows_and_auto(self, rng):
        data = rng.permutation(np.arange(4 * 2048)).reshape(4, 2048)
        data = data.astype(np.float32)
        single = topk(data, 16, algo="air_topk")
        shard = sharded_topk(data, 16, shards=4, algo="air_topk")
        assert np.array_equal(single.values, shard.values)
        assert np.array_equal(single.indices, shard.indices)

    def test_k_larger_than_smallest_shard(self, rng):
        # 10 shards of ~12 elements but k=50: per-shard k is clamped
        data = rng.permutation(np.arange(123)).astype(np.float32)
        single = topk(data, 50, algo="sort")
        shard = sharded_topk(data, 50, shards=10, algo="sort")
        assert np.array_equal(single.values, shard.values)
        assert np.array_equal(single.indices, shard.indices)

    def test_coordinator_charges_merge(self, rng):
        data = rng.permutation(np.arange(1 << 12)).astype(np.float32)
        shard = sharded_topk(data, 64, shards=4, algo="air_topk")
        names = [
            e.name for e in shard.device.timeline.stream_events("gpu")
        ]
        assert names == ["shard_merge_l0", "shard_merge_l1"]

    @given(
        shards=st.integers(min_value=1, max_value=9),
        k=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**16),
        largest=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_shards(self, shards, k, seed, largest):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(512).astype(np.float32)  # ties possible
        single = topk(data, k, algo="sort", largest=largest)
        shard = sharded_topk(
            data, k, shards=shards, algo="sort", largest=largest
        )
        # values (best-first) are multiset-unique -> always identical;
        # indices may legally differ under ties, so verify them instead
        assert np.array_equal(single.values, shard.values)
        check_topk(data, shard.values, shard.indices, largest=largest)


# --------------------------------------------------------------------------- #
# batched result invariants (satellite d)
# --------------------------------------------------------------------------- #
class TestBatchedResultInvariants:
    def test_batch_slicing_matches_single_rows(self, rng):
        data = rng.standard_normal((6, 2048)).astype(np.float32)
        batched = topk(data, 32, algo="air_topk")
        assert batched.values.shape == batched.indices.shape == (6, 32)
        for row in range(6):
            single = topk(data[row], 32, algo="air_topk")
            assert np.array_equal(batched.values[row], single.values)
            assert np.array_equal(batched.indices[row], single.indices)

    def test_indices_round_trip(self, rng):
        data = rng.standard_normal((3, 4096)).astype(np.float32)
        r = sharded_topk(data, 64, shards=4, algo="air_topk")
        assert r.indices.min() >= 0 and r.indices.max() < 4096
        gathered = np.take_along_axis(data, r.indices, axis=1)
        assert np.array_equal(gathered, r.values)

    def test_batch_1_equals_squeeze(self, rng):
        flat = rng.standard_normal(2048).astype(np.float32)
        one = topk(flat, 8, algo="sort")
        batched = topk(flat[None, :], 8, algo="sort")
        assert one.values.shape == (8,)
        assert np.array_equal(batched.values[0], one.values)
        assert np.array_equal(batched.indices[0], one.indices)


# --------------------------------------------------------------------------- #
# batcher
# --------------------------------------------------------------------------- #
def make_request(rid, arrival_s, *, n=64, k=4, largest=False, deadline_s=None):
    data = np.arange(n, dtype=np.float32) + rid
    return Request(
        rid=rid,
        data=data,
        k=k,
        largest=largest,
        arrival_s=arrival_s,
        deadline_s=deadline_s,
    )


class TestMicroBatcher:
    def test_groups_by_shape(self):
        b = MicroBatcher(max_batch=8, max_delay_s=1.0)
        b.add(make_request(0, 0.0))
        b.add(make_request(1, 0.0, k=5))
        b.add(make_request(2, 0.0))
        assert b.pending == 3
        assert len(b.groups()) == 2

    def test_size_trigger(self):
        b = MicroBatcher(max_batch=3, max_delay_s=1.0)
        for i in range(2):
            b.add(make_request(i, 0.0))
        assert b.size_ready() is None
        b.add(make_request(2, 0.1))
        key = b.size_ready()
        assert key == GroupKey(n=64, k=4, dtype="float32", largest=False)
        popped = b.pop(key)
        assert [r.rid for r in popped] == [0, 1, 2]
        assert b.pending == 0

    def test_delay_trigger(self):
        b = MicroBatcher(max_batch=100, max_delay_s=0.05)
        b.add(make_request(0, 1.0))
        b.add(make_request(1, 1.02))
        deadline, key = b.next_flush_time()
        assert deadline == pytest.approx(1.05)
        assert b.due(1.04) is None
        assert b.due(1.05) == key

    def test_pop_caps_at_max_batch(self):
        b = MicroBatcher(max_batch=2, max_delay_s=1.0)
        for i in range(5):
            b.add(make_request(i, float(i)))
        popped = b.pop(b.size_ready())
        assert [r.rid for r in popped] == [0, 1]
        assert b.pending == 3


# --------------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------------- #
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b, the stalest
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_fingerprint_distinguishes(self, rng):
        a = rng.standard_normal(128).astype(np.float32)
        b = a.copy()
        b[7] += 1.0
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) != fingerprint(a.astype(np.float64))

    def test_serve_cache_result_round_trip(self, rng):
        cache = ServeCache()
        data = rng.standard_normal(256).astype(np.float32)
        assert cache.get_result(data, 4, False) is None
        cache.put_result(data, 4, False, np.zeros(4), np.arange(4))
        values, indices, meta = cache.get_result(data, 4, False)
        assert np.array_equal(indices, np.arange(4))
        assert meta == {}
        # k and direction are part of the key
        assert cache.get_result(data, 5, False) is None
        assert cache.get_result(data, 4, True) is None

    def test_plan_cache_buckets_batch(self):
        from repro.device import A100

        cache = ServeCache()
        plan1, hit1 = cache.make_plan(
            n=1 << 14, k=32, batch=9, spec=A100, largest=False
        )
        plan2, hit2 = cache.make_plan(
            n=1 << 14, k=32, batch=12, spec=A100, largest=False
        )
        assert not hit1 and hit2  # 9 and 12 share the 16 bucket
        assert plan1.algo == plan2.algo
        assert plan1.ranking and plan1.predicted_time is not None


# --------------------------------------------------------------------------- #
# the service: outcomes, backpressure, SLOs
# --------------------------------------------------------------------------- #
SMALL = dict(algo="sort", max_batch=4, max_delay_s=0.01, result_cache=0)


class TestTopKService:
    def test_serves_everything_and_is_correct(self):
        service = TopKService(ServeConfig(**SMALL))
        requests = [make_request(i, i * 0.001, n=256, k=3) for i in range(10)]
        stats = service.run(requests)
        assert stats.served == 10 and stats.shed == 0 and stats.timeout == 0
        assert stats.batches >= 3  # 10 requests, max_batch 4
        for outcome in service.outcomes:
            req = requests[outcome.rid]
            check_topk(req.data, outcome.values, outcome.indices)
            assert outcome.latency_s >= 0
            assert outcome.finish_s >= req.arrival_s

    def test_sheds_over_queue_limit(self):
        config = ServeConfig(algo="sort", max_batch=100, max_delay_s=1.0,
                             queue_limit=3, result_cache=0)
        service = TopKService(config)
        stats = service.run(
            [make_request(i, 0.0, n=128) for i in range(8)]
        )
        assert stats.shed == 5 and stats.served == 3
        shed = [o for o in service.outcomes if o.status == "shed"]
        assert all(o.latency_s is None and o.values is None for o in shed)

    def test_deadline_timeout_while_queued(self):
        # one slow huge batch occupies the device; the late request's
        # deadline expires before its own batch can start
        config = ServeConfig(algo="sort", max_batch=64, max_delay_s=0.0,
                             result_cache=0)
        service = TopKService(config)
        blocker = make_request(0, 0.0, n=1 << 14, k=8)
        late = make_request(1, 1e-9, n=256, k=4, deadline_s=2e-9)
        stats = service.run([blocker, late])
        assert stats.served == 1 and stats.timeout == 1
        assert service.outcomes[-1].rid == 1

    def test_default_deadline_applied(self):
        # a 1ps SLO no batch can meet: every request times out
        config = ServeConfig(algo="sort", max_batch=64, max_delay_s=0.0,
                             default_deadline_s=1e-12, result_cache=0)
        service = TopKService(config)
        stats = service.run([
            make_request(0, 0.0, n=1 << 14, k=8),
            make_request(1, 1e-9, n=256, k=4),
        ])
        assert stats.timeout == 2 and stats.served == 0

    def test_result_cache_serves_repeats_instantly(self):
        service = TopKService(ServeConfig(algo="sort", max_batch=1,
                                          max_delay_s=0.0))
        base = make_request(0, 0.0, n=256)
        repeat = Request(rid=1, data=base.data, k=base.k, largest=False,
                         arrival_s=0.5)
        stats = service.run([base, repeat])
        assert stats.served == 2
        hit = service.outcomes[-1]
        assert hit.cache_hit and hit.latency_s == 0.0 and hit.algo == "cache"
        miss = service.outcomes[0]
        assert np.array_equal(hit.values, miss.values)
        assert stats.cache["result_hits"] == 1

    def test_sharded_service_matches_plain(self, rng):
        n = 1 << 16
        data = rng.standard_normal(n).astype(np.float32)
        request = Request(rid=0, data=data, k=16, largest=True, arrival_s=0.0)
        plain = TopKService(ServeConfig(algo="air_topk", max_delay_s=0.0,
                                        result_cache=0))
        plain.run([Request(rid=0, data=data, k=16, largest=True,
                           arrival_s=0.0)])
        shard = TopKService(ServeConfig(algo="air_topk", max_delay_s=0.0,
                                        result_cache=0, shards=4))
        shard.run([request])
        a, b = plain.outcomes[0], shard.outcomes[0]
        assert b.algo == "sharded(air_topkx4)"
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.indices, b.indices)

    def test_failed_batch_never_drops_outcomes(self):
        """Regression (PR 4): a batch whose execution raises must finish
        every request as ``failed`` — the seed code lost them silently,
        leaving callers waiting forever and ServeStats under-counting."""
        # warp_select caps k at 2048; k=3000 makes every batch raise
        # UnsupportedProblem inside _run_batch's try (a *real* exception,
        # no fault plan involved)
        config = ServeConfig(algo="warp_select", max_batch=4,
                             max_delay_s=0.01, result_cache=0)
        service = TopKService(config)
        requests = [
            make_request(i, i * 0.001, n=4096, k=3000) for i in range(6)
        ]
        stats = service.run(requests)  # must not raise
        assert stats.failed == 6 and stats.served == 0
        assert stats.total == 6  # failed requests count in the totals
        failed = [o for o in service.outcomes if o.status == "failed"]
        assert sorted(o.rid for o in failed) == list(range(6))
        for outcome in failed:
            assert "UnsupportedProblem" in outcome.error
            assert outcome.values is None and outcome.latency_s is None
        # retried once (the default budget) before giving up
        assert stats.retries >= 1

    def test_metrics_emitted(self):
        from repro.obs import metrics_session

        with metrics_session() as registry:
            service = TopKService(ServeConfig(**SMALL))
            service.run([make_request(i, i * 0.001, n=256) for i in range(6)])
        payload = registry.to_payload()
        names = {c["name"] for c in payload["counters"]}
        assert "serve.requests" in names
        hist_names = {h["name"] for h in payload["histograms"]}
        assert {"serve.latency", "serve.batch_occupancy"} <= hist_names
        gauges = {g["name"] for g in payload["gauges"]}
        assert "serve.queue_depth" in gauges

    def test_latency_histogram_labelled_by_status(self):
        """serve.latency gets a per-status series *alongside* the
        unlabelled one, so existing dashboards keep working."""
        from repro.obs import metrics_session

        config = ServeConfig(algo="sort", max_batch=100, max_delay_s=1.0,
                             queue_limit=3, result_cache=0)
        with metrics_session() as registry:
            service = TopKService(config)
            stats = service.run(
                [make_request(i, 0.0, n=128) for i in range(8)]
            )
        assert stats.served == 3 and stats.shed == 5
        series = {
            tuple(sorted(h["labels"].items())): h["count"]
            for h in registry.to_payload()["histograms"]
            if h["name"] == "serve.latency"
        }
        # backward compat: the unlabelled series is untouched — it still
        # records only real service latencies (served/degraded), while the
        # labelled series cover every terminal status via waiting time
        assert series[()] == 3
        assert series[(("status", "served"),)] == 3
        assert series[(("status", "shed"),)] == 5

    def test_queue_depth_sampled_on_admission_and_flush(self):
        """The batcher observer fires at every add/pop/drop, so both the
        gauge and the windowed series see each queue transition."""
        from repro.obs import metrics_session

        events = []
        with metrics_session() as registry:
            service = TopKService(ServeConfig(**SMALL))
            inner = service.batcher.observer

            def spy(event, key, pending):
                events.append((event, pending))
                inner(event, key, pending)

            service.batcher.observer = spy
            service.run([make_request(i, i * 0.001, n=256) for i in range(9)])
        adds = [p for e, p in events if e == "add"]
        pops = [p for e, p in events if e == "pop"]
        assert len(adds) == 9  # one admission sample per queued request
        assert pops and all(p == 0 for p in pops)  # flush drains the group
        # every observer event landed in the windowed telemetry too
        samples = sum(
            w.queue_depth_samples for w in service.telemetry.windows.values()
        )
        assert samples == len(events)
        assert max(
            w.queue_depth_max for w in service.telemetry.windows.values()
        ) == max(p for _e, p in events)
        gauges = {g["name"] for g in registry.to_payload()["gauges"]}
        assert "serve.queue_depth" in gauges

    def test_latency_sample_cap_switches_to_histogram(self):
        """Satellite 6: latencies_s stops growing at the cap and the
        percentile helper falls back to the windowed histogram."""
        service = TopKService(ServeConfig(latency_sample_cap=4, **SMALL))
        stats = service.run(
            [make_request(i, i * 0.001, n=256) for i in range(12)]
        )
        assert stats.served == 12
        assert len(stats.latencies_s) == 4  # capped, not unbounded
        assert stats.latency_truncated is True
        exact = sorted(
            o.latency_s for o in service.outcomes if o.latency_s is not None
        )
        est = stats.latency_percentiles((50.0, 95.0, 99.0))
        # estimates come from the full-run histogram, not the truncated
        # raw list: monotone, clamped to the true range, p99 near the max
        assert est[50.0] <= est[95.0] <= est[99.0]
        for value in est.values():
            assert exact[0] <= value <= exact[-1]
        assert est[99.0] == pytest.approx(exact[-1], rel=0.16)

    def test_latency_uncapped_percentiles_are_exact(self):
        service = TopKService(ServeConfig(**SMALL))
        stats = service.run(
            [make_request(i, i * 0.001, n=256) for i in range(6)]
        )
        assert stats.latency_truncated is False
        from repro.bench.report import percentiles

        assert stats.latency_percentiles((50.0, 99.0)) == percentiles(
            stats.latencies_s, (50.0, 99.0)
        )


# --------------------------------------------------------------------------- #
# load generator + acceptance pin
# --------------------------------------------------------------------------- #
class TestLoadGen:
    def test_poisson_rate_and_determinism(self):
        a = poisson_arrivals(500.0, 4.0, seed=3)
        b = poisson_arrivals(500.0, 4.0, seed=3)
        assert np.array_equal(a, b)
        assert 0.7 * 2000 < len(a) < 1.3 * 2000
        assert np.all(np.diff(a) >= 0) and a[-1] < 4.0

    def test_uniform_arrivals(self):
        arrivals = uniform_arrivals(100.0, 1.0)
        assert len(arrivals) == 100
        assert np.allclose(np.diff(arrivals), 0.01)

    def test_build_requests_pool(self):
        spec = LoadSpec(qps=100, duration_s=0.5, n=512, k=4, payload_pool=3)
        requests = build_requests(spec)
        assert all(r.n == 512 for r in requests)
        distinct = {fingerprint(r.data) for r in requests}
        assert len(distinct) <= 3

    def test_acceptance_occupancy_and_speedup(self):
        """PR acceptance: >= 3x sequential capacity at occupancy >= 8."""
        report, _ = run_serve_bench(
            LoadSpec(qps=200, duration_s=2.0), ServeConfig()
        )
        assert report.stats.shed == 0 and report.stats.timeout == 0
        assert report.stats.mean_occupancy >= 8
        assert report.speedup >= 3.0
        assert set(report.latency) == {50.0, 95.0, 99.0}
        assert report.latency[50.0] <= report.latency[95.0] <= report.latency[99.0]
        text = report.format()
        for needle in ("p50", "p95", "p99", "served", "shed", "timeout"):
            assert needle in text


# --------------------------------------------------------------------------- #
# shared percentile helpers (satellite c)
# --------------------------------------------------------------------------- #
class TestReportHelpers:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == 2.5

    def test_percentile_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_percentiles_default_quantiles(self):
        out = percentiles(list(range(101)))
        assert out == {50.0: 50.0, 95.0: 95.0, 99.0: 99.0}

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_status_counts(self):
        class P:
            def __init__(self, status):
                self.status = status

        counts = status_counts([P("ok"), P("ok"), P("error")])
        assert counts == {"error": 1, "ok": 2}
