"""Serving observability: request tracing, windowed telemetry, SLOs.

Pins this PR's acceptance criteria (docs/serving-observability.md):

* every served request gets a full virtual-time span tree (admission →
  queued → batch → shard/merge → finish) with fault/retry annotations,
  and span coverage of a traced run is >= 95% of requests;
* with no tracing session the span buffer stays empty and outcomes are
  byte-identical to a traced run (the no-op pin, mirroring
  tests/test_obs.py);
* the ``repro.obs.serve_report/v1`` artifact is schema-valid and
  byte-identical across host worker counts (virtual time only);
* SLO evaluation computes per-window burn rates and the availability
  SLO violation exit path fires under an injected fault plan.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.bench.ascii_plot import sparkline
from repro.bench.report import percentile
from repro.faults import FaultPlan, FaultRule
from repro.obs import SchemaError
from repro.obs.metrics import Histogram
from repro.obs.serve import (
    DEFAULT_SLOS,
    LATENCY_EDGES,
    ServeTelemetry,
    SLOSpec,
    WindowAccum,
    build_serve_report,
    dense_windows,
    evaluate_slos,
    histogram_count_below,
    histogram_quantile,
    load_slo_specs,
    render_serve_report,
    write_serve_report,
)
from repro.serve import LoadSpec, Request, ServeConfig, TopKService, build_requests


def serve_config(**overrides) -> ServeConfig:
    base = dict(
        algo="sort",
        max_batch=4,
        max_delay_s=0.002,
        shards=2,
        shard_min_n=1 << 10,
        window_s=0.01,
    )
    base.update(overrides)
    return ServeConfig(**base)


def unique_requests(count: int, *, n: int = 2048, k: int = 8) -> list[Request]:
    """Distinct payloads so no request short-circuits through the cache."""
    rng = np.random.default_rng(11)
    return [
        Request(
            rid=i,
            data=rng.standard_normal(n).astype(np.float32),
            k=k,
            largest=False,
            arrival_s=i * 0.0015,
        )
        for i in range(count)
    ]


# --------------------------------------------------------------------------- #
# histogram quantile helpers
# --------------------------------------------------------------------------- #
class TestHistogramQuantiles:
    def test_empty_histogram_is_none(self):
        hist = Histogram(bounds=LATENCY_EDGES)
        assert histogram_quantile(hist, 50.0) is None
        assert histogram_count_below(hist, 1.0) == 0.0

    def test_single_sample_is_exact(self):
        hist = Histogram(bounds=LATENCY_EDGES)
        hist.observe(3.3e-3)
        for q in (0.0, 50.0, 100.0):
            assert histogram_quantile(hist, q) == pytest.approx(3.3e-3)

    def test_estimates_track_exact_percentiles(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-7.0, sigma=1.0, size=4000)
        hist = Histogram(bounds=LATENCY_EDGES)
        for s in samples:
            hist.observe(float(s))
        for q in (50.0, 95.0, 99.0):
            exact = percentile(list(samples), q)
            est = histogram_quantile(hist, q)
            # the grid is 16 buckets/decade: ~15% worst-case bucket width
            assert abs(est - exact) / exact < 0.16

    def test_count_below_interpolates_cdf(self):
        hist = Histogram(bounds=LATENCY_EDGES)
        for v in (1e-3,) * 8 + (1e-2,) * 2:
            hist.observe(v)
        assert histogram_count_below(hist, 5e-3) == pytest.approx(8.0)
        assert histogram_count_below(hist, 1.0) == 10.0
        assert histogram_count_below(hist, 1e-7) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            histogram_quantile(Histogram(bounds=LATENCY_EDGES), 101.0)


# --------------------------------------------------------------------------- #
# windowed accumulation
# --------------------------------------------------------------------------- #
class TestWindows:
    def test_outcomes_land_in_their_window(self):
        t = ServeTelemetry(window_s=0.1)
        t.on_outcome("served", 0.05, 0.001)
        t.on_outcome("served", 0.15, 0.002)
        t.on_outcome("shed", 0.15, None)
        assert set(t.windows) == {0, 1}
        assert t.windows[0].served == 1 and t.windows[0].requests == 1
        w1 = t.windows[1]
        assert w1.served == 1 and w1.shed == 1 and w1.bad == 1
        assert w1.latency.count == 1  # shed contributes no latency sample
        assert t.latency_hist.count == 2

    def test_queue_batch_cache_and_fault_feeds(self):
        t = ServeTelemetry(window_s=1.0)
        t.on_queue_depth(0.1, 3)
        t.on_queue_depth(0.2, 5)
        t.on_batch(0.3, 4)
        t.on_cache_lookup(0.4, True)
        t.on_cache_lookup(0.5, False)
        t.on_fault(0.6, "worker_crash", 2)
        t.on_retry(0.7)
        t.on_hedge(0.8)
        t.on_breaker(0.9)
        w = t.windows[0]
        assert w.queue_depth_samples == 2 and w.queue_depth_max == 5
        assert w.queue_depth_sum == 8
        assert w.occupancy_samples == 1 and w.occupancy_max == 4
        assert w.cache_hits == 1 and w.cache_misses == 1
        assert w.faults == 2 and w.retries == 1 and w.hedges == 1
        assert w.breaker == 1
        assert t.fault_kinds == {"worker_crash": 2}

    def test_dense_windows_fill_gaps(self):
        t = ServeTelemetry(window_s=0.1)
        t.on_outcome("served", 0.05, 1e-3)
        t.on_outcome("served", 0.35, 1e-3)
        accums = dense_windows(t)
        assert [a.index for a in accums] == [0, 1, 2, 3]
        assert accums[1].requests == 0  # gap window, zero-filled

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            ServeTelemetry(window_s=0.0)


# --------------------------------------------------------------------------- #
# the no-op pin: no tracing session -> no spans, identical outcomes
# --------------------------------------------------------------------------- #
class TestNoOpPin:
    def test_untraced_run_buffers_nothing_and_matches_traced(self):
        requests = unique_requests(24)
        plain = TopKService(serve_config())
        plain_stats = plain.run([Request(**vars(r)) for r in requests])
        assert len(plain.telemetry) == 0
        assert plain.telemetry_spans() == []

        with obs.trace_session():
            traced = TopKService(serve_config())
            traced_stats = traced.run([Request(**vars(r)) for r in requests])
        assert len(traced.telemetry) > 0

        # tracing is pure observation: byte-identical outcomes
        assert plain_stats.latencies_s == traced_stats.latencies_s
        assert plain_stats.total == traced_stats.total
        for a, b in zip(plain.outcomes, traced.outcomes):
            assert (a.rid, a.status, a.finish_s) == (b.rid, b.status, b.finish_s)
            assert np.array_equal(a.values, b.values)

    def test_trace_flag_latched_at_construction(self):
        with obs.trace_session():
            service = TopKService(serve_config())
        # the session ended, but the service keeps buffering: the flag is
        # a construction-time decision, not a per-event lookup
        assert service.telemetry.trace is True
        assert TopKService(serve_config()).telemetry.trace is False


# --------------------------------------------------------------------------- #
# request-scoped span trees
# --------------------------------------------------------------------------- #
class TestRequestTracing:
    def run_traced(self, requests, **overrides):
        with obs.trace_session():
            service = TopKService(serve_config(**overrides))
            stats = service.run(requests)
        return service, stats

    def test_span_tree_covers_every_request(self):
        requests = unique_requests(30)
        service, stats = self.run_traced(requests)
        assert stats.total == 30
        traced = service.telemetry.traced_requests()
        coverage = len(traced) / stats.total
        assert coverage >= 0.95  # the PR acceptance floor (here: exactly 1.0)
        assert traced == set(range(30))

        by_rid: dict[int, set] = {}
        for name, _cat, lane, _ts, _dur, _args in service.telemetry._spans:
            if lane.startswith("serve:req/"):
                rid = int(lane.rsplit("/r", 1)[1])
                by_rid.setdefault(rid, set()).add(name)
        served = {o.rid for o in service.outcomes if o.status == "served"}
        for rid in served:
            assert {"admission", "queued", "batch", "finish", "request"} <= by_rid[rid]
            # sharded execution splits the batch into fan-out + fan-in
            assert {"shards", "merge"} <= by_rid[rid]

    def test_node_lanes_carry_batches_and_shards(self):
        service, _stats = self.run_traced(unique_requests(12))
        lanes = {lane for _n, _c, lane, _t, _d, _a in service.telemetry._spans}
        assert "serve:node/device" in lanes
        assert {"serve:node/shard0", "serve:node/shard1"} <= lanes
        batches = [
            args
            for name, _c, lane, _t, _d, args in service.telemetry._spans
            if name == "batch" and lane == "serve:node/device"
        ]
        assert len(batches) == service.stats.batches
        assert all("algo" in a and "size" in a for a in batches)

    def test_unsharded_run_emits_execute_spans(self):
        service, _stats = self.run_traced(unique_requests(8), shards=1)
        names = {n for n, *_ in service.telemetry._spans}
        assert "execute" in names
        assert "shards" not in names and "merge" not in names

    def test_spans_rebase_onto_wall_clock(self):
        service, _stats = self.run_traced(unique_requests(6))
        base = 5_000_000.0
        spans = service.telemetry_spans(base_us=base)
        assert spans and all(s.ts_us >= base for s in spans)
        zero = service.telemetry_spans()
        assert spans[0].ts_us - zero[0].ts_us == pytest.approx(base)
        roots = [s for s in spans if s.name == "request"]
        for root in roots:
            assert root.args["status"] in ("served", "degraded", "shed",
                                           "timeout", "failed")

    def test_trace_export_is_perfetto_valid(self, tmp_path):
        service, _stats = self.run_traced(unique_requests(10))
        spans = service.telemetry_spans(base_us=1000.0)
        path = obs.write_trace(spans, tmp_path / "serve_trace.json")
        payload = json.loads(path.read_text())
        obs.validate_trace(payload)  # raises on contract violations
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"request", "batch", "queued"} <= names

    def test_fault_and_retry_annotations(self):
        plan = FaultPlan(
            seed=3,
            rules=(FaultRule(kind="worker_crash", rate=0.5,
                             site="serve.batch"),),
        )
        requests = unique_requests(24)
        with obs.trace_session():
            service = TopKService(serve_config(faults=plan, batch_retries=3))
            stats = service.run(requests)
        assert stats.retries > 0
        names = {n for n, *_ in service.telemetry._spans}
        assert "retry" in names
        assert "fault:worker_crash" in names
        windows = service.telemetry.windows.values()
        assert sum(w.retries for w in windows) == stats.retries
        assert sum(w.faults for w in windows) == sum(stats.faults.values())
        assert service.telemetry.fault_kinds == stats.faults


# --------------------------------------------------------------------------- #
# SLO specs and evaluation
# --------------------------------------------------------------------------- #
class TestSLOs:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", target=1.0)  # open interval
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="uptime", target=0.9)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", target=0.9)  # needs threshold

    def test_availability_burn_rates(self):
        good = WindowAccum(index=0, served=99, shed=1)
        bad = WindowAccum(index=1, served=50, failed=50)
        empty = WindowAccum(index=2)
        slo = SLOSpec(name="avail", kind="availability", target=0.99)
        [result] = evaluate_slos([good, bad, empty], (slo,))
        # window 0 burns exactly at budget (1% bad / 1% budget = 1.0x);
        # window 1 burns 50x; an empty window burns nothing
        assert result["burn_rates"] == pytest.approx([1.0, 50.0, 0.0])
        assert result["violating_windows"] == [1]
        assert result["sli"] == pytest.approx(149 / 200)
        assert result["violated"] is True
        assert result["max_burn_rate"] == pytest.approx(50.0)

    def test_latency_slo_uses_histogram_cdf(self):
        fast = WindowAccum(index=0, served=10)
        for _ in range(10):
            fast.latency.observe(1e-3)
        slow = WindowAccum(index=1, served=10)
        for _ in range(10):
            slow.latency.observe(0.2)
        slo = SLOSpec(name="lat", kind="latency", target=0.9, threshold_s=0.05)
        [result] = evaluate_slos([fast, slow], (slo,))
        assert result["burn_rates"][0] == pytest.approx(0.0)
        assert result["burn_rates"][1] == pytest.approx(10.0)
        assert result["violating_windows"] == [1]
        assert result["sli"] == pytest.approx(0.5)

    def test_no_traffic_is_not_a_violation(self):
        [result] = evaluate_slos([], DEFAULT_SLOS[:1])
        assert result["violated"] is False and result["sli"] == 1.0

    def test_load_slo_specs_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "schema": "repro.obs.slo/v1",
            "slos": [
                {"name": "a", "kind": "availability", "target": 0.95},
                {"name": "l", "kind": "latency", "target": 0.9,
                 "threshold_s": 0.01},
            ],
        }))
        specs = load_slo_specs(path)
        assert [s.name for s in specs] == ["a", "l"]
        assert specs[1].threshold_s == 0.01

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.obs.slo/v1",
                                    "slos": [{"name": "x"}]}))
        with pytest.raises(SchemaError):
            load_slo_specs(path)


# --------------------------------------------------------------------------- #
# the serve_report artifact
# --------------------------------------------------------------------------- #
class TestServeReport:
    def finished_service(self, **overrides):
        service = TopKService(serve_config(**overrides))
        stats = service.run(unique_requests(24))
        return service, stats

    def test_report_is_schema_valid_and_writable(self, tmp_path):
        service, stats = self.finished_service()
        report = build_serve_report(
            service.telemetry, stats, config={"seed": 0}
        )
        obs.validate_serve_report(report)  # build already validated; re-pin
        path = write_serve_report(report, tmp_path / "r.json")
        obs.validate_serve_report(json.loads(path.read_text()))
        assert report["totals"]["requests"] == 24
        assert report["totals"]["availability"] == 1.0
        assert len(report["windows"]) >= 1
        first = report["windows"][0]
        assert first["requests"] >= 1
        assert first["latency_p99_s"] is None or first["latency_p99_s"] > 0

    def test_report_identical_across_host_workers(self):
        reports = []
        for workers in (1, 4):
            service, stats = self.finished_service(workers=workers)
            reports.append(build_serve_report(
                service.telemetry, stats, config={"workers": 1}
            ))
        a, b = (json.dumps(r, sort_keys=True) for r in reports)
        assert a == b  # virtual-time only: byte-identical

    def test_availability_breach_flags_violation(self):
        plan = FaultPlan(
            seed=7,
            rules=(FaultRule(kind="worker_crash", rate=0.95,
                             site="serve.batch"),),
        )
        service = TopKService(serve_config(faults=plan))
        stats = service.run(unique_requests(24))
        assert stats.failed > 0  # the plan actually broke traffic
        report = build_serve_report(service.telemetry, stats)
        assert "availability-99" in report["violations"]
        entry = next(s for s in report["slos"]
                     if s["name"] == "availability-99")
        assert entry["violated"] and entry["sli"] < 0.99
        assert entry["max_burn_rate"] > 1.0
        assert entry["violating_windows"]

    def test_render_dashboard_lines(self):
        service, stats = self.finished_service()
        text = render_serve_report(build_serve_report(service.telemetry, stats))
        assert "serve report: 24 requests" in text
        assert "windowed series:" in text
        assert "p99 latency" in text and "queue depth" in text
        assert "all SLOs met" in text

    def test_render_flags_violations(self):
        plan = FaultPlan(
            seed=7,
            rules=(FaultRule(kind="worker_crash", rate=0.95,
                             site="serve.batch"),),
        )
        service = TopKService(serve_config(faults=plan))
        stats = service.run(unique_requests(24))
        text = render_serve_report(build_serve_report(service.telemetry, stats))
        assert "SLO VIOLATIONS:" in text
        assert "[VIOLATED]" in text
        assert "faults:" in text


# --------------------------------------------------------------------------- #
# sparkline
# --------------------------------------------------------------------------- #
class TestSparkline:
    def test_scales_to_series_range(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "." and line[-1] == "@"

    def test_none_is_a_gap_and_flat_is_low(self):
        assert sparkline([None, 1.0, None]) == " . "
        assert sparkline([2.0, 2.0]) == ".."
        assert sparkline([]) == ""
        assert sparkline([None, None]) == "  "


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestServeObsCLI:
    BASE = ["serve-bench", "--qps", "1500", "--duration", "0.08",
            "--n", "2^11", "--k", "8", "--algo", "sort",
            "--max-batch", "4", "--max-delay-ms", "2",
            "--shards", "2", "--window-ms", "10", "--pool", "500"]

    def crash_plan(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "schema": "repro.faults.plan/v1",
            "seed": 7,
            "rules": [{"kind": "worker_crash", "rate": 0.95,
                       "site": "serve.batch", "factor": 1.0,
                       "sticky": False}],
        }))
        return path

    def test_serve_bench_report_and_slo_ok(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(self.BASE + [
            "--report", str(report_path),
            "--slo", "benchmarks/slo/default.json",
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        obs.validate_serve_report(payload)
        out = capsys.readouterr().out
        assert "SLO [ok] availability-99" in out

    def test_serve_bench_slo_violation_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(self.BASE + [
            "--faults", str(self.crash_plan(tmp_path)),
            "--slo", "default",
            "--report", str(tmp_path / "bad.json"),
        ])
        assert code == 1
        assert "SLO [VIOLATED] availability-99" in capsys.readouterr().out

    def test_serve_bench_trace_includes_request_lanes(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        assert main(self.BASE + ["--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        obs.validate_trace(payload)
        meta = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "serve:req" in meta and "serve:node" in meta

    def test_serve_bench_manifest_records_serve_report(self, tmp_path, capsys):
        from repro.cli import main

        assert main(self.BASE + ["--out", str(tmp_path), "--slo", "default"]) == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["artifacts"]["serve_report"] == "serve_report.json"
        obs.validate_serve_report(
            json.loads((tmp_path / "serve_report.json").read_text())
        )

    def test_serve_report_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(self.BASE + ["--report", str(tmp_path / "r.json")]) == 0
        capsys.readouterr()
        assert main(["serve-report", str(tmp_path / "r.json")]) == 0
        out = capsys.readouterr().out
        assert "windowed series:" in out and "all SLOs met" in out

    def test_serve_report_command_fails_on_violations(self, tmp_path, capsys):
        from repro.cli import main

        main(self.BASE + [
            "--faults", str(self.crash_plan(tmp_path)),
            "--report", str(tmp_path / "bad.json"),
        ])
        capsys.readouterr()
        assert main(["serve-report", str(tmp_path / "bad.json")]) == 1
        assert main(["serve-report", str(tmp_path / "bad.json"),
                     "--no-fail"]) == 0

    def test_serve_report_command_rejects_garbage(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"nope\"}")
        assert main(["serve-report", str(bad)]) == 1

    def test_inspect_serve_report(self, tmp_path, capsys):
        from repro.cli import main

        assert main(self.BASE + ["--report", str(tmp_path / "r.json")]) == 0
        capsys.readouterr()
        assert main(["inspect", str(tmp_path / "r.json")]) == 0
        assert "valid serve report" in capsys.readouterr().out


class TestLatencySampleCapDrift:
    """Regression pin: the histogram fallback tracks the raw percentiles.

    Past ``latency_sample_cap`` the raw ``latencies_s`` list stops
    growing (it holds only the first ``cap`` samples — biased), so
    ``latency_percentiles()`` must switch to the latency histogram,
    which keeps observing the *full* population.  The estimates are then
    allowed to drift by at most one histogram bucket (16 buckets per
    decade: a factor of 10^(1/16)) from the exact order statistics over
    every answered request.
    """

    #: one histogram bucket of slack, both directions
    BUCKET = 10.0 ** (1.0 / 16.0)

    def _run(self, cap):
        config = serve_config(latency_sample_cap=cap, result_cache=0)
        service = TopKService(config)
        spec = LoadSpec(
            qps=300.0, duration_s=1.0, n=1 << 14, k=32,
            payload_pool=256, seed=2,
        )
        stats = service.run(build_requests(spec))
        raw = [
            o.latency_s for o in service.outcomes if o.latency_s is not None
        ]
        return stats, raw

    def test_histogram_keeps_full_population_past_the_cap(self):
        stats, raw = self._run(cap=16)
        assert len(raw) > 16
        assert stats.latency_truncated
        assert len(stats.latencies_s) == 16
        assert stats.latency_hist.count == len(raw)

    def test_percentiles_agree_within_one_bucket(self):
        stats, raw = self._run(cap=16)
        assert stats.latency_truncated
        qs = (50.0, 90.0, 95.0, 99.0)
        estimates = stats.latency_percentiles(qs)
        for q in qs:
            exact = float(np.percentile(raw, q))
            estimate = estimates[q]
            assert estimate is not None
            if exact <= 0.0:
                # zero-latency percentiles sit in the first bucket: the
                # estimate may be anywhere inside it
                assert 0.0 <= estimate <= LATENCY_EDGES[0]
            else:
                assert exact / self.BUCKET <= estimate <= exact * self.BUCKET

    def test_uncapped_percentiles_stay_exact(self):
        stats, raw = self._run(cap=None)
        assert not stats.latency_truncated
        assert len(stats.latencies_s) == len(raw)
        estimates = stats.latency_percentiles((50.0, 99.0))
        assert estimates[50.0] == percentile(raw, 50.0)
        assert estimates[99.0] == percentile(raw, 99.0)

    def test_truncated_raw_list_would_drift(self):
        # the hazard the fallback exists for: the first-cap-samples list
        # is arrival-ordered, not representative — pin that it disagrees
        # with the full population so the fallback stays load-bearing
        stats, raw = self._run(cap=16)
        biased = percentile(stats.latencies_s, 99.0)
        exact = float(np.percentile(raw, 99.0))
        estimate = stats.latency_percentiles((99.0,))[99.0]
        assert abs(estimate - exact) < abs(biased - exact)

    def test_cluster_stats_share_the_contract(self):
        from repro.cluster import ClusterConfig, ClusterRouter

        rng = np.random.default_rng(31)
        config = ClusterConfig(
            nodes=2,
            replication=2,
            latency_sample_cap=8,
            node_config=serve_config(),
        )
        router = ClusterRouter(config)
        requests = [
            Request(
                rid=i,
                data=rng.standard_normal(1 << 12).astype(np.float32),
                k=16,
                largest=True,
                arrival_s=0.05 * i,
            )
            for i in range(32)
        ]
        stats = router.run(requests)
        raw = [
            o.latency_s for o in router.outcomes if o.latency_s is not None
        ]
        assert stats.latency_truncated
        assert stats.latency_hist.count == len(raw)
        for q, estimate in stats.latency_percentiles((50.0, 99.0)).items():
            exact = float(np.percentile(raw, q))
            if exact <= 0.0:
                assert 0.0 <= estimate <= LATENCY_EDGES[0]
            else:
                assert exact / self.BUCKET <= estimate <= exact * self.BUCKET
