"""Tests for the queue-select emulation shared by the partial-sorting family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos.queue_common import (
    QueueStats,
    SENTINEL,
    _thread_mode_flushes,
    emulate_queue_select,
    slice_rows,
)
from repro.primitives import encode


def sequential_thread_flushes(
    mask: np.ndarray, carry: np.ndarray, queue_len: int
) -> tuple[int, np.ndarray]:
    """Round-by-round reference for per-thread-queue flush semantics."""
    fill = carry.astype(np.int64).copy()
    flushes = 0
    for round_mask in mask:
        fill += round_mask
        if fill.max() >= queue_len:
            flushes += 1
            fill[:] = 0
    return flushes, fill


class TestThreadModeFlushes:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_sequential_reference(self, seed):
        rng = np.random.default_rng(seed)
        rounds, lanes, queue_len = 200, 8, 3
        mask = rng.random((rounds, lanes)) < rng.uniform(0.05, 0.9)
        carry = rng.integers(0, queue_len, lanes)
        got = _thread_mode_flushes(mask, carry, queue_len)
        want = sequential_thread_flushes(mask, carry, queue_len)
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])

    def test_empty_rounds(self):
        flushes, fill = _thread_mode_flushes(
            np.zeros((0, 4), dtype=bool), np.zeros(4, dtype=np.int64), 2
        )
        assert flushes == 0

    def test_dense_all_lanes(self):
        mask = np.ones((10, 4), dtype=bool)
        flushes, fill = _thread_mode_flushes(mask, np.zeros(4, dtype=np.int64), 2)
        assert flushes == 5  # every 2 rounds every lane's queue fills
        assert np.array_equal(fill, [0, 0, 0, 0])


class TestSliceRows:
    def test_even_split(self):
        keys = np.arange(12, dtype=np.uint32).reshape(1, 12)
        slices, offsets = slice_rows(keys, 3)
        assert slices.shape == (3, 4)
        assert np.array_equal(offsets, [0, 4, 8])
        assert np.array_equal(slices[1], [4, 5, 6, 7])

    def test_padding_with_sentinel(self):
        keys = np.arange(10, dtype=np.uint32).reshape(1, 10)
        slices, offsets = slice_rows(keys, 3)
        assert slices.shape == (3, 4)
        assert slices[2, -2] == SENTINEL and slices[2, -1] == SENTINEL

    def test_batch_offsets_local(self):
        keys = np.arange(8, dtype=np.uint32).reshape(2, 4)
        slices, offsets = slice_rows(keys, 2)
        assert slices.shape == (4, 2)
        assert np.array_equal(offsets, [0, 2, 0, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            slice_rows(np.zeros(4, dtype=np.uint32), 2)
        with pytest.raises(ValueError):
            slice_rows(np.zeros((1, 4), dtype=np.uint32), 0)


class TestEmulateQueueSelect:
    @pytest.mark.parametrize("mode,queue_len", [("thread", 2), ("shared", 32)])
    @pytest.mark.parametrize("lanes", [32, 128])
    def test_finds_topk(self, rng, mode, queue_len, lanes):
        keys = encode(rng.standard_normal((3, 5000)).astype(np.float32))
        k = 64
        result = emulate_queue_select(
            keys, k, lanes=lanes, mode=mode, queue_len=queue_len
        )
        for s in range(3):
            expect = np.sort(keys[s])[:k]
            assert np.array_equal(np.sort(result.keys[s]), expect)
            # indices point at the claimed keys
            assert np.array_equal(keys[s][result.indices[s]], result.keys[s])

    def test_short_slice_sentinel_padding(self, rng):
        """Slices shorter than k leave sentinel entries, indices -1."""
        keys = encode(rng.standard_normal((1, 10)).astype(np.float32))
        result = emulate_queue_select(keys, 16, lanes=32, mode="shared", queue_len=32)
        assert (result.keys[0] == SENTINEL).sum() == 6
        assert (result.indices[0] == -1).sum() == 6

    def test_stats_counters(self, rng):
        keys = encode(rng.standard_normal((1, 4096)).astype(np.float32))
        result = emulate_queue_select(keys, 32, lanes=32, mode="shared", queue_len=32)
        stats = result.stats
        assert stats.rounds == 4096 // 32
        # everything qualifies until the structure fills, so inserts >= k
        assert stats.inserts >= 32
        assert stats.inserts <= 4096
        # shared-queue flush accounting: one flush per queue_len inserts,
        # up to one partial fill left over
        assert stats.flushes <= stats.inserts // 32
        assert stats.flushes >= stats.inserts // 32 - 1
        assert stats.merge_comparators == stats.flushes * stats.merge_cost_comparators(
            32, 32
        )

    def test_shared_flushes_fewer_than_thread(self, rng):
        """The core GridSelect claim (Sec. 4): a shared queue flushes only
        when full, per-thread queues flush when any lane's queue fills."""
        keys = encode(rng.standard_normal((1, 1 << 14)).astype(np.float32))
        shared = emulate_queue_select(
            keys, 128, lanes=32, mode="shared", queue_len=32
        ).stats
        thread = emulate_queue_select(
            keys, 128, lanes=32, mode="thread", queue_len=2
        ).stats
        assert shared.flushes < thread.flushes

    def test_more_lanes_fewer_rounds(self, rng):
        keys = encode(rng.standard_normal((1, 1 << 12)).astype(np.float32))
        r32 = emulate_queue_select(keys, 8, lanes=32, mode="shared", queue_len=32)
        r128 = emulate_queue_select(keys, 8, lanes=128, mode="shared", queue_len=32)
        assert r128.stats.rounds < r32.stats.rounds

    def test_validation(self):
        keys = np.zeros((1, 8), dtype=np.uint32)
        with pytest.raises(ValueError):
            emulate_queue_select(keys, 4, lanes=32, mode="heap", queue_len=32)
        with pytest.raises(ValueError):
            emulate_queue_select(keys, 4, lanes=0, mode="shared", queue_len=32)
        with pytest.raises(ValueError):
            emulate_queue_select(keys[0], 4, lanes=32, mode="shared", queue_len=32)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=64),
    st.sampled_from(["thread", "shared"]),
    st.integers(min_value=0, max_value=2**31),
)
def test_queue_select_equals_oracle(n, k_raw, mode, seed):
    rng = np.random.default_rng(seed)
    k = 1 + (k_raw - 1) % n
    keys = encode(rng.standard_normal((1, n)).astype(np.float32))
    queue_len = 2 if mode == "thread" else 32
    result = emulate_queue_select(keys, k, lanes=32, mode=mode, queue_len=queue_len)
    got = np.sort(result.keys[0])
    got = got[got != SENTINEL][:k] if n < k else got[:k]
    expect = np.sort(keys[0])[:k]
    assert np.array_equal(got, expect)
