"""Run the doctests embedded in the library's docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.primitives.radix
import repro.bench.report


@pytest.mark.parametrize(
    "module",
    [repro.primitives.radix, repro.bench.report],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, tried = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert failures == 0
