"""Online adaptation: the drift -> correction -> dispatch round trip.

Pins the PR-10 control loop end to end:

* the windowed fold controller (gain grows while the model stays wrong,
  resets once a fold improves on the best seen residual);
* power-of-two regime bucketing and correction isolation across regimes;
* the plan-cache staleness fix — a folded correction invalidates exactly
  the cached plans of the regime it changed, no others;
* persistence (``repro.perf.corrections/v1``): a saved and reloaded
  store reproduces byte-identical dispatch decisions;
* pure seeded exploration draws and the focused arm pool (hopeless arms
  are never explored);
* serve-layer determinism: ``workers=1`` and ``workers=N`` produce
  identical outcomes, adaptation counters and correction payloads, and
  with telemetry off the whole adaptive path is a strict no-op.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.device import get_spec
from repro.obs import metrics_session
from repro.obs.schema import validate
from repro.perf.adaptive import (
    CORRECTIONS_SCHEMA,
    AdaptiveDispatcher,
    CorrectionStore,
    Regime,
    corrected_ranking,
    explore_draw,
)
from repro.perf.costmodel import rank_algorithms
from repro.serve import Request, ServeConfig, TopKService
from repro.serve.cache import ServeCache

SPEC = get_spec("A100")


def _fill_window(store, algo, residual, *, n=4096, k=64, batch=8, count=None):
    """Feed one full window of constant residuals; returns folds seen."""
    folds = 0
    for _ in range(count if count is not None else store.min_window):
        if store.observe(
            algo, n=n, k=k, batch=batch, residual_log2=residual
        ):
            folds += 1
    return folds


class TestFoldController:
    def test_no_fold_below_min_window(self):
        store = CorrectionStore(min_window=4)
        folds = _fill_window(store, "air_topk", 2.0, count=3)
        assert folds == 0
        assert store.folds == 0
        assert store.correction_log2("air_topk", n=4096, k=64, batch=8) == 0.0

    def test_fold_applies_gain_times_mean(self):
        store = CorrectionStore(min_window=2, gain=0.5)
        folds = _fill_window(store, "air_topk", 2.0)
        assert folds == 1
        # gain 0.5 x mean 2.0 -> +1.0; the corrected prediction doubles
        assert store.correction_log2("air_topk", n=4096, k=64, batch=8) == 1.0
        assert store.apply(
            "air_topk", 1e-5, n=4096, k=64, batch=8
        ) == pytest.approx(2e-5)

    def test_gain_grows_while_wrong_and_resets_on_improvement(self):
        store = CorrectionStore(min_window=2, gain=0.5, gain_grow=1.5)
        cell = store._cell("air_topk", Regime.of(n=4096, k=64, batch=8))
        # fold 1: best was inf, any mean improves -> gain stays at base
        _fill_window(store, "air_topk", 2.0)
        assert cell.gain == 0.5
        # fold 2: same |mean| again — not an improvement -> gain grows
        _fill_window(store, "air_topk", 2.0)
        assert cell.gain == pytest.approx(0.75)
        # fold 3: still as wrong -> keeps growing (capped at gain_max)
        _fill_window(store, "air_topk", -2.0)
        assert cell.gain == pytest.approx(1.0)
        # fold 4: a smaller residual improves on best -> reset to base
        _fill_window(store, "air_topk", 0.25)
        assert cell.gain == 0.5
        assert cell.best == 0.25

    def test_converged_cell_stops_moving(self):
        store = CorrectionStore(min_window=2, gain=0.5)
        _fill_window(store, "air_topk", 2.0)
        before = store.correction_log2("air_topk", n=4096, k=64, batch=8)
        _fill_window(store, "air_topk", 0.0)
        after = store.correction_log2("air_topk", n=4096, k=64, batch=8)
        assert after == before

    def test_non_finite_residuals_are_dropped(self):
        store = CorrectionStore(min_window=1)
        assert not store.observe(
            "air_topk", n=4096, k=64, batch=8, residual_log2=math.nan
        )
        assert not store.observe(
            "air_topk", n=4096, k=64, batch=8, residual_log2=math.inf
        )
        assert store.observations == 0

    def test_len_counts_nonzero_corrections(self):
        store = CorrectionStore(min_window=2)
        assert len(store) == 0
        _fill_window(store, "air_topk", 1.0)
        assert len(store) == 1


class TestRegimeBucketing:
    def test_buckets_round_up_to_powers_of_two(self):
        regime = Regime.of(n=1000, k=17, batch=3)
        assert regime.parts[:3] == (1024, 32, 4)
        # exact powers of two are their own bucket
        assert Regime.of(n=1024, k=16, batch=4).parts[:3] == (1024, 16, 4)

    def test_correction_shared_within_bucket_isolated_across(self):
        store = CorrectionStore(min_window=1)
        store.observe("air_topk", n=4096, k=64, batch=8, residual_log2=2.0)
        # 3000 rounds to the same n-bucket (4096) -> correction applies
        assert store.correction_log2("air_topk", n=3000, k=64, batch=8) != 0.0
        # the next bucket up, another algo, another dtype: all untouched
        assert store.correction_log2("air_topk", n=8192, k=64, batch=8) == 0.0
        assert store.correction_log2("grid_select", n=4096, k=64, batch=8) == 0.0
        assert (
            store.correction_log2(
                "air_topk", n=4096, k=64, batch=8, dtype="float64"
            )
            == 0.0
        )


class TestCorrectedRanking:
    N, K, BATCH = 16384, 64, 8

    def test_no_store_returns_input_order(self):
        ranking = rank_algorithms(n=self.N, k=self.K, batch=self.BATCH, spec=SPEC)
        assert corrected_ranking(
            ranking, None, n=self.N, k=self.K, batch=self.BATCH
        ) == list(ranking)

    def test_large_correction_demotes_the_winner(self):
        ranking = rank_algorithms(n=self.N, k=self.K, batch=self.BATCH, spec=SPEC)
        winner = ranking[0].algo
        store = CorrectionStore(min_window=1, gain=1.0)
        # fold "the winner is actually 2^8 slower here" into its regime
        store.observe(
            winner, n=self.N, k=self.K, batch=self.BATCH, residual_log2=8.0
        )
        adapted = corrected_ranking(
            ranking, store, n=self.N, k=self.K, batch=self.BATCH
        )
        assert adapted[0].algo != winner
        demoted = next(p for p in adapted if p.algo == winner)
        assert demoted.source == "adapted"
        assert demoted.time == pytest.approx(ranking[0].time * 2.0**8)
        # untouched entries keep their analytic source and times
        assert all(p.source != "adapted" for p in adapted if p.algo != winner)


class TestPlanCacheEpochs:
    """The satellite-3 regression pin: folds invalidate exactly the
    plans whose regime changed."""

    def test_fold_misses_only_the_folded_regime(self):
        store = CorrectionStore(min_window=1, gain=1.0)
        cache = ServeCache(plan_capacity=16)
        cache.corrections = store
        hot = dict(n=16384, k=64, batch=8, spec=SPEC, largest=True)
        cold = dict(n=2048, k=8, batch=8, spec=SPEC, largest=True)

        plan_hot, hit = cache.make_plan(**hot)
        assert not hit
        _, hit = cache.make_plan(**hot)
        assert hit
        cache.make_plan(**cold)
        _, hit = cache.make_plan(**cold)
        assert hit

        # a fold in the hot regime bumps its epoch: the hot plan is
        # stale and misses; the cold regime's plan keeps hitting
        store.observe(
            plan_hot.algo, n=16384, k=64, batch=8, residual_log2=8.0
        )
        replan, hit = cache.make_plan(**hot)
        assert not hit
        assert replan.algo != plan_hot.algo  # the re-rank saw the fold
        _, hit = cache.make_plan(**cold)
        assert hit

    def test_epoch_counts_folds_per_regime(self):
        store = CorrectionStore(min_window=1)
        assert store.regime_epoch(n=4096, k=64, batch=8) == 0
        store.observe("air_topk", n=4096, k=64, batch=8, residual_log2=1.0)
        store.observe("grid_select", n=4096, k=64, batch=8, residual_log2=1.0)
        assert store.regime_epoch(n=4096, k=64, batch=8) == 2
        assert store.regime_epoch(n=8192, k=64, batch=8) == 0


class TestPersistence:
    def _folded_store(self):
        store = CorrectionStore(min_window=2, gain=0.5)
        _fill_window(store, "air_topk", 2.0)
        _fill_window(store, "air_topk", 2.0)
        _fill_window(store, "grid_select", -1.0, n=16384, k=256)
        # a pending (unfolded) window on another algo
        store.observe("radix_select", n=4096, k=64, batch=8, residual_log2=0.5)
        return store

    def test_payload_validates_and_roundtrips(self, tmp_path):
        store = self._folded_store()
        payload = store.to_payload()
        validate(payload, CORRECTIONS_SCHEMA)
        path = store.save(tmp_path / "corr.json")
        loaded = CorrectionStore.load(path)
        # folded corrections round-trip exactly; a pending (unfolded)
        # window persists its controller state but not its contents, so
        # its zero-log2 record drops out of the reloaded payload
        reloaded = loaded.to_payload()

        def folded(p):
            return [c for c in p["corrections"] if c["log2"] != 0.0]

        assert folded(reloaded) == folded(payload)
        assert reloaded["regime_epochs"] == payload["regime_epochs"]
        assert loaded.folds == store.folds
        assert loaded.regime_epoch(n=4096, k=64, batch=8) == store.regime_epoch(
            n=4096, k=64, batch=8
        )

    def test_loaded_store_reproduces_identical_dispatch(self, tmp_path):
        store = self._folded_store()
        path = store.save(tmp_path / "corr.json")
        a = AdaptiveDispatcher(corrections=store, epsilon=0.3, seed=7)
        b = AdaptiveDispatcher(
            corrections=CorrectionStore.load(path), epsilon=0.3, seed=7
        )
        shapes = [(4096, 64, 8), (16384, 256, 8), (2048, 8, 64)]
        for t in range(60):
            n, k, batch = shapes[t % len(shapes)]
            da = a.choose(n=n, k=k, batch=batch, spec=SPEC, site="test")
            db = b.choose(n=n, k=k, batch=batch, spec=SPEC, site="test")
            assert (da.algo, da.explored, da.ranking) == (
                db.algo,
                db.explored,
                db.ranking,
            )


class TestExploreDraw:
    def test_pure_and_deterministic(self):
        args = (7, "serve.dispatch", 4096, 64, 8, "A100", "float32", 0)
        assert explore_draw(*args) == explore_draw(*args)
        assert 0.0 <= explore_draw(*args) < 1.0

    def test_streams_are_independent(self):
        base = explore_draw(7, "site", 4096, 0)
        assert explore_draw(7, "site", 4096, 1) != base  # index
        assert explore_draw(8, "site", 4096, 0) != base  # seed
        assert explore_draw(7, "other", 4096, 0) != base  # site

    def test_draw_rate_tracks_epsilon(self):
        draws = [explore_draw(0, "rate", i) for i in range(2000)]
        rate = sum(1 for d in draws if d < 0.1) / len(draws)
        assert 0.05 < rate < 0.15


class TestFocusedExploration:
    RANKING = (("fast", 1e-5), ("near", 2e-5), ("hopeless", 1e-2))

    def test_hopeless_arms_are_never_explored(self):
        d = AdaptiveDispatcher(epsilon=0.5, explore_factor=4.0, seed=3)
        chosen = set()
        for _ in range(200):
            decision = d.decide(self.RANKING, n=4096, k=64, batch=8)
            chosen.add(decision.algo)
        assert d.explored > 0
        assert "near" in chosen  # the 2x arm is worth measuring
        assert "hopeless" not in chosen  # the 1000x arm never is

    def test_explore_false_always_exploits(self):
        d = AdaptiveDispatcher(epsilon=0.5, seed=3)
        for _ in range(50):
            decision = d.decide(
                self.RANKING, n=4096, k=64, batch=8, explore=False
            )
            assert decision.algo == "fast"
            assert not decision.explored
        assert d.explored == 0

    def test_observed_means_override_predictions(self):
        d = AdaptiveDispatcher(epsilon=0.0)
        # measurements say the predicted runner-up is actually faster
        d.observe("near", n=4096, k=64, batch=8, measured_s=1e-6, spec=SPEC)
        decision = d.decide(self.RANKING, n=4096, k=64, batch=8)
        assert decision.algo == "near"

    def test_explore_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveDispatcher(explore_factor=0.5)


def _request_stream(count: int = 48) -> list[Request]:
    """A deterministic mixed stream: hot small shapes plus shard-eligible
    large rows (those are decision-only — sharded feedback is excluded)."""
    rng = np.random.default_rng(42)
    requests = []
    for rid in range(count):
        n = 4096 if rid % 8 == 0 else 1024
        requests.append(
            Request(
                rid=rid,
                data=rng.standard_normal(n).astype(np.float32),
                k=32,
                largest=True,
                arrival_s=rid * 2e-4,
            )
        )
    return requests


def _adaptive_config(**overrides) -> ServeConfig:
    base = dict(
        algo="auto",
        adaptive=True,
        adapt_epsilon=0.3,
        adapt_min_window=2,
        adapt_seed=7,
        seed=0,
        shards=2,
        shard_min_n=4096,
        max_batch=8,
        max_delay_s=1e-3,
        result_cache=0,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _outcome_fingerprint(service: TopKService) -> list[tuple]:
    rows = []
    for out in service.outcomes:
        rows.append(
            (
                out.rid,
                out.status,
                out.algo,
                out.values.tobytes() if out.values is not None else None,
                out.indices.tobytes() if out.indices is not None else None,
            )
        )
    return rows


class TestServeDeterminism:
    """ISSUE satellite 4: identical dispatch under workers=1 vs N and a
    strict no-op with telemetry off."""

    def _run(self, config):
        service = TopKService(config)
        stats = service.run(_request_stream())
        return service, stats

    def test_workers_do_not_change_adaptive_serving(self):
        with metrics_session():
            s1, stats1 = self._run(_adaptive_config(workers=1))
        with metrics_session():
            s4, stats4 = self._run(_adaptive_config(workers=4))
        assert stats1.adapt_observations > 0
        assert stats1.adapt_folds > 0
        assert (
            stats1.adapt_observations,
            stats1.adapt_folds,
            stats1.adapt_explored,
        ) == (
            stats4.adapt_observations,
            stats4.adapt_folds,
            stats4.adapt_explored,
        )
        assert _outcome_fingerprint(s1) == _outcome_fingerprint(s4)
        # the learned state itself is byte-identical
        assert (
            s1.adaptation.corrections.to_payload()
            == s4.adaptation.corrections.to_payload()
        )
        assert s1.adaptation.decisions == s4.adaptation.decisions

    def test_telemetry_off_is_a_strict_noop(self):
        # no metrics session: the adaptive path must not decide, observe
        # or fold — outcomes equal the static auto dispatch bit for bit
        s_adapt, stats = self._run(_adaptive_config())
        s_static, _ = self._run(_adaptive_config(adaptive=False))
        assert stats.adapt_observations == 0
        assert stats.adapt_folds == 0
        assert stats.adapt_explored == 0
        assert s_adapt.adaptation is not None
        assert s_adapt.adaptation.decisions == 0
        assert len(s_adapt.adaptation.corrections) == 0
        assert s_adapt.adaptation.corrections.observations == 0
        assert _outcome_fingerprint(s_adapt) == _outcome_fingerprint(s_static)

    def test_adaptation_report_totals_match_stats(self):
        from repro.obs.serve import build_serve_report

        with metrics_session():
            service, stats = self._run(_adaptive_config())
        report = build_serve_report(service.telemetry, stats)
        totals = report["totals"]
        assert totals["adapt_observations"] == stats.adapt_observations
        assert totals["adapt_folds"] == stats.adapt_folds
        assert totals["adapt_explored"] == stats.adapt_explored
        window_obs = sum(
            w.get("adapt_observations", 0) for w in report["windows"]
        )
        assert window_obs == stats.adapt_observations
