"""Properties of the fused batched hot paths.

The fusion work (AIR Top-K, BucketSelect, the queue/grid family) replaces
per-row host loops with one launch set over the whole batch.  These tests
pin the scheduling invariants that rewrite must preserve:

* **Row-order equivariance** — permuting the rows of a batch permutes the
  outputs exactly, and leaves the launch accounting (kernel launches,
  per-kernel traffic, syncs, PCIe transfers) bit-identical: a fused pass
  sums the same per-row traffic in a different order.
* **The capability flag is truthful** — every registered algorithm's
  ``batched_execution`` flag must match its observable launch behaviour:
  fused algorithms launch the same number of kernels for a replicated
  batch as for one row; per-row algorithms replay their launches once per
  row.
* **The sharded coordinator knows about fused batches** — its merge
  launches carry a per-problem serial term that scales with the batch,
  and its result meta reports which launch-cost regime the shards ran in.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algos import get_algorithm
from repro.bench import ALL_ALGORITHMS
from repro.device import Device, get_spec
from repro.perf import calibration as cal
from repro.serve import sharded_topk

settings.register_profile("fused", deadline=None, max_examples=25)
settings.load_profile("fused")

SPEC = get_spec("A100")

#: algorithms with a vectorised (one launch set per pass) batched path
FUSED = (
    "air_topk",
    "bucket_select",
    "grid_select",
    "warp_select",
    "block_select",
    "quick_select",
    "sample_select",
)


def _batch_data(batch: int, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((batch, n)).astype(np.float32)
    flat = data.ravel()
    flat[rng.integers(0, flat.size, 8)] = np.inf
    flat[rng.integers(0, flat.size, 8)] = -np.inf
    return data


def _run_counted(algo: str, data: np.ndarray, k: int):
    dev = Device(SPEC)
    res = get_algorithm(algo).select(data, k, device=dev, seed=7)
    stats = {
        name: (s.launches, s.bytes_read, s.bytes_written, s.flops)
        for name, s in dev.kernel_stats.items()
    }
    counters = {
        key: val
        for key, val in vars(dev.counters).items()
        if not key.startswith("_")
    }
    return res, counters, stats


@pytest.mark.parametrize("algo", FUSED)
class TestRowOrderEquivariance:
    @given(
        batch=st.integers(min_value=2, max_value=23),
        n=st.sampled_from([64, 256, 1024]),
        k=st.sampled_from([1, 8, 64]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_permuting_rows_permutes_outputs(self, algo, batch, n, k, seed):
        if k > n or get_algorithm(algo).supports(n, k) is not None:
            return
        data = _batch_data(batch, n, seed)
        perm = np.random.default_rng(seed + 1).permutation(batch)
        res, counters, stats = _run_counted(algo, data, k)
        res_p, counters_p, stats_p = _run_counted(algo, data[perm], k)

        # outputs are permuted exactly alongside the rows
        assert res_p.values.tobytes() == res.values[perm].tobytes()
        assert np.array_equal(res_p.indices, res.indices[perm])
        # the fused launch accounting is row-order independent: the same
        # number of grid launches and passes, the same traffic sums, the
        # same synchronisations and PCIe transfers
        assert counters_p == counters
        assert stats_p == stats


class TestBatchedFlagIsTruthful:
    """``batched_execution`` must describe real launch behaviour."""

    N = 512
    K = 16
    BATCH = 5

    @pytest.mark.parametrize("algo", ALL_ALGORITHMS)
    def test_flag_matches_launch_counts(self, algo):
        algorithm = get_algorithm(algo)
        if algorithm.supports(self.N, self.K) is not None:
            pytest.skip(f"{algo} does not support n={self.N}, k={self.K}")
        row = _batch_data(1, self.N, seed=3)
        replicated = np.repeat(row, self.BATCH, axis=0)

        _, single, _ = _run_counted(algo, row, self.K)
        _, batched, _ = _run_counted(algo, replicated, self.K)
        if algorithm.batched_execution:
            # one launch set covers the whole batch: replicating the row
            # adds traffic, never launches
            assert batched["kernel_launches"] == single["kernel_launches"], (
                f"{algo} advertises batched_execution but launched "
                f"{batched['kernel_launches']} kernels for batch="
                f"{self.BATCH} vs {single['kernel_launches']} for batch=1"
            )
        else:
            # the host replays the per-row schedule once per row (the final
            # result sync is shared, so launches — not syncs — scale)
            assert (
                batched["kernel_launches"]
                == self.BATCH * single["kernel_launches"]
            ), (
                f"{algo} advertises per-row execution but launched "
                f"{batched['kernel_launches']} kernels for batch="
                f"{self.BATCH} vs {single['kernel_launches']} for batch=1"
            )

    @pytest.mark.parametrize(
        "algo", ["bucket_select", "quick_select", "sample_select"]
    )
    def test_flag_follows_fusion(self, algo):
        assert get_algorithm(algo).batched_execution is True
        assert (
            get_algorithm(algo, params={"fused": False}).batched_execution
            is False
        )


class TestSharderFusedBatchCosts:
    def test_merge_cost_scales_with_batch(self):
        rng = np.random.default_rng(11)
        small = rng.standard_normal((2, 4096)).astype(np.float32)
        # identical per-row problems, 4x the rows: the merge tree handles
        # 4x the candidates and its fixed per-problem chain is 4x as long
        big = np.tile(small, (4, 1))
        r_small = sharded_topk(small, 32, shards=4, algo="sort")
        r_big = sharded_topk(big, 32, shards=4, algo="sort")

        def merge_fixed_cycles(result):
            dev = result.device
            total = 0.0
            for name, stats in dev.kernel_stats.items():
                if name.startswith("shard_merge_l"):
                    total += stats.time
            return total

        assert merge_fixed_cycles(r_big) > merge_fixed_cycles(r_small)
        # the per-problem serial term is priced from the calibration
        # constant, which exists and is positive
        assert cal.MERGE_PER_PROBLEM_CYCLES > 0

    @pytest.mark.parametrize(
        "algo,expected", [("sort", False), ("air_topk", True)]
    )
    def test_meta_reports_launch_regime(self, algo, expected):
        data = np.random.default_rng(5).standard_normal((3, 2048)).astype(
            np.float32
        )
        result = sharded_topk(data, 16, shards=2, algo=algo)
        assert result.meta["batched_execution"] is expected
