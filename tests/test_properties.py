"""Property-based cross-cutting invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import available_algorithms, check_topk, topk
from repro.verify import oracle_topk_values

# Exact roster only: the approximate tier's recall properties live in
# tests/test_approx.py.
ALGOS = [info.name for info in available_algorithms() if info.exact]

#: float32 values including duplicates, infinities and extremes
finite_floats = st.floats(
    width=32, allow_nan=False, allow_infinity=True, allow_subnormal=True
)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(finite_floats, min_size=1, max_size=400),
    st.integers(min_value=1, max_value=400),
    st.sampled_from(ALGOS),
    st.booleans(),
)
def test_every_algorithm_matches_oracle(values, k_raw, algo, largest):
    data = np.array(values, dtype=np.float32)
    k = 1 + (k_raw - 1) % data.shape[0]
    if algo == "bitonic_topk" and k > 256:
        k = 256 if data.shape[0] >= 256 else k % data.shape[0] + 1
    r = topk(data, k, algo=algo, largest=largest)
    check_topk(data, r.values, r.indices, largest=largest)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(finite_floats, min_size=2, max_size=200),
    st.integers(min_value=1, max_value=50),
)
def test_all_algorithms_agree_on_value_multiset(values, k_raw):
    """Every algorithm returns the same multiset of selected values."""
    data = np.array(values, dtype=np.float32)
    k = 1 + (k_raw - 1) % data.shape[0]
    expect = oracle_topk_values(data, k)
    for algo in ALGOS:
        got = topk(data, k, algo=algo).values
        assert np.array_equal(got, expect), algo


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=0, max_value=2**31),
)
def test_smallest_and_largest_are_duals(n, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(n).astype(np.float32)
    k = max(1, n // 3)
    small = topk(data, k, algo="air_topk")
    large = topk(-data, k, algo="air_topk", largest=True)
    assert np.array_equal(small.values, -large.values)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=1000), st.integers(min_value=0, max_value=2**31))
def test_result_set_is_downward_closed(n, seed):
    """top-(k) is always a prefix of top-(k+1) in value order."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(n).astype(np.float32)
    k = max(1, n // 2)
    a = topk(data, k, algo="air_topk").values
    b = topk(data, k + (k < n), algo="air_topk").values
    assert np.array_equal(a, b[: len(a)])


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["air_topk", "grid_select", "sort", "radix_select"]),
)
def test_batch_rows_independent(n, batch, seed, algo):
    """Batched output equals per-row output."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((batch, n)).astype(np.float32)
    k = max(1, n // 4)
    batched = topk(data, k, algo=algo)
    for row in range(batch):
        single = topk(data[row], k, algo=algo)
        assert np.array_equal(batched.values[row], single.values)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=100, max_value=5000),
    st.integers(min_value=0, max_value=2**31),
)
def test_adaptive_traffic_bounded_vs_static(n, seed):
    """Adaptive traffic never exceeds static by more than the bounded cost
    of re-reading the input where buffering was declined.  (For tiny N the
    alpha=128 threshold can decline a buffer that would have been slightly
    cheaper — the trade-off the paper tunes alpha for at scale.)"""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(n).astype(np.float32)
    k = max(1, n // 10)
    adaptive = topk(data, k, algo="air_topk")
    static = topk(data, k, algo="air_topk", params={"adaptive": False})
    slack = 2 * 4.0 * n  # at most two declined-buffer input re-reads
    assert (
        adaptive.device.counters.bytes_total
        <= static.device.counters.bytes_total + slack
    )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=65536, max_value=1 << 20),
    st.integers(min_value=0, max_value=2**31),
)
def test_adaptive_strictly_wins_on_adversarial(n, seed):
    """Under the radix-adversarial distribution the adaptive strategy
    strictly dominates the always-buffer pipeline (Fig. 9)."""
    from repro.datagen import adversarial

    data = adversarial(n, seed=seed, m=20)[0]
    k = max(1, n // 100)
    on = topk(data, k, algo="air_topk")
    off = topk(data, k, algo="air_topk", params={"adaptive": False})
    assert on.device.counters.bytes_total < off.device.counters.bytes_total
    assert on.time <= off.time


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.sampled_from(ALGOS))
def test_timeline_well_formed(seed, algo):
    """Per-stream events never overlap; elapsed covers the whole trace."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(3000).astype(np.float32)
    r = topk(data, 64, algo=algo)
    tl = r.device.timeline
    for stream in ("gpu", "cpu", "pcie_d2h", "pcie_h2d"):
        events = tl.stream_events(stream)
        for a, b in zip(events, events[1:]):
            assert b.start >= a.end - 1e-12
    assert r.device.elapsed >= max((e.end for e in tl.events), default=0.0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_permutation_invariance_of_values(seed):
    """Shuffling the input never changes the selected value multiset."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(800).astype(np.float32)
    shuffled = data.copy()
    rng.shuffle(shuffled)
    for algo in ("air_topk", "grid_select"):
        a = topk(data, 25, algo=algo).values
        b = topk(shuffled, 25, algo=algo).values
        assert np.array_equal(a, b)
