"""Tests for the workload generators (distributions and ANN stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import (
    VectorDataset,
    adversarial,
    deep1b_like,
    distance_array,
    generate,
    leading_bits_shared,
    make_dataset,
    sift_like,
)
from repro.device import A100, Device


class TestDistributions:
    def test_uniform_range(self):
        x = generate("uniform", 10000, seed=1)
        assert x.shape == (1, 10000)
        assert x.dtype == np.float32
        assert x.min() > 0.0 and x.max() <= 1.0

    def test_normal_moments(self):
        x = generate("normal", 200000, seed=2)[0]
        assert abs(float(x.mean())) < 0.02
        assert abs(float(x.std()) - 1.0) < 0.02

    def test_batched_rows_differ(self):
        x = generate("uniform", 1000, batch=3, seed=3)
        assert x.shape == (3, 1000)
        assert not np.array_equal(x[0], x[1])

    def test_deterministic_by_seed(self):
        a = generate("normal", 100, seed=5)
        b = generate("normal", 100, seed=5)
        c = generate("normal", 100, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate("zipf", 100)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            generate("uniform", 0)
        with pytest.raises(ValueError):
            generate("uniform", 10, batch=0)


class TestAdversarial:
    @pytest.mark.parametrize("m", [10, 12, 20, 28])
    def test_exact_shared_prefix(self, m):
        x = adversarial(50000, seed=1, m=m)
        assert leading_bits_shared(x) >= m

    def test_values_are_finite_normals(self):
        x = adversarial(10000, seed=2, m=20)
        assert np.isfinite(x).all()
        assert (x >= 1.0).all() and (x < 2.0).all()

    def test_paper_example_range(self):
        """M=20 reproduces the paper's example: values in [1.0, 1.00049]."""
        x = adversarial(10000, seed=3, m=20)
        assert x.max() <= 1.00049

    def test_m_validation(self):
        with pytest.raises(ValueError):
            adversarial(10, m=5)
        with pytest.raises(ValueError):
            adversarial(10, m=32)

    def test_low_bits_vary(self):
        x = adversarial(10000, seed=4, m=20)
        assert len(np.unique(x)) > 1000  # 12 free bits -> up to 4096 values

    def test_leading_bits_shared_diagnostic(self):
        same = np.full(100, 1.5, dtype=np.float32)
        assert leading_bits_shared(same) == 32
        x = np.array([1.0, -1.0], dtype=np.float32)
        assert leading_bits_shared(x) == 0


class TestAnnDatasets:
    def test_deep1b_like_shape_and_norm(self):
        ds = deep1b_like(2000, num_queries=4, seed=1)
        assert ds.vectors.shape == (2000, 96)
        assert ds.queries.shape == (4, 96)
        norms = np.linalg.norm(ds.vectors, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_sift_like_quantised_nonnegative(self):
        ds = sift_like(2000, seed=2)
        assert ds.dim == 128
        assert ds.vectors.min() >= 0.0
        assert ds.vectors.max() <= 255.0
        assert np.array_equal(ds.vectors, np.floor(ds.vectors))

    def test_factory(self):
        ds = make_dataset("deep1b", 500, seed=3)
        assert isinstance(ds, VectorDataset)
        assert ds.num_vectors == 500
        with pytest.raises(KeyError):
            make_dataset("glove", 10)

    def test_distance_array_values(self):
        ds = deep1b_like(300, seed=4)
        d = distance_array(ds, 0)
        assert d.shape == (300,)
        q = ds.queries[0]
        expect = ((ds.vectors[17] - q) ** 2).sum()
        assert d[17] == pytest.approx(expect, rel=1e-5)
        assert (d >= 0).all()

    def test_distance_array_subset(self):
        ds = sift_like(1000, seed=5)
        d = distance_array(ds, 1, subset=128)
        assert d.shape == (128,)

    def test_distance_array_accounts_device(self):
        ds = deep1b_like(500, seed=6)
        dev = Device(A100)
        distance_array(ds, 0, device=dev)
        assert dev.counters.kernel_launches == 1
        assert dev.counters.bytes_read >= 500 * 96 * 4

    def test_distance_distribution_is_nonuniform(self):
        """The point of Sec. 5.5: distance arrays are clustered, unlike
        the synthetic uniform inputs."""
        ds = deep1b_like(5000, seed=7)
        d = distance_array(ds, 0)
        hist, _ = np.histogram(d, bins=16)
        assert hist.max() > 3 * hist.mean()

    def test_validation(self):
        ds = deep1b_like(100, seed=8)
        with pytest.raises(IndexError):
            distance_array(ds, 99)
        with pytest.raises(ValueError):
            distance_array(ds, 0, subset=0)
        with pytest.raises(ValueError):
            distance_array(ds, 0, subset=101)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=9, max_value=31), st.integers(min_value=0, max_value=2**31))
def test_adversarial_property(m, seed):
    x = adversarial(2048, seed=seed, m=m)
    assert leading_bits_shared(x) >= m
    assert np.isfinite(x).all()
