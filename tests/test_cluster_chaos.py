"""Cluster chaos properties: crash/partition churn, quorum, determinism.

The cluster-grade guarantees this PR promises, pinned as properties:

* every request gets exactly one terminal outcome under any seeded node
  fault mix — never a silent drop, never a duplicate verdict;
* availability stays >= 99% with R=2 replication while a replica is
  sticky-crashed (the pinned plan at benchmarks/fault_plans/cluster.json);
* replay determinism: the same plan produces byte-identical outcomes
  for workers=1 and workers=N;
* sticky node faults are permanent leaves, transient ones are per-epoch
  churn; degraded merges always carry a recall bound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.clusterbench import DEFAULT_CHAOS_PLAN, crashed_nodes
from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    node_fault_plan,
)
from repro.faults import FaultPlan, FaultRule, fault_draw
from repro.serve import LoadSpec, Request, ServeConfig, build_requests
from repro.serve.request import OUTCOMES

PLAN_PATH = "benchmarks/fault_plans/cluster.json"


def chaos_router(plan, **overrides) -> ClusterRouter:
    kwargs = dict(
        nodes=4,
        replication=2,
        placement="least-loaded",
        node_config=ServeConfig(),
        faults=plan,
    )
    kwargs.update(overrides)
    return ClusterRouter(ClusterConfig(**kwargs))


def chaos_trace(*, count=40, n=1 << 15, seed=0):
    spec = LoadSpec(
        qps=count / 1.0, duration_s=1.0, n=n, k=32, payload_pool=16, seed=seed
    )
    return build_requests(spec)


# --------------------------------------------------------------------------- #
# the pinned plan
# --------------------------------------------------------------------------- #
class TestPinnedPlan:
    def test_plan_file_matches_the_bench_default(self):
        # CI runs cluster-bench --faults benchmarks/fault_plans/cluster.json;
        # the bench's built-in default must be the same scenario
        assert FaultPlan.load(PLAN_PATH) == DEFAULT_CHAOS_PLAN

    def test_plan_crashes_exactly_one_replica_of_four(self):
        # the availability gate is only meaningful if a replica really is
        # down — pinned: seed 3 sticky-crashes node 0 and nobody else
        assert crashed_nodes(DEFAULT_CHAOS_PLAN, 4) == [0]

    def test_crashed_nodes_respects_rate_and_stickiness(self):
        quiet = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    kind="node_crash", rate=0.0, site="cluster.node", sticky=True
                ),
            ),
        )
        assert crashed_nodes(quiet, 8) == []
        transient_only = FaultPlan(
            seed=3,
            rules=(
                FaultRule(kind="node_crash", rate=1.0, site="cluster.node"),
            ),
        )
        # transient crashes are churn, not permanent leaves
        assert crashed_nodes(transient_only, 8) == []


# --------------------------------------------------------------------------- #
# one terminal outcome per request, whatever the weather
# --------------------------------------------------------------------------- #
class TestOneTerminalOutcome:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        crash=st.floats(min_value=0.0, max_value=1.0),
        partition=st.floats(min_value=0.0, max_value=0.6),
        sticky=st.booleans(),
        replication=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_rid_resolves_exactly_once(
        self, seed, crash, partition, sticky, replication
    ):
        plan = FaultPlan(
            seed=seed,
            rules=(
                FaultRule(
                    kind="node_crash",
                    rate=crash,
                    site="cluster.node",
                    sticky=sticky,
                ),
                FaultRule(
                    kind="node_partition", rate=partition, site="cluster.node"
                ),
            ),
        )
        router = chaos_router(plan, replication=replication)
        requests = chaos_trace(count=20, seed=seed)
        router.run(requests)
        assert sorted(o.rid for o in router.outcomes) == sorted(
            r.rid for r in requests
        )
        assert all(o.status in OUTCOMES for o in router.outcomes)

    def test_total_outage_fails_loudly(self):
        # every node down: every request must resolve as a terminal
        # failure carrying a diagnosis, not vanish
        plan = FaultPlan(
            seed=0,
            rules=(
                FaultRule(
                    kind="node_crash", rate=1.0, site="cluster.node", sticky=True
                ),
            ),
        )
        router = chaos_router(plan)
        requests = chaos_trace(count=10)
        stats = router.run(requests)
        assert stats.failed == len(requests)
        assert stats.availability == 0.0
        assert all(o.status == "failed" for o in router.outcomes)
        assert all("quorum not met" in o.error for o in router.outcomes)


# --------------------------------------------------------------------------- #
# availability under replica loss
# --------------------------------------------------------------------------- #
class TestAvailabilityUnderCrash:
    def test_r2_cluster_survives_one_crashed_replica(self):
        router = chaos_router(FaultPlan.load(PLAN_PATH))
        stats = router.run(chaos_trace(count=60))
        assert stats.availability >= 0.99
        assert stats.failovers > 0  # the crash was actually routed around
        # the crashed replica never served anything
        assert router.nodes[0].stats.total == 0

    def test_r1_cluster_does_lose_requests(self):
        # the control: without replication the same plan loses work, so
        # the R=2 assertion above is not vacuous
        plan = FaultPlan.load(PLAN_PATH)
        router = chaos_router(plan, replication=1, placement="locality-aware")
        stats = router.run(chaos_trace(count=60))
        assert stats.availability < 0.99

    def test_partitioned_nodes_burn_work_but_answers_survive(self):
        plan = FaultPlan(
            seed=11,
            rules=(
                FaultRule(
                    kind="node_partition", rate=0.25, site="cluster.node"
                ),
            ),
        )
        router = chaos_router(plan)
        stats = router.run(chaos_trace(count=40))
        assert stats.availability >= 0.99
        assert stats.wasted_dispatches > 0
        orphaned = sum(len(node.orphans) for node in router.nodes)
        assert orphaned > 0


# --------------------------------------------------------------------------- #
# replay determinism
# --------------------------------------------------------------------------- #
class TestReplayDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_never_changes_results(self, workers):
        plan = FaultPlan.load(PLAN_PATH)

        def replay(w):
            router = chaos_router(plan, workers=w)
            stats = router.run(chaos_trace(count=30))
            return router, stats

        base_router, base_stats = replay(1)
        router, stats = replay(workers)
        assert stats == base_stats
        assert len(router.outcomes) == len(base_router.outcomes)
        for a, b in zip(base_router.outcomes, router.outcomes):
            assert (a.rid, a.status, a.finish_s) == (b.rid, b.status, b.finish_s)
            if a.values is not None:
                assert np.array_equal(a.values, b.values)
                assert np.array_equal(a.indices, b.indices)

    def test_same_seed_same_verdicts_across_routers(self):
        plan = FaultPlan.load(PLAN_PATH)
        runs = [chaos_router(plan).run(chaos_trace(count=25)) for _ in range(2)]
        assert runs[0] == runs[1]


# --------------------------------------------------------------------------- #
# node fault semantics
# --------------------------------------------------------------------------- #
class TestNodeFaultSemantics:
    def test_sticky_crash_is_permanent_across_epochs(self):
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    kind="node_crash", rate=0.3, site="cluster.node", sticky=True
                ),
            ),
        )
        router = chaos_router(plan)
        verdicts = {
            router._node_down("node_crash", 0, t)
            for t in (0.0, 0.3, 1.7, 9.9)
        }
        assert verdicts == {True}

    def test_transient_partition_churns_per_epoch(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(
                    kind="node_partition", rate=0.5, site="cluster.node"
                ),
            ),
        )
        router = chaos_router(plan)
        epoch_s = router.config.fault_epoch_s
        verdicts = [
            router._node_down("node_partition", 1, epoch * epoch_s)
            for epoch in range(32)
        ]
        assert True in verdicts and False in verdicts
        # within one epoch the verdict is stable (leave/rejoin churn,
        # not per-packet noise)
        assert router._node_down(
            "node_partition", 1, 0.0
        ) == router._node_down("node_partition", 1, epoch_s * 0.99)

    def test_node_plans_strip_router_kinds_and_reseed(self):
        plan = FaultPlan(
            seed=5,
            rules=(
                FaultRule(
                    kind="node_crash", rate=1.0, site="cluster.node", sticky=True
                ),
                FaultRule(kind="straggler", rate=0.2, site="serve.shard"),
            ),
        )
        derived = [node_fault_plan(plan, i) for i in range(3)]
        for node_plan in derived:
            assert [r.kind for r in node_plan.rules] == ["straggler"]
        assert len({p.seed for p in derived}) == 3
        router_only = FaultPlan(
            seed=5,
            rules=(
                FaultRule(
                    kind="node_crash", rate=1.0, site="cluster.node", sticky=True
                ),
            ),
        )
        assert node_fault_plan(router_only, 0) is None
        assert node_fault_plan(None, 0) is None

    def test_node_level_faults_hit_replicas_independently(self):
        # the per-node reseed: replicas must not straggle in lockstep
        draws = {
            fault_draw(
                node_fault_plan(
                    FaultPlan(
                        seed=5,
                        rules=(
                            FaultRule(
                                kind="straggler", rate=0.5, site="serve.shard"
                            ),
                        ),
                    ),
                    node,
                ).seed,
                "straggler",
                "serve.shard",
                "shard=0",
            )
            for node in range(4)
        }
        assert len(draws) == 4


# --------------------------------------------------------------------------- #
# degraded merges stay recall-bounded
# --------------------------------------------------------------------------- #
class TestDegradedMerges:
    def test_lost_partition_yields_bounded_degraded_answer(self):
        # R=1 with node 0 sticky-crashed: exactly one of four partitions
        # has no reachable replica; quorum_f=1 lets the merge proceed
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    kind="node_crash", rate=0.3, site="cluster.node", sticky=True
                ),
            ),
        )
        router = chaos_router(
            plan, replication=1, placement="locality-aware", quorum_f=1
        )
        rng = np.random.default_rng(13)
        data = rng.permutation(np.arange(1 << 15)).astype(np.float32)
        stats = router.run(
            [Request(rid=0, data=data, k=32, largest=True, arrival_s=0.0)]
        )
        outcome = router.outcomes[0]
        assert outcome.status == "degraded"
        assert not outcome.exact
        assert outcome.recall_bound is not None
        assert 0.0 <= outcome.recall_bound < 1.0
        assert stats.lost_partitions == 1
        # the surviving 3/4 of the data still merges correctly: every
        # returned value really is in the top-k of the surviving slices
        assert len(outcome.values) == 32

    def test_quorum_zero_never_degrades_on_a_healthy_cluster(self):
        router = chaos_router(None, quorum_f=0)
        stats = router.run(chaos_trace(count=20))
        assert stats.degraded == 0
        assert stats.availability == 1.0
        assert all(o.exact for o in router.outcomes if o.ok)
