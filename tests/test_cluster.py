"""The cluster differential layer: router output == single-shot topk.

Pins the PR's acceptance criteria: a healthy N-node cluster answer is
byte-identical to ``repro.topk()`` across every supported dtype, both
directions and every placement policy; ties never diverge beyond legal
index permutations; and approximate-tier traffic never aliases exact
traffic anywhere in the cluster (chaos properties live in
tests/test_cluster_chaos.py).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import check_topk, topk
from repro.cluster import (
    PLACEMENTS,
    ClusterConfig,
    ClusterRouter,
    ConsistentHashPlacement,
    LeastLoadedPlacement,
    LocalityAwarePlacement,
    make_placement,
)
from repro.serve import Request, ServeConfig

ALL_DTYPES = (
    "float16",
    "float32",
    "float64",
    "int16",
    "int32",
    "int64",
    "uint16",
    "uint32",
    "uint64",
)

#: large enough that the router partitions it (>= partition_min_n)
PARTITIONED_N = 1 << 15


def unique_data(n: int, dtype: str, seed: int = 7) -> np.ndarray:
    """A shuffled 0..n-1 ramp: every value unique and exactly representable."""
    rng = np.random.default_rng(seed)
    return rng.permutation(np.arange(n)).astype(dtype)


def make_router(**overrides) -> ClusterRouter:
    kwargs = dict(
        nodes=4,
        replication=2,
        placement="least-loaded",
        node_config=ServeConfig(),
    )
    kwargs.update(overrides)
    kwargs["replication"] = min(kwargs["replication"], kwargs["nodes"])
    return ClusterRouter(ClusterConfig(**kwargs))


def serve_one(router: ClusterRouter, data, k, *, largest=True, slo=None):
    router.run(
        [
            Request(
                rid=0, data=data, k=k, largest=largest, arrival_s=0.0, slo=slo
            )
        ]
    )
    return router.outcomes[0]


# --------------------------------------------------------------------------- #
# placement policies
# --------------------------------------------------------------------------- #
class TestPlacement:
    @pytest.mark.parametrize("name", PLACEMENTS)
    def test_replica_sets_are_valid(self, name):
        policy = make_placement(name, nodes=5, replication=3, seed=0)
        for key in ("a", "b", "payload:123"):
            for partition in range(5):
                replicas = policy.replica_set(key, partition)
                assert len(replicas) == 3
                assert len(set(replicas)) == 3
                assert all(0 <= r < 5 for r in replicas)

    @pytest.mark.parametrize("name", PLACEMENTS)
    def test_deterministic_per_seed(self, name):
        a = make_placement(name, nodes=4, replication=2, seed=9)
        b = make_placement(name, nodes=4, replication=2, seed=9)
        for partition in range(4):
            assert a.replica_set("key", partition) == b.replica_set(
                "key", partition
            )

    def test_consistent_hash_is_stable_under_growth(self):
        # the ring property: adding a node only remaps the keys that now
        # land on it — most preferred replicas stay put
        small = ConsistentHashPlacement(nodes=8, replication=1, seed=0)
        grown = ConsistentHashPlacement(nodes=9, replication=1, seed=0)
        keys = [f"key-{i}" for i in range(256)]
        moved = sum(
            small.replica_set(key, 0) != grown.replica_set(key, 0)
            for key in keys
        )
        # naive modulo placement would move ~8/9 of keys; the ring moves
        # roughly 1/9 — assert it stays well under half
        assert moved < len(keys) // 2

    def test_least_loaded_follows_recorded_cost(self):
        policy = LeastLoadedPlacement(nodes=3, replication=1, seed=0)
        assert policy.replica_set("x", 0)[0] == 0
        policy.record(0, 100.0)
        assert policy.replica_set("x", 0)[0] == 1
        policy.record(1, 50.0)
        assert policy.replica_set("x", 0)[0] == 2

    def test_locality_aware_packs_consecutive_partitions(self):
        policy = LocalityAwarePlacement(nodes=6, replication=2, seed=0)
        first = [policy.replica_set("payload", p)[0] for p in range(4)]
        # consecutive partitions of one payload land on consecutive nodes
        base = first[0]
        assert first == [(base + p) % 6 for p in range(4)]

    def test_rejects_bad_topologies(self):
        with pytest.raises(ValueError):
            make_placement("least-loaded", nodes=0, replication=1, seed=0)
        with pytest.raises(ValueError):
            make_placement("least-loaded", nodes=2, replication=3, seed=0)
        with pytest.raises(ValueError):
            make_placement("round-robin", nodes=2, replication=1, seed=0)


# --------------------------------------------------------------------------- #
# differential: cluster == single-shot topk()
# --------------------------------------------------------------------------- #
class TestClusterDifferential:
    """Acceptance pin: healthy cluster == repro.topk(), byte for byte."""

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    @pytest.mark.parametrize("largest", [False, True])
    def test_byte_identical_across_dtypes(self, dtype, largest):
        data = unique_data(PARTITIONED_N, dtype)
        single = topk(data, 33, largest=largest)
        outcome = serve_one(make_router(), data, 33, largest=largest)
        assert outcome.status == "served" and outcome.exact
        assert outcome.values.dtype == single.values.dtype
        assert np.array_equal(outcome.values, single.values)
        assert np.array_equal(outcome.indices, single.indices)

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("nodes", [1, 2, 3, 4, 8])
    def test_every_topology_matches(self, placement, nodes):
        data = unique_data(PARTITIONED_N, "float32", seed=11)
        single = topk(data, 64, largest=True)
        outcome = serve_one(
            make_router(nodes=nodes, placement=placement), data, 64
        )
        assert np.array_equal(outcome.values, single.values)
        assert np.array_equal(outcome.indices, single.indices)

    def test_small_payloads_route_whole(self):
        # below partition_min_n the payload is never split: one replica
        # serves it and the answer passes through unchanged
        data = unique_data(1 << 10, "float32", seed=3)
        single = topk(data, 17, largest=True)
        router = make_router()
        outcome = serve_one(router, data, 17)
        assert not outcome.algo.startswith("cluster:")
        assert np.array_equal(outcome.values, single.values)
        assert np.array_equal(outcome.indices, single.indices)
        assert router.stats.lost_partitions == 0

    def test_partitioned_algo_is_labelled(self):
        outcome = serve_one(
            make_router(), unique_data(PARTITIONED_N, "float32"), 16
        )
        assert outcome.algo.startswith("cluster:")

    def test_explicit_partition_counts(self):
        data = unique_data(PARTITIONED_N, "float32", seed=5)
        single = topk(data, 50, largest=True)
        for partitions in (2, 3, 7):
            outcome = serve_one(make_router(partitions=partitions), data, 50)
            assert np.array_equal(outcome.values, single.values)
            assert np.array_equal(outcome.indices, single.indices)

    @given(
        nodes=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**16),
        largest=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_ties_never_diverge(self, nodes, k, seed, largest):
        # gaussian payload with a tiny value set -> heavy ties.  Values
        # (best-first) are multiset-unique so they must match exactly;
        # indices may legally permute within a tie, so verify them
        # against the data instead of the oracle's index order.
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 8, size=PARTITIONED_N).astype(np.float32)
        single = topk(data, k, largest=largest)
        outcome = serve_one(
            make_router(nodes=nodes, placement="consistent-hash"),
            data,
            k,
            largest=largest,
        )
        assert np.array_equal(outcome.values, single.values)
        check_topk(data, outcome.values, outcome.indices, largest=largest)

    def test_repeat_payloads_hit_node_caches(self):
        data = unique_data(PARTITIONED_N, "float32", seed=13)
        single = topk(data, 32, largest=True)
        router = make_router()
        requests = [
            Request(
                rid=i, data=data, k=32, largest=True, arrival_s=0.2 * i
            )
            for i in range(4)
        ]
        router.run(requests)
        assert router.stats.cache_served > 0
        for outcome in router.outcomes:
            assert np.array_equal(outcome.values, single.values)
            assert np.array_equal(outcome.indices, single.indices)


# --------------------------------------------------------------------------- #
# approximate tier across the cluster
# --------------------------------------------------------------------------- #
class TestClusterApproxTier:
    def test_approx_requests_are_never_partitioned(self):
        # partition loss and sampling loss must not stack: quality-SLO
        # requests route whole even above partition_min_n
        router = make_router()
        data = unique_data(PARTITIONED_N, "float32", seed=17)
        outcome = serve_one(router, data, 32, slo=(None, 0.9))
        assert not outcome.algo.startswith("cluster:")
        assert outcome.ok

    def test_approx_never_aliases_exact(self):
        # same payload, one exact and one quality-SLO request: the exact
        # answer must stay byte-identical to topk() (no cache bleed from
        # the approximate tier), and the approx outcome must be marked
        data = unique_data(PARTITIONED_N, "float32", seed=19)
        single = topk(data, 32, largest=True)
        router = make_router()
        router.run(
            [
                Request(
                    rid=0,
                    data=data,
                    k=32,
                    largest=True,
                    arrival_s=0.0,
                    slo=(None, 0.9),
                ),
                Request(rid=1, data=data, k=32, largest=True, arrival_s=0.5),
                Request(
                    rid=2,
                    data=data,
                    k=32,
                    largest=True,
                    arrival_s=1.0,
                    slo=(None, 0.9),
                ),
            ]
        )
        approx_a, exact, approx_b = router.outcomes
        assert exact.exact and exact.status == "served"
        assert np.array_equal(exact.values, single.values)
        assert np.array_equal(exact.indices, single.indices)
        for approx in (approx_a, approx_b):
            assert approx.ok
            if not approx.exact:
                assert approx.recall_bound is not None
                assert 0.0 < approx.recall_bound <= 1.0


# --------------------------------------------------------------------------- #
# config validation + observability surface
# --------------------------------------------------------------------------- #
class TestClusterConfig:
    def test_rejects_bad_topologies(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, replication=3)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=4, replication=2, dispatch_replicas=3)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=4, quorum_f=4)
        with pytest.raises(ValueError):
            ClusterConfig(placement="nearest")
        with pytest.raises(ValueError):
            ClusterConfig(fault_epoch_s=0.0)


class TestClusterObservability:
    def test_reports_validate_at_node_and_cluster_level(self):
        from repro.obs import validate_serve_report

        router = make_router(nodes=2)
        data = unique_data(PARTITIONED_N, "float32", seed=23)
        serve_one(router, data, 16)
        reports = router.node_reports()
        assert len(reports) == 2
        for node_id, report in enumerate(reports):
            validate_serve_report(report)
            assert report["config"]["node"] == node_id
        cluster = router.cluster_report(config={"suite": "test"})
        validate_serve_report(cluster)
        assert cluster["config"]["nodes"] == 2
        assert cluster["totals"]["requests"] == 1
        assert cluster["totals"]["availability"] == 1.0

    def test_stats_feed_capacity_from_bottleneck(self):
        router = make_router()
        data = unique_data(PARTITIONED_N, "float32", seed=29)
        serve_one(router, data, 16)
        stats = router.stats
        assert len(stats.node_busy_s) == 4
        assert stats.bottleneck_busy_s == max(stats.node_busy_s)
        assert stats.capacity_rps > 0
