"""Cross-validation: fast queue emulation vs the lockstep ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos.lockstep import lockstep_queue_select
from repro.algos.queue_common import SENTINEL, emulate_queue_select
from repro.primitives import encode


def both(keys_1d, k, mode, queue_len):
    fast = emulate_queue_select(
        keys_1d[None, :], k, lanes=32, mode=mode, queue_len=queue_len
    )
    slow_keys, slow_idx, slow_stats = lockstep_queue_select(
        keys_1d, k, mode=mode, queue_len=queue_len
    )
    return fast, (slow_keys, slow_idx, slow_stats)


class TestResultEquivalence:
    @pytest.mark.parametrize("mode,queue_len", [("shared", 32), ("thread", 2)])
    @pytest.mark.parametrize("n", [5, 32, 100, 1000, 5000])
    def test_same_topk(self, rng, mode, queue_len, n):
        keys = encode(rng.standard_normal(n).astype(np.float32))
        k = max(1, n // 7)
        fast, (slow_keys, slow_idx, _) = both(keys, k, mode, queue_len)
        assert np.array_equal(np.sort(fast.keys[0]), np.sort(slow_keys))
        # both index sets point at the claimed keys
        real = slow_keys != SENTINEL
        assert np.array_equal(keys[slow_idx[real]], slow_keys[real])

    def test_lockstep_matches_oracle(self, rng):
        keys = encode(rng.standard_normal(3000).astype(np.float32))
        slow_keys, _, _ = lockstep_queue_select(keys, 64, mode="shared", queue_len=32)
        assert np.array_equal(slow_keys, np.sort(keys)[:64])


class TestEventCountFidelity:
    @pytest.mark.parametrize("mode,queue_len", [("shared", 32), ("thread", 2)])
    def test_insert_counts_bracket(self, rng, mode, queue_len):
        """The fast path's per-chunk threshold lags the lockstep one, so it
        may count more qualified inserts — never fewer."""
        keys = encode(rng.standard_normal(20000).astype(np.float32))
        fast, (_, _, slow_stats) = both(keys, 128, mode, queue_len)
        assert fast.stats.inserts >= slow_stats.inserts
        # and the overcount is bounded (chunks adapt): within 2x + warmup
        assert fast.stats.inserts <= 2 * slow_stats.inserts + 4 * 128

    @pytest.mark.parametrize("mode,queue_len", [("shared", 32), ("thread", 2)])
    def test_flush_counts_close(self, rng, mode, queue_len):
        keys = encode(rng.standard_normal(20000).astype(np.float32))
        fast, (_, _, slow_stats) = both(keys, 128, mode, queue_len)
        assert fast.stats.flushes >= slow_stats.flushes - 1
        assert fast.stats.flushes <= 2 * slow_stats.flushes + 8

    def test_rounds_identical(self, rng):
        keys = encode(rng.standard_normal(999).astype(np.float32))
        fast, (_, _, slow_stats) = both(keys, 16, "shared", 32)
        assert fast.stats.rounds == slow_stats.rounds

    def test_shared_flushes_follow_insert_arithmetic(self, rng):
        """Lockstep shared-queue flushes are exactly floor(inserts/32) or
        one fewer (the final partial queue drains without a flush)."""
        keys = encode(rng.standard_normal(8000).astype(np.float32))
        _, _, stats = lockstep_queue_select(keys, 64, mode="shared", queue_len=32)
        assert stats.flushes in (stats.inserts // 32, stats.inserts // 32 - 1)


class TestLockstepValidation:
    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            lockstep_queue_select(
                np.zeros((2, 4), np.uint32), 1, mode="shared", queue_len=32
            )

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            lockstep_queue_select(
                np.zeros(4, np.uint32), 1, mode="heap", queue_len=32
            )

    def test_rejects_bad_queue(self):
        with pytest.raises(ValueError):
            lockstep_queue_select(
                np.zeros(4, np.uint32), 1, mode="shared", queue_len=0
            )

    def test_rejects_sub_warp_shared_queue(self):
        """A shared queue below warp size could need two flushes per round
        — outside the two-step insertion's design domain (Fig. 5)."""
        with pytest.raises(ValueError):
            lockstep_queue_select(
                np.zeros(64, np.uint32), 1, mode="shared", queue_len=8
            )


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=600),
    st.integers(min_value=1, max_value=100),
    st.sampled_from([("shared", 32), ("shared", 64), ("thread", 2), ("thread", 4)]),
    st.integers(min_value=0, max_value=2**31),
)
def test_lockstep_and_fast_agree_property(n, k_raw, discipline, seed):
    mode, queue_len = discipline
    rng = np.random.default_rng(seed)
    k = 1 + (k_raw - 1) % n
    keys = encode(rng.standard_normal(n).astype(np.float32))
    fast, (slow_keys, _, _) = both(keys, k, mode, queue_len)
    assert np.array_equal(np.sort(fast.keys[0]), np.sort(slow_keys))
