"""Tests for the output verifier itself (it must catch broken outputs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import check_topk, oracle_topk_values


@pytest.fixture
def data(rng):
    return rng.standard_normal(100).astype(np.float32)


def good(data, k=5, largest=False):
    values = oracle_topk_values(data, k, largest=largest)
    order = np.argsort(data if not largest else -data, kind="stable")[:k]
    return values, order


class TestOracle:
    def test_smallest(self, data):
        assert np.array_equal(oracle_topk_values(data, 3), np.sort(data)[:3])

    def test_largest(self, data):
        assert np.array_equal(
            oracle_topk_values(data, 3, largest=True), np.sort(data)[::-1][:3]
        )

    def test_nan_policy(self):
        x = np.array([1.0, np.nan, -1.0], dtype=np.float32)
        assert np.array_equal(oracle_topk_values(x, 2), [-1.0, 1.0])
        assert np.array_equal(oracle_topk_values(x, 2, largest=True), [1.0, -1.0])

    def test_batched(self, rng):
        x = rng.standard_normal((3, 50)).astype(np.float32)
        out = oracle_topk_values(x, 4)
        assert out.shape == (3, 4)
        for row in range(3):
            assert np.array_equal(out[row], np.sort(x[row])[:4])

    def test_k_validation(self, data):
        with pytest.raises(ValueError):
            oracle_topk_values(data, 0)
        with pytest.raises(ValueError):
            oracle_topk_values(data, 101)


class TestCheckTopkAccepts:
    def test_valid_output(self, data):
        values, indices = good(data)
        check_topk(data, values, indices)

    def test_any_tie_breaking(self):
        data = np.array([1.0, 0.0, 0.0, 0.0, 2.0], dtype=np.float32)
        # either duplicate index set is fine
        check_topk(data, np.float32([0.0, 0.0]), np.array([1, 2]))
        check_topk(data, np.float32([0.0, 0.0]), np.array([3, 1]))

    def test_unsorted_output_ok(self, data):
        values, indices = good(data, 5)
        check_topk(data, values[::-1].copy(), indices[::-1].copy())

    def test_nan_values_match(self):
        data = np.array([np.nan, np.nan, 1.0], dtype=np.float32)
        check_topk(data, np.float32([1.0, np.nan, np.nan]), np.array([2, 0, 1]))


class TestCheckTopkRejects:
    def test_wrong_values(self, data):
        values, indices = good(data)
        bad = values.copy()
        bad[0] = 1e9
        with pytest.raises(AssertionError):
            check_topk(data, bad, indices)

    def test_not_the_smallest(self, data):
        """values/indices are internally consistent but not the top-k."""
        order = np.argsort(data, kind="stable")
        indices = order[1:6]  # skipped the minimum
        with pytest.raises(AssertionError):
            check_topk(data, data[indices], indices)

    def test_duplicate_indices(self, data):
        values, indices = good(data)
        indices = indices.copy()
        indices[1] = indices[0]
        values = values.copy()
        values[1] = values[0]
        with pytest.raises(AssertionError):
            check_topk(data, values, indices)

    def test_index_out_of_range(self, data):
        values, indices = good(data)
        indices = indices.copy()
        indices[0] = 100
        with pytest.raises(AssertionError):
            check_topk(data, values, indices)

    def test_negative_index(self, data):
        values, indices = good(data)
        indices = indices.copy()
        indices[0] = -1
        with pytest.raises(AssertionError):
            check_topk(data, values, indices)

    def test_values_not_at_indices(self, data):
        values, indices = good(data)
        with pytest.raises(AssertionError):
            check_topk(data, values + 1.0, indices)

    def test_wrong_direction(self, data):
        values, indices = good(data, largest=False)
        with pytest.raises(AssertionError):
            check_topk(data, values, indices, largest=True)

    def test_shape_mismatch(self, data):
        values, indices = good(data)
        with pytest.raises(AssertionError):
            check_topk(data, values[:4], indices)

    def test_batch_mismatch(self, rng):
        data = rng.standard_normal((2, 10)).astype(np.float32)
        with pytest.raises(AssertionError):
            check_topk(data, np.zeros((3, 2), np.float32), np.zeros((3, 2), np.int64))
