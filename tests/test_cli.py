"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _size, _size_range, build_parser, main


class TestParsing:
    def test_size_plain(self):
        assert _size("1024") == 1024

    def test_size_power(self):
        assert _size("2^20") == 1 << 20
        assert _size("10^3") == 1000

    def test_size_range_powers(self):
        assert _size_range("2^3:2^6") == [8, 16, 32, 64]

    def test_size_range_list(self):
        assert _size_range("8,100,2^10") == [8, 100, 1024]

    def test_size_range_invalid(self):
        with pytest.raises(Exception):
            _size_range("2^6:2^3")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topk", "--algo", "turbo"])


class TestCommands:
    def test_topk(self, capsys):
        assert main(["topk", "--n", "2^14", "--k", "32"]) == 0
        out = capsys.readouterr().out
        assert "air_topk" in out
        assert "simulated time" in out
        assert "first results" in out

    def test_topk_largest_with_sol_and_timeline(self, capsys):
        code = main(
            [
                "topk",
                "--n",
                "2^14",
                "--k",
                "8",
                "--largest",
                "--sol",
                "--timeline",
                "--algo",
                "grid_select",
                "--gpu",
                "A10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "largest 8" in out
        assert "Speed of Light" in out
        assert "timeline" in out

    def test_topk_scaled_mode(self, capsys):
        assert main(["topk", "--n", "2^26", "--k", "64", "--cap", "2^16"]) == 0
        assert "[scaled mode]" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--n", "2^13", "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        for algo in ("air_topk", "grid_select", "sort", "warp_select"):
            assert algo in out

    def test_compare_marks_unsupported(self, capsys):
        assert main(["compare", "--n", "2^13", "--k", "4096"]) == 0
        out = capsys.readouterr().out
        assert "-" in out  # warp/block/grid/bitonic unsupported at k=4096

    def test_sweep_n(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--vary",
                    "n",
                    "--k",
                    "32",
                    "--points",
                    "2^12:2^16",
                    "--cap",
                    "2^16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "o=air_topk" in out
        assert "2^12" in out and "2^16" in out

    def test_sweep_k(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--vary",
                    "k",
                    "--n",
                    "2^14",
                    "--points",
                    "8,64,512",
                    "--cap",
                    "2^15",
                ]
            )
            == 0
        )
        assert "K" in capsys.readouterr().out

    def test_table2_reduced(self, capsys):
        assert main(["table2", "--cap", "2^14"]) == 0
        out = capsys.readouterr().out
        assert "AIR vs Radix" in out
        assert "adversarial" in out
