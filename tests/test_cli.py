"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _size, _size_range, build_parser, main


class TestParsing:
    def test_size_plain(self):
        assert _size("1024") == 1024

    def test_size_power(self):
        assert _size("2^20") == 1 << 20
        assert _size("10^3") == 1000

    def test_size_range_powers(self):
        assert _size_range("2^3:2^6") == [8, 16, 32, 64]

    def test_size_range_list(self):
        assert _size_range("8,100,2^10") == [8, 100, 1024]

    def test_size_range_invalid(self):
        with pytest.raises(Exception):
            _size_range("2^6:2^3")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parser_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topk", "--algo", "turbo"])


class TestCommands:
    def test_topk(self, capsys):
        assert main(["topk", "--n", "2^14", "--k", "32"]) == 0
        out = capsys.readouterr().out
        assert "air_topk" in out
        assert "simulated time" in out
        assert "first results" in out

    def test_topk_largest_with_sol_and_timeline(self, capsys):
        code = main(
            [
                "topk",
                "--n",
                "2^14",
                "--k",
                "8",
                "--largest",
                "--sol",
                "--timeline",
                "--algo",
                "grid_select",
                "--gpu",
                "A10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "largest 8" in out
        assert "Speed of Light" in out
        assert "timeline" in out

    def test_topk_scaled_mode(self, capsys):
        assert main(["topk", "--n", "2^26", "--k", "64", "--cap", "2^16"]) == 0
        assert "[scaled mode]" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--n", "2^13", "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        for algo in ("air_topk", "grid_select", "sort", "warp_select"):
            assert algo in out

    def test_compare_marks_unsupported(self, capsys):
        assert main(["compare", "--n", "2^13", "--k", "4096"]) == 0
        out = capsys.readouterr().out
        assert "-" in out  # warp/block/grid/bitonic unsupported at k=4096

    def test_sweep_n(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--vary",
                    "n",
                    "--k",
                    "32",
                    "--points",
                    "2^12:2^16",
                    "--cap",
                    "2^16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "o=air_topk" in out
        assert "2^12" in out and "2^16" in out

    def test_sweep_k(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--vary",
                    "k",
                    "--n",
                    "2^14",
                    "--points",
                    "8,64,512",
                    "--cap",
                    "2^15",
                ]
            )
            == 0
        )
        assert "K" in capsys.readouterr().out

    def test_table2_reduced(self, capsys):
        assert main(["table2", "--cap", "2^14"]) == 0
        out = capsys.readouterr().out
        assert "AIR vs Radix" in out
        assert "adversarial" in out


class TestLoggingFlags:
    def test_verbose_and_quiet_accepted_everywhere(self):
        parser = build_parser()
        for cmd in ("topk", "compare", "sweep", "auto", "table2"):
            args = parser.parse_args([cmd, "-v"])
            assert args.verbose == 1
            args = parser.parse_args([cmd, "-q"])
            assert args.quiet is True

    def test_quiet_suppresses_status_lines(self, capsys):
        assert main(["topk", "--n", "2^13", "--k", "8", "-q"]) == 0
        captured = capsys.readouterr()
        assert "air_topk" in captured.out  # results still on stdout
        assert captured.err == ""  # INFO status lines silenced

    def test_progress_goes_through_logging(self, capsys):
        assert (
            main(
                ["sweep", "--vary", "k", "--n", "2^13", "--points", "8,16",
                 "--cap", "2^14", "--progress"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "INFO" in err and "air_topk" in err


class TestTelemetryFlags:
    def test_topk_trace_writes_valid_tef(self, tmp_path):
        import json

        from repro import obs

        trace = tmp_path / "topk.json"
        assert (
            main(["topk", "--n", "2^13", "--k", "8", "--trace", str(trace)]) == 0
        )
        payload = json.loads(trace.read_text())
        obs.validate_trace(payload)
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert any(e["cat"].startswith("sim.") for e in xs)  # device streams
        assert any(e["cat"] == "point" for e in xs)  # host span
        for e in xs:
            assert {"ph", "ts", "dur", "pid", "tid", "name"} <= e.keys()

    def test_sweep_writes_trace_metrics_and_manifest(self, tmp_path):
        import json

        from repro import obs

        trace = tmp_path / "out.json"
        metrics = tmp_path / "metrics.json"
        csv = tmp_path / "sweep.csv"
        code = main(
            ["sweep", "--vary", "k", "--n", "2^13", "--points", "8,64",
             "--cap", "2^14", "--workers", "2",
             "--trace", str(trace), "--metrics", str(metrics),
             "--csv", str(csv)]
        )
        assert code == 0
        trace_payload = json.loads(trace.read_text())
        obs.validate_trace(trace_payload)
        lanes = {
            e["args"]["name"]
            for e in trace_payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "host" in lanes  # worker lanes group under the host process
        assert any(lane.startswith("sim ") for lane in lanes)
        metrics_payload = json.loads(metrics.read_text())
        obs.validate_metrics(metrics_payload)
        counter_names = {c["name"] for c in metrics_payload["counters"]}
        assert "sweep.points" in counter_names
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        obs.validate_manifest(manifest)
        assert manifest["command"] == "sweep"
        assert manifest["artifacts"]["trace"] == "out.json"
        assert manifest["artifacts"]["metrics"] == "metrics.json"
        assert csv.exists()


class TestServeBenchCommand:
    def test_serve_bench_prints_report(self, capsys):
        code = main(
            ["serve-bench", "--qps", "300", "--duration", "0.5",
             "--n", "2^12", "--k", "16", "--algo", "sort", "-q"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for needle in ("p50", "p95", "p99", "served=", "shed=", "timeout=",
                       "speedup"):
            assert needle in out

    def test_serve_bench_writes_valid_manifest(self, tmp_path, capsys):
        import json

        from repro import obs

        metrics = tmp_path / "metrics.json"
        code = main(
            ["serve-bench", "--qps", "300", "--duration", "0.5",
             "--n", "2^12", "--k", "16", "--algo", "sort",
             "--out", str(tmp_path), "--metrics", str(metrics), "-q"]
        )
        assert code == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        obs.validate_manifest(manifest)
        assert manifest["command"] == "serve-bench"
        assert manifest["grid"]["total_points"] == manifest["status"]["ok"]
        assert manifest["config"]["served"] > 0
        metrics_payload = json.loads(metrics.read_text())
        obs.validate_metrics(metrics_payload)
        names = {c["name"] for c in metrics_payload["counters"]}
        assert "serve.requests" in names

    def test_serve_bench_sharded_and_deadline(self, capsys):
        code = main(
            ["serve-bench", "--qps", "300", "--duration", "0.5",
             "--n", "2^16", "--k", "16", "--shards", "4",
             "--deadline-ms", "100", "-q"]
        )
        assert code == 0
        assert "served=" in capsys.readouterr().out

    def test_serve_bench_faults_reports_availability(self, tmp_path, capsys):
        import json

        from repro import obs
        from repro.faults import FaultPlan, FaultRule

        plan_path = FaultPlan(
            seed=42,
            rules=(
                FaultRule(kind="shard_failure", rate=0.05),
                FaultRule(kind="straggler", rate=0.05, factor=5.0),
            ),
        ).save(tmp_path / "plan.json")
        code = main(
            ["serve-bench", "--qps", "200", "--duration", "1",
             "--shards", "4", "--faults", str(plan_path),
             "--out", str(tmp_path), "-q"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "availability:" in out and "faults:" in out
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        obs.validate_manifest(manifest)
        cfg = manifest["config"]
        assert cfg["faults_plan"] == "plan.json"
        assert cfg["availability"] >= 0.99  # the PR acceptance bar
        assert sum(cfg["faults_injected"].values()) >= 1
        assert {"degraded", "failed", "retries", "hedges"} <= set(cfg)

    def test_serve_bench_rejects_invalid_fault_plan(self, tmp_path):
        from repro.obs.schema import SchemaError

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.faults.plan/v1", "seed": 0}')
        with pytest.raises(SchemaError):
            main(["serve-bench", "--duration", "0.1",
                  "--faults", str(bad), "-q"])


class TestDriftCommand:
    def test_drift_reports_per_algorithm(self, tmp_path, capsys):
        csv = tmp_path / "s.csv"
        assert (
            main(["sweep", "--vary", "k", "--n", "2^13", "--points", "8,64",
                  "--cap", "2^14", "--csv", str(csv), "-q"])
            == 0
        )
        capsys.readouterr()
        assert main(["drift", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out and "rmse" in out
        assert "air_topk" in out

    def test_drift_rejects_non_sweep_csv(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        assert main(["drift", str(bad)]) == 1


class TestInspectCommand:
    def test_inspect_all_artifact_kinds(self, tmp_path, capsys):
        csv = tmp_path / "s.csv"
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert (
            main(["sweep", "--vary", "k", "--n", "2^13", "--points", "8",
                  "--cap", "2^14", "--csv", str(csv),
                  "--trace", str(trace), "--metrics", str(metrics), "-q"])
            == 0
        )
        capsys.readouterr()
        assert main(["inspect", str(csv)]) == 0
        assert "status" in capsys.readouterr().out
        assert main(["inspect", str(trace)]) == 0
        assert "spans" in capsys.readouterr().out
        assert main(["inspect", str(metrics)]) == 0
        assert "metric" in capsys.readouterr().out
        assert main(["inspect", str(tmp_path / "manifest.json")]) == 0
        assert "sweep" in capsys.readouterr().out

    def test_inspect_unknown_file(self, tmp_path):
        other = tmp_path / "x.json"
        other.write_text("{}")
        assert main(["inspect", str(other)]) == 1
