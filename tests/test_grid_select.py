"""Behavioural tests for GridSelect and its streaming interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GridSelect, GridSelectStream, check_topk, topk
from repro.device import A100, A10, Device
from repro.verify import oracle_topk_values


class TestMultiBlock:
    def test_block_count_scales_with_n(self):
        gs = GridSelect()
        small = gs.num_blocks(A100, 1 << 12)
        large = gs.num_blocks(A100, 1 << 26)
        assert small == 1
        assert large == 2 * A100.sm_count  # capped at two waves

    def test_block_count_scales_with_device(self):
        gs = GridSelect()
        assert gs.num_blocks(A10, 1 << 30) == 2 * A10.sm_count

    def test_single_block_skips_merge_kernel(self, rng):
        data = rng.standard_normal(2048).astype(np.float32)
        r = topk(data, 16, algo="grid_select")
        names = [e.name for e in r.device.timeline.stream_events("gpu")]
        assert "GridSelectMerge" not in names
        assert r.device.counters.kernel_launches == 1

    def test_multi_block_has_merge_kernel(self, rng):
        data = rng.standard_normal(1 << 17).astype(np.float32)
        r = topk(data, 16, algo="grid_select")
        names = [e.name for e in r.device.timeline.stream_events("gpu")]
        assert "GridSelectMerge" in names

    def test_correct_across_block_boundaries(self, rng):
        """Winners concentrated in one slice must survive the merge."""
        data = rng.standard_normal(1 << 17).astype(np.float32) + 10
        data[5000:5100] = -np.arange(100, dtype=np.float32)  # all in one slice
        r = topk(data, 100, algo="grid_select")
        check_topk(data, r.values, r.indices)
        assert set(r.indices.tolist()) == set(range(5000, 5100))

    def test_winners_spread_across_all_slices(self, rng):
        data = rng.standard_normal(1 << 17).astype(np.float32)
        r = topk(data, 500, algo="grid_select")
        check_topk(data, r.values, r.indices)


class TestQueueAblation:
    def test_thread_queue_variant_correct(self, rng):
        data = rng.standard_normal(1 << 15).astype(np.float32)
        r = topk(data, 100, algo="grid_select", params={"queue": "thread"})
        check_topk(data, r.values, r.indices)

    def test_shared_queue_faster_at_scale(self):
        """Fig. 11: the shared queue wins once the input is large."""
        from repro.perf import simulate_topk

        shared = simulate_topk(
            "grid_select", distribution="uniform", n=1 << 26, k=256
        )
        thread = simulate_topk(
            "grid_select", distribution="uniform", n=1 << 26, k=256, queue="thread"
        )
        assert 1.0 < thread.time / shared.time < 2.0

    def test_invalid_queue_mode(self):
        with pytest.raises(ValueError):
            GridSelect(queue="register")


class TestGridSelectStream:
    def test_matches_batch_result(self, rng):
        data = rng.standard_normal(50000).astype(np.float32)
        stream = GridSelectStream(64)
        for chunk in np.array_split(data, 13):
            stream.push(chunk)
        values, indices = stream.topk()
        assert np.array_equal(values, oracle_topk_values(data, 64))
        assert np.array_equal(data[indices], values)

    def test_largest_mode(self, rng):
        data = rng.standard_normal(10000).astype(np.float32)
        stream = GridSelectStream(32, largest=True)
        stream.push(data)
        values, indices = stream.topk()
        assert np.array_equal(values, oracle_topk_values(data, 32, largest=True))

    def test_intermediate_results_valid(self, rng):
        """On-the-fly property: the structure holds the top-k of everything
        seen so far at any point (the WarpSelect merit GridSelect keeps)."""
        data = rng.standard_normal(9000).astype(np.float32)
        stream = GridSelectStream(16)
        seen = 0
        for chunk in np.array_split(data, 9):
            stream.push(chunk)
            seen += len(chunk)
            values, _ = stream.topk()
            assert np.array_equal(values, oracle_topk_values(data[:seen], 16))

    def test_indices_are_global_positions(self, rng):
        data = rng.standard_normal(5000).astype(np.float32)
        data[4321] = -100.0
        stream = GridSelectStream(1)
        for chunk in np.array_split(data, 7):
            stream.push(chunk)
        _, indices = stream.topk()
        assert indices[0] == 4321

    def test_count_seen(self, rng):
        stream = GridSelectStream(4)
        stream.push(rng.standard_normal(100).astype(np.float32))
        stream.push(np.array([], dtype=np.float32))
        stream.push(rng.standard_normal(50).astype(np.float32))
        assert stream.count_seen == 150

    def test_underfilled_raises(self, rng):
        stream = GridSelectStream(10)
        stream.push(rng.standard_normal(5).astype(np.float32))
        with pytest.raises(ValueError):
            stream.topk()

    def test_device_accounts_chunks(self, rng):
        dev = Device(A100)
        stream = GridSelectStream(8, device=dev)
        for _ in range(5):
            stream.push(rng.standard_normal(1000).astype(np.float32))
        assert dev.counters.kernel_launches == 5
        assert dev.counters.bytes_read == pytest.approx(5 * 1000 * 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSelectStream(0)
        with pytest.raises(ValueError):
            GridSelectStream(4096)
        stream = GridSelectStream(4)
        with pytest.raises(ValueError):
            stream.push(np.zeros((2, 2), dtype=np.float32))

    def test_nan_never_preferred_in_stream(self, rng):
        data = rng.standard_normal(1000).astype(np.float32)
        data[::11] = np.nan
        for largest in (False, True):
            stream = GridSelectStream(8, largest=largest)
            stream.push(data)
            values, _ = stream.topk()
            assert not np.any(np.isnan(values))
