"""End-to-end integration tests across subsystem boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GridSelectStream, check_topk, topk
from repro.bench import sweep, table2
from repro.datagen import deep1b_like, distance_array, generate, sift_like
from repro.device import A10, A100, H100, Device
from repro.perf import simulate_topk, sol_report


class TestTimelineFig8Shape:
    """The Fig. 8 contrast: host-coordinated vs iteration-fused timelines."""

    N = 1 << 20
    K = 2048

    @pytest.fixture(scope="class")
    def runs(self):
        data = generate("uniform", self.N, seed=8)[0]
        radix = topk(data, self.K, algo="radix_select")
        air = topk(data, self.K, algo="air_topk")
        return radix, air

    def test_radix_has_pcie_events(self, runs):
        radix, _ = runs
        assert len(radix.device.timeline.stream_events("pcie_d2h")) >= 2
        assert len(radix.device.timeline.stream_events("pcie_h2d")) >= 2

    def test_air_has_no_pcie_events(self, runs):
        _, air = runs
        assert not air.device.timeline.stream_events("pcie_d2h")
        assert not air.device.timeline.stream_events("pcie_h2d")

    def test_radix_gpu_gaps_dominate_airs(self, runs):
        """The 'white spaces' of Fig. 8: RadixSelect leaves the GPU idle
        between kernels while the host round-trips; AIR keeps it busy."""
        radix, air = runs
        radix_idle = sum(b - a for a, b in radix.device.timeline.idle_gaps("gpu"))
        air_idle = sum(b - a for a, b in air.device.timeline.idle_gaps("gpu"))
        assert radix_idle > 10 * max(air_idle, 1e-9)

    def test_air_faster(self, runs):
        radix, air = runs
        assert radix.time / air.time > 2.0

    def test_render_produces_text(self, runs):
        radix, air = runs
        assert "pcie_d2h" in radix.device.timeline.render()
        assert "gpu" in air.device.timeline.render()


class TestTable3Shape:
    """Per-kernel SOL structure of AIR at large N (paper Table 3)."""

    def test_fused_kernels_dominate_and_are_memory_bound(self):
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 30, k=2048, cap=1 << 20
        )
        rows = {r.name: r for r in sol_report(run.device)}
        k1 = rows["iteration_fused_kernel(1)"]
        k2 = rows["iteration_fused_kernel(2)"]
        k3 = rows["iteration_fused_kernel(3)"]
        last = rows["last_filter_kernel"]
        # the two big passes take nearly all the time, split about evenly
        assert k1.time_fraction + k2.time_fraction > 0.9
        assert abs(k1.time_fraction - k2.time_fraction) < 0.2
        assert k3.time_fraction < 0.05 and last.time_fraction < 0.05
        # both near the memory roofline, compute well below it
        for k in (k1, k2):
            assert k.memory_sol > 0.75
            assert 0.1 < k.compute_sol < k.memory_sol


class TestDeviceScalingFig12Shape:
    def test_air_tracks_memory_bandwidth(self):
        times = {}
        for spec in (A100, H100, A10):
            run = simulate_topk(
                "air_topk", distribution="uniform", n=1 << 28, k=2048, spec=spec
            )
            times[spec.name] = run.time
        assert times["H100"] < times["A100"] < times["A10"]
        # paper Sec. 5.4: ~2x H100 over A100, ~3x A100 over A10
        assert 1.6 < times["A100"] / times["H100"] < 2.6
        assert 2.0 < times["A10"] / times["A100"] < 3.5

    def test_gridselect_crossover_moves_with_device(self):
        """Paper Fig. 12: GridSelect wins to higher K on A10 than on A100."""

        def crossover(spec):
            for k in (32, 64, 128, 256, 512, 1024, 2048):
                air = simulate_topk(
                    "air_topk", distribution="uniform", n=1 << 28, k=k, spec=spec
                )
                grid = simulate_topk(
                    "grid_select", distribution="uniform", n=1 << 28, k=k, spec=spec
                )
                if air.time < grid.time:
                    return k
            return 4096

        assert crossover(A10) >= crossover(A100)


class TestAnnPipeline:
    """Sec. 5.5: distances from real-ish vector datasets feed top-k."""

    @pytest.mark.parametrize("maker", [deep1b_like, sift_like])
    def test_end_to_end(self, maker):
        ds = maker(20000, seed=11)
        dev = Device(A100)
        dists = distance_array(ds, 0, device=dev)
        r = topk(dists, 10, algo="air_topk", device=dev)
        check_topk(dists, r.values, r.indices)
        # brute-force nearest neighbours agree
        expect = np.argsort(dists, kind="stable")[:10]
        assert set(r.indices.tolist()) == set(expect.tolist())
        assert dev.counters.kernel_launches == 1 + 4  # distances + AIR

    def test_streaming_matches_offline(self):
        ds = deep1b_like(30000, seed=12)
        dists = distance_array(ds, 1)
        stream = GridSelectStream(100)
        for chunk in np.array_split(dists, 10):
            stream.push(chunk)
        values, indices = stream.topk()
        offline = topk(dists, 100, algo="grid_select")
        assert np.array_equal(np.sort(values), np.sort(offline.values))


class TestMiniBenchmarkPipeline:
    def test_sweep_to_table2(self):
        res = sweep(
            distributions=("uniform", "adversarial"),
            ns=(1 << 12, 1 << 16),
            ks=(16, 128),
            batches=(1,),
            cap=1 << 18,
        )
        rows = table2(res, batches=(1,), distributions=("uniform", "adversarial"))
        assert len(rows) == 2
        for row in rows:
            assert row.air_vs_radix.low > 1.0
            assert row.grid_vs_block.points > 0

    def test_exact_points_verify(self):
        """Exact-mode sweep results carry verifiable outputs."""
        from repro.perf import simulate_topk

        run = simulate_topk("grid_select", distribution="normal", n=1 << 14, k=100)
        assert run.mode == "exact"
        data = generate("normal", 1 << 14, seed=0)
        check_topk(data, run.result.values, run.result.indices)
