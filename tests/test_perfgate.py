"""Tests for the perf-gate harness (``repro.bench.perfgate``).

The gate's job is to catch a de-fused hot path: a wall-clock regression on
a pinned workload grid, measured against the previous ``BENCH_*.json``
snapshot.  These tests pin the snapshot schema, the baseline discovery,
and — the part that must never silently rot — that the comparator actually
flags an artificially slowed run and passes an identical one.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.bench import perfgate
from repro.obs.schema import SchemaError, validate


def _snapshot(cells, rev="abc1234"):
    return {
        "schema": perfgate.SCHEMA_ID,
        "rev": rev,
        "gpu": "A100",
        "repeats": 1,
        "seed": 0,
        "cells": cells,
    }


def _cell(algo="air_topk", n=4096, k=16, batch=8, hot=True, sim=1e-4, wall=0.01):
    return {
        "algo": algo,
        "n": n,
        "k": k,
        "batch": batch,
        "hot": hot,
        "sim_time_s": sim,
        "wall_s": wall,
    }


class TestSnapshotRoundTrip:
    def test_collect_validate_write_load(self, tmp_path):
        snap = perfgate.collect_snapshot(
            perfgate.TINY_GRID, repeats=1, rev="deadbee"
        )
        validate(snap, perfgate.SNAPSHOT_SCHEMA)  # already validated inside
        assert len(snap["cells"]) == len(perfgate.TINY_GRID)
        for cell in snap["cells"]:
            assert cell["sim_time_s"] > 0
            assert cell["wall_s"] > 0
        path = perfgate.write_snapshot(snap, tmp_path)
        assert path.name == "BENCH_deadbee.json"
        assert perfgate.load_snapshot(path) == snap

    def test_fused_cells_report_speedup(self):
        snap = perfgate.collect_snapshot(
            (perfgate.GateCell("bucket_select", 512, 8, 4),),
            repeats=1,
            rev="local",
        )
        cell = snap["cells"][0]
        assert cell["wall_unfused_s"] > 0
        assert cell["fused_speedup"] == pytest.approx(
            cell["wall_unfused_s"] / cell["wall_s"]
        )

    def test_invalid_snapshot_rejected(self, tmp_path):
        snap = _snapshot([_cell()])
        del snap["cells"][0]["wall_s"]
        with pytest.raises(SchemaError):
            perfgate.write_snapshot(snap, tmp_path)
        good = _snapshot([_cell()])
        path = perfgate.write_snapshot(good, tmp_path)
        corrupted = json.loads(path.read_text())
        corrupted["schema"] = "something/else"
        path.write_text(json.dumps(corrupted))
        with pytest.raises(SchemaError):
            perfgate.load_snapshot(path)

    def test_find_baseline_prefers_newest_and_excludes(self, tmp_path):
        old = perfgate.write_snapshot(_snapshot([_cell()], rev="old0000"), tmp_path)
        time.sleep(0.01)
        new = perfgate.write_snapshot(_snapshot([_cell()], rev="new0000"), tmp_path)
        assert perfgate.find_baseline(tmp_path) == new
        assert perfgate.find_baseline(tmp_path, exclude=new) == old
        assert perfgate.find_baseline(tmp_path / "empty") is None


class TestComparator:
    def test_identical_snapshots_pass(self):
        base = _snapshot([_cell(), _cell(algo="bucket_select")])
        report = perfgate.compare_snapshots(base, base)
        assert report.ok and not report.notes

    def test_hot_wall_regression_fails(self):
        base = _snapshot([_cell(wall=0.010)])
        cur = _snapshot([_cell(wall=0.013)])  # +30% > 25% tolerance
        report = perfgate.compare_snapshots(base, cur)
        assert not report.ok
        assert "1.30x" in report.regressions[0]

    def test_tolerance_is_configurable(self):
        base = _snapshot([_cell(wall=0.010)])
        cur = _snapshot([_cell(wall=0.013)])
        assert perfgate.compare_snapshots(base, cur, tolerance=0.5).ok
        with pytest.raises(ValueError):
            perfgate.compare_snapshots(base, cur, tolerance=-0.1)

    def test_cold_cells_note_but_never_fail(self):
        base = _snapshot([_cell(hot=False, wall=0.010)])
        cur = _snapshot([_cell(hot=False, wall=0.100)])
        report = perfgate.compare_snapshots(base, cur)
        assert report.ok
        assert any("cold" in note for note in report.notes)

    def test_sim_time_drift_is_noted(self):
        base = _snapshot([_cell(sim=1e-4)])
        cur = _snapshot([_cell(sim=2e-4)])
        report = perfgate.compare_snapshots(base, cur)
        assert report.ok
        assert any("simulated time changed" in note for note in report.notes)

    def test_new_and_removed_cells_are_notes(self):
        base = _snapshot([_cell(), _cell(algo="sort")])
        cur = _snapshot([_cell(), _cell(algo="bucket_select")])
        report = perfgate.compare_snapshots(base, cur)
        assert report.ok
        assert any("new cell" in note for note in report.notes)
        assert any("removed" in note for note in report.notes)


class TestGateEndToEnd:
    """Tiny grid, run twice: identical runs pass, a monkeypatched slowdown
    in the measured path is flagged as a regression."""

    GRID = (perfgate.GateCell("air_topk", 512, 8, 4),)

    def test_identical_runs_pass(self):
        a = perfgate.collect_snapshot(self.GRID, repeats=1, rev="aaaaaaa")
        b = perfgate.collect_snapshot(self.GRID, repeats=1, rev="bbbbbbb")
        report = perfgate.compare_snapshots(a, b, tolerance=5.0)
        assert report.ok
        # simulated time is deterministic: bit-equal across runs, no notes
        assert not any("simulated" in note for note in report.notes)

    def test_slowed_run_is_flagged(self, monkeypatch):
        baseline = perfgate.collect_snapshot(self.GRID, repeats=1, rev="aaaaaaa")
        real = perfgate.simulate_topk

        def slowed(*args, **kwargs):
            time.sleep(0.05)
            return real(*args, **kwargs)

        monkeypatch.setattr(perfgate, "simulate_topk", slowed)
        slow = perfgate.collect_snapshot(self.GRID, repeats=1, rev="bbbbbbb")
        report = perfgate.compare_snapshots(baseline, slow)
        assert not report.ok
        assert len(report.regressions) == 1


class TestPerfBenchCLI:
    def test_writes_snapshot_then_gates_against_it(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "perf-bench", "--tiny", "--repeats", "1",
            "--out", str(tmp_path), "--tolerance", "10",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "no baseline snapshot found" in out
        snaps = list(tmp_path.glob("BENCH_*.json"))
        assert len(snaps) == 1
        # second run gates against the first; huge tolerance -> passes
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "perf gate: ok" in out
        assert "batch=100 fused speedup" not in out  # tiny grid has none
