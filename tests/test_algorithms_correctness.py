"""Cross-algorithm correctness: every method against the oracle.

Exercises the full roster over the paper's three distributions, both
selection directions, batched inputs, ties, special values and boundary
k — each run checked with :func:`repro.verify.check_topk`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import UnsupportedProblem, available_algorithms, check_topk, topk
from repro.datagen import generate

# the exact roster only: the approximate tier trades recall for time by
# design and is exercised against its own recall contract in
# tests/test_approx.py
ALGOS = [info.name for info in available_algorithms() if info.exact]

#: largest k each algorithm supports (None = unlimited)
MAX_K = {
    "warp_select": 2048,
    "block_select": 2048,
    "grid_select": 2048,
    "bitonic_topk": 256,
}


def supported(algo: str, k: int) -> bool:
    cap = MAX_K.get(algo)
    return cap is None or k <= cap


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("distribution", ["uniform", "normal", "adversarial"])
def test_distributions(algo, distribution):
    data = generate(distribution, 6000, seed=3)[0]
    r = topk(data, 100, algo=algo)
    check_topk(data, r.values, r.indices)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("k", [1, 2, 7, 255, 256, 2048])
def test_k_values(algo, rng, k):
    if not supported(algo, k):
        pytest.skip(f"{algo} does not support k={k}")
    data = rng.standard_normal(4096).astype(np.float32)
    r = topk(data, k, algo=algo)
    check_topk(data, r.values, r.indices)


@pytest.mark.parametrize("algo", ALGOS)
def test_k_equals_n(algo, rng):
    data = rng.standard_normal(200).astype(np.float32)
    r = topk(data, 200, algo=algo)
    check_topk(data, r.values, r.indices)
    assert set(r.indices.tolist()) == set(range(200))


@pytest.mark.parametrize("algo", ALGOS)
def test_largest_mode(algo, rng):
    data = rng.standard_normal(3000).astype(np.float32)
    r = topk(data, 50, algo=algo, largest=True)
    check_topk(data, r.values, r.indices, largest=True)
    # best-first ordering: descending values
    assert np.all(np.diff(r.values) <= 0)


@pytest.mark.parametrize("algo", ALGOS)
def test_batched(algo, rng):
    data = rng.standard_normal((7, 2500)).astype(np.float32)
    r = topk(data, 64, algo=algo)
    assert r.values.shape == (7, 64)
    check_topk(data, r.values, r.indices)


@pytest.mark.parametrize("algo", ALGOS)
def test_heavy_ties(algo, rng):
    """Only 8 distinct values: the k-th value has many duplicates."""
    data = rng.choice(
        np.linspace(-1, 1, 8).astype(np.float32), size=5000
    )
    r = topk(data, 123, algo=algo)
    check_topk(data, r.values, r.indices)


@pytest.mark.parametrize("algo", ALGOS)
def test_all_equal(algo):
    data = np.full(1000, 2.5, dtype=np.float32)
    r = topk(data, 17, algo=algo)
    check_topk(data, r.values, r.indices)
    assert np.all(r.values == 2.5)


@pytest.mark.parametrize("algo", ALGOS)
def test_special_values(algo, rng):
    from .conftest import random_floats

    data = random_floats(rng, 2000, specials=True)
    for largest in (False, True):
        r = topk(data, 40, algo=algo, largest=largest)
        check_topk(data, r.values, r.indices, largest=largest)


@pytest.mark.parametrize("algo", ALGOS)
def test_nan_never_preferred(algo, rng):
    data = rng.standard_normal(500).astype(np.float32)
    data[::7] = np.nan
    r = topk(data, 10, algo=algo)
    assert not np.any(np.isnan(r.values))
    r = topk(data, 10, algo=algo, largest=True)
    assert not np.any(np.isnan(r.values))


@pytest.mark.parametrize("algo", ALGOS)
def test_nan_selected_when_forced(algo):
    data = np.array([np.nan, 1.0, np.nan, 2.0], dtype=np.float32)
    r = topk(data, 4, algo=algo)
    check_topk(data, r.values, r.indices)
    assert np.isnan(r.values[-2:]).all()  # NaNs sort last


@pytest.mark.parametrize("algo", ALGOS)
def test_negative_and_denormal(algo):
    data = np.array(
        [1e-40, -1e-40, 0.0, -0.0, 3.0, -3.0, 1e-44, -1e-44], dtype=np.float32
    )
    r = topk(data, 3, algo=algo)
    check_topk(data, r.values, r.indices)
    assert r.values[0] == -3.0


@pytest.mark.parametrize("algo", ALGOS)
def test_adversarial_narrow_range(algo):
    """The paper's radix-adversarial floats (first 20 bits identical)."""
    data = generate("adversarial", 8192, seed=9, adversarial_m=20)[0]
    r = topk(data, 77, algo=algo)
    check_topk(data, r.values, r.indices)


@pytest.mark.parametrize("algo", ALGOS)
def test_sorted_ascending_input(algo):
    data = np.arange(3000, dtype=np.float32)
    r = topk(data, 25, algo=algo)
    assert np.array_equal(r.indices, np.arange(25))


@pytest.mark.parametrize("algo", ALGOS)
def test_sorted_descending_input(algo):
    data = np.arange(3000, 0, -1).astype(np.float32)
    r = topk(data, 25, algo=algo)
    check_topk(data, r.values, r.indices)
    assert np.array_equal(np.sort(r.indices), np.arange(2975, 3000))


@pytest.mark.parametrize("algo", ALGOS)
def test_k_one(algo, rng):
    data = rng.standard_normal(777).astype(np.float32)
    r = topk(data, 1, algo=algo)
    assert r.values[0] == data.min()
    assert data[r.indices[0]] == data.min()


class TestInputValidation:
    def test_k_zero(self):
        with pytest.raises(ValueError):
            topk(np.zeros(10, dtype=np.float32), 0)

    def test_k_above_n(self):
        with pytest.raises(ValueError):
            topk(np.zeros(10, dtype=np.float32), 11)

    def test_empty_input(self):
        with pytest.raises(ValueError):
            topk(np.zeros(0, dtype=np.float32), 1)

    def test_3d_input(self):
        with pytest.raises(ValueError):
            topk(np.zeros((2, 2, 2), dtype=np.float32), 1)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            topk(np.zeros(10, dtype=np.float32), 1, algo="turbo_select")

    @pytest.mark.parametrize(
        "algo,cap", [(a, c) for a, c in MAX_K.items()]
    )
    def test_unsupported_k_raises(self, algo, cap):
        data = np.zeros(2 * cap + 2, dtype=np.float32)
        with pytest.raises(UnsupportedProblem):
            topk(data, cap + 1, algo=algo)

    def test_result_time_positive(self, rng):
        data = rng.standard_normal(100).astype(np.float32)
        r = topk(data, 5)
        assert r.time > 0
        # v2 facade dispatches through the cost model by default
        assert r.algo == "auto"
        assert topk(data, 5, algo="air_topk").algo == "air_topk"


class TestResultOrdering:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_best_first(self, algo, rng):
        data = rng.standard_normal(2222).astype(np.float32)
        r = topk(data, 33, algo=algo)
        assert np.all(np.diff(r.values) >= 0)

    def test_int_dtypes(self, rng):
        data = rng.integers(-1000, 1000, 5000).astype(np.int32)
        r = topk(data, 20, algo="air_topk")
        assert np.array_equal(r.values, np.sort(data)[:20])

    def test_float64(self, rng):
        data = rng.standard_normal(3000)
        r = topk(data, 20, algo="sort")
        assert np.array_equal(r.values, np.sort(data)[:20])
