"""Tests for the ASCII log-log plotter used by the figure benchmarks."""

from __future__ import annotations

import pytest

from repro.bench import ascii_plot, plot_sweep, sweep


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot(
            {"a": [(1, 1e-6), (10, 1e-5)], "b": [(1, 2e-6), (10, 2e-5)]},
            width=40,
            height=8,
        )
        assert "o=a" in out and "x=b" in out
        assert out.count("|") >= 16  # bordered rows

    def test_monotone_series_has_monotone_marks(self):
        out = ascii_plot({"a": [(1, 1e-6), (100, 1e-4)]}, width=30, height=10)
        rows = [line for line in out.splitlines() if line.endswith("|")]
        first_cols = [row.find("o") for row in rows if "o" in row]
        # growing series: top rows (large y) hold later x positions, so
        # marks move left as we scan down the grid
        assert first_cols == sorted(first_cols, reverse=True)

    def test_none_values_skipped(self):
        out = ascii_plot(
            {"a": [(1, 1e-6), (10, None), (100, 1e-4)]}, width=30, height=8
        )
        assert "o=a" in out

    def test_all_none_series_plot(self):
        out = ascii_plot({"a": [(1, None)]})
        assert out == "(no data to plot)"

    def test_power_of_two_axis_labels(self):
        out = ascii_plot({"a": [(1024, 1e-6), (4096, 2e-6)]}, width=30, height=6)
        assert "2^10" in out and "2^12" in out

    def test_y_formatter(self):
        out = ascii_plot(
            {"a": [(1, 1e-6), (2, 1e-3)]},
            width=20,
            height=5,
            y_formatter=lambda v: f"{v * 1e6:.0f}us",
        )
        assert "us" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": [(1, 1e-6)]}, width=4)
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 1e-6), (1, 1e-5)]})  # non-positive x

    def test_single_point(self):
        out = ascii_plot({"a": [(8, 1e-6)]}, width=20, height=5)
        assert "o" in out

    def test_many_series_legend_overflow(self):
        series = {f"s{i}": [(1, 1e-6 * (i + 1))] for i in range(15)}
        out = ascii_plot(series, width=30, height=8)
        assert "beyond mark set" in out


class TestPlotSweep:
    def test_end_to_end(self):
        res = sweep(
            algos=("air_topk", "sort"),
            distributions=("uniform",),
            ns=(1 << 12, 1 << 14, 1 << 16),
            ks=(64,),
            batches=(1,),
            cap=1 << 17,
        )
        out = plot_sweep(
            res,
            algos=("air_topk", "sort"),
            distribution="uniform",
            batch=1,
            vary="n",
            fixed={"k": 64},
        )
        assert "o=air_topk" in out and "x=sort" in out
        assert "N" in out

    def test_unsupported_series_dropped(self):
        res = sweep(
            algos=("air_topk", "bitonic_topk"),
            distributions=("uniform",),
            ns=(1 << 12,),
            ks=(512,),  # beyond bitonic's 256 cap
            batches=(1,),
            cap=1 << 14,
        )
        out = plot_sweep(
            res,
            algos=("air_topk", "bitonic_topk"),
            distribution="uniform",
            batch=1,
            vary="n",
            fixed={"k": 512},
        )
        assert "bitonic" not in out
