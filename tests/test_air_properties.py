"""Hypothesis property tests for the AIR Top-K invariants of paper Sec. 3.

Three families of invariants, checked over randomly generated problems:

* **Adaptive buffering (Sec. 3.2)** only fires when the survivor count is
  below N/alpha — never on the first pass (its candidate set is the whole
  input), and with ``adaptive=False`` on every later pass.
* **Early stopping (Sec. 3.3)** never drops a winner: once K equals the
  candidate count the remaining passes degenerate to a gather, and the
  selected multiset must match both the full-sort oracle and the
  ``early_stop=False`` run bit for bit.
* **The digit schedule** — 11-bit digits over 3 passes — covers all 32
  key bits exactly once, MSB first, and digit extraction is invertible.

Every property reads the algorithm's ``last_trace`` (one
:class:`repro.core.air_topk.PassRecord` per fused pass per row), the same
quantities the paper's figures reason about.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.air_topk import AIRTopK
from repro.primitives import digit_layout, priority_keys
from repro.verify import check_topk

settings.register_profile("air", deadline=None, max_examples=40)
settings.load_profile("air")


@st.composite
def problems(draw):
    """A (data, k) problem small enough to run hundreds of times."""
    n = draw(st.integers(min_value=8, max_value=1024))
    k = draw(st.integers(min_value=1, max_value=n))
    kind = draw(st.sampled_from(["uniform", "ties", "extremes"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        data = rng.integers(0, 2**32, n, dtype=np.uint32)
    elif kind == "ties":
        data = rng.integers(0, 4, n, dtype=np.uint32)
    else:  # extremes: clusters at both ends of the key space
        data = np.where(
            rng.random(n) < 0.5,
            rng.integers(0, 16, n),
            rng.integers(2**32 - 16, 2**32, n),
        ).astype(np.uint32)
    return data, k


class TestAdaptiveBuffering:
    @given(problems(), st.sampled_from([4.0, 16.0, 128.0]))
    def test_buffers_only_below_threshold(self, problem, alpha):
        data, k = problem
        n = data.shape[0]
        algo = AIRTopK(alpha=alpha)
        res = algo.select(data, k)
        check_topk(data, res.values, res.indices)
        assert algo.last_trace, "a run must leave a trace"
        for rec in algo.last_trace:
            if rec.pass_index == 0:
                # the first kernel's candidate set is the whole input;
                # buffering it would write all of N
                assert not rec.buffered
            elif rec.buffered:
                assert rec.candidates_in < n / alpha
            else:
                assert rec.candidates_in >= n / alpha

    @given(problems())
    def test_adaptive_off_always_buffers(self, problem):
        data, k = problem
        algo = AIRTopK(adaptive=False)
        algo.select(data, k)
        for rec in algo.last_trace:
            assert rec.buffered == (rec.pass_index > 0)

    @given(problems())
    def test_trace_bookkeeping_is_consistent(self, problem):
        """Within a row, pass p+1 consumes exactly pass p's survivors."""
        data, k = problem
        algo = AIRTopK()
        algo.select(data, k)
        by_row: dict[int, list] = {}
        for rec in algo.last_trace:
            by_row.setdefault(rec.row, []).append(rec)
        for recs in by_row.values():
            assert [r.pass_index for r in recs] == list(range(len(recs)))
            assert recs[0].candidates_in == data.shape[0]
            for prev, cur in zip(recs, recs[1:]):
                assert cur.candidates_in == prev.candidates_out
                assert cur.k_remaining <= prev.k_remaining
            for r in recs:
                assert 1 <= r.k_remaining <= r.candidates_out


class TestEarlyStopping:
    @given(problems())
    def test_never_drops_a_winner(self, problem):
        data, k = problem
        on = AIRTopK(early_stop=True)
        off = AIRTopK(early_stop=False)
        res_on = on.select(data, k)
        res_off = off.select(data, k)
        check_topk(data, res_on.values, res_on.indices)
        check_topk(data, res_off.values, res_off.indices)
        # identical selected multisets in key space (ties broken freely)
        keys_on = np.sort(priority_keys(res_on.values[None, :]))
        keys_off = np.sort(priority_keys(res_off.values[None, :]))
        assert np.array_equal(keys_on, keys_off)

    @given(problems())
    def test_stop_fires_exactly_at_k_equals_count(self, problem):
        data, k = problem
        algo = AIRTopK(early_stop=True)
        algo.select(data, k)
        for rec in algo.last_trace:
            assert rec.early_stopped == (rec.k_remaining == rec.candidates_out)

    def test_k_equals_n_stops_after_first_pass(self):
        """K = N is the degenerate case Fig. 10 highlights: everything is a
        result and the trace must show an immediate stop."""
        data = np.arange(512, dtype=np.uint32)
        algo = AIRTopK(early_stop=True)
        algo.select(data, 512)
        assert algo.last_trace[0].early_stopped


class TestDigitSchedule:
    def test_11_bit_3_pass_covers_32_bits(self):
        """The paper's configuration: 3 fused kernels cover a 32-bit key."""
        passes = digit_layout(32, 11)
        assert len(passes) == 3
        assert [(p.shift, p.width) for p in passes] == [(21, 11), (10, 11), (0, 10)]
        covered = set()
        for p in passes:
            bits = set(range(p.shift, p.shift + p.width))
            assert not covered & bits, "digit ranges must not overlap"
            covered |= bits
        assert covered == set(range(32))

    @given(
        st.sampled_from([8, 16, 32, 64]),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_layout_covers_and_reconstructs(self, width, digit_bits, value):
        digit_bits = min(digit_bits, width)
        passes = digit_layout(width, digit_bits)
        # MSB-first, contiguous, exactly covering [0, width)
        assert passes[0].shift + passes[0].width == width
        for prev, cur in zip(passes, passes[1:]):
            assert cur.shift + cur.width == prev.shift
        assert passes[-1].shift == 0
        assert sum(p.width for p in passes) == width
        # extraction is invertible: digits reassemble the key
        key = value % (1 << width)
        rebuilt = 0
        for p in passes:
            digit = (key >> p.shift) & ((1 << p.width) - 1)
            assert digit < p.num_buckets
            rebuilt |= digit << p.shift
        assert rebuilt == key

    @given(problems())
    def test_air_trace_never_exceeds_pass_count(self, problem):
        data, k = problem
        algo = AIRTopK()
        algo.select(data, k)
        rows = {rec.row for rec in algo.last_trace}
        for row in rows:
            recs = [r for r in algo.last_trace if r.row == row]
            assert len(recs) <= len(digit_layout(32, 11))
            for rec in recs:
                assert 0 <= rec.target_digit < algo.passes[rec.pass_index].num_buckets
