"""Tests for the order-preserving radix encoding and digit extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import (
    DigitPass,
    decode,
    digit_layout,
    encode,
    invert,
    key_bits,
)


class TestEncodeOrdering:
    def test_float_order_preserved(self):
        values = np.array(
            [-np.inf, -3.5, -1.0, -1e-42, -0.0, 0.0, 1e-42, 1.0, 3.5, np.inf],
            dtype=np.float32,
        )
        keys = encode(values)
        diffs = np.diff(keys.astype(np.int64))
        assert np.all(diffs >= 0)
        # -0.0 and 0.0 are distinct bit patterns but adjacent keys
        assert keys[4] < keys[5]

    def test_strictly_increasing_for_distinct_values(self):
        values = np.array([-2.0, -1.0, 0.5, 2.0], dtype=np.float32)
        keys = encode(values)
        assert np.all(np.diff(keys.astype(np.int64)) > 0)

    def test_nan_sorts_after_inf(self):
        values = np.array([np.inf, np.nan], dtype=np.float32)
        keys = encode(values)
        assert keys[1] > keys[0]

    def test_negative_nan_canonicalised(self):
        neg_nan = np.array([np.float32(np.nan)], dtype=np.float32)
        neg_nan = (-neg_nan).astype(np.float32)
        pos_nan = np.array([np.nan], dtype=np.float32)
        assert encode(neg_nan)[0] == encode(pos_nan)[0]

    def test_sentinel_unreachable(self):
        """0xFFFFFFFF is above every encodable key, in both directions."""
        extremes = np.array(
            [np.inf, -np.inf, np.nan, 0.0, -0.0, 3.4e38, -3.4e38],
            dtype=np.float32,
        )
        keys = encode(extremes)
        assert keys.max() < np.uint32(0xFFFFFFFF)
        assert invert(keys).max() < np.uint32(0xFFFFFFFF)

    def test_int32_order(self):
        values = np.array([-(2**31), -1, 0, 1, 2**31 - 1], dtype=np.int32)
        keys = encode(values)
        assert np.all(np.diff(keys.astype(np.int64)) > 0)

    def test_uint32_identity_order(self):
        values = np.array([0, 1, 2**31, 2**32 - 1], dtype=np.uint32)
        keys = encode(values)
        assert np.array_equal(keys, values)

    def test_float64_order(self):
        values = np.array([-1e300, -1.0, 0.0, 1.0, 1e300], dtype=np.float64)
        keys = encode(values)
        assert keys.dtype == np.uint64
        assert np.all(np.diff(keys.astype(object)) > 0)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            encode(np.array([1, 2], dtype=np.complex64))

    def test_invert_reverses_order(self):
        values = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        keys = invert(encode(values))
        assert np.all(np.diff(keys.astype(np.int64)) < 0)


class TestDecode:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_roundtrip(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = rng.standard_normal(256).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(
                info.min, info.max, size=256, dtype=dtype, endpoint=True
            )
        out = decode(encode(values), dtype)
        assert np.array_equal(out, values)

    def test_roundtrip_specials(self):
        values = np.array([np.inf, -np.inf, 0.0, -0.0], dtype=np.float32)
        out = decode(encode(values), np.float32)
        assert np.array_equal(out.view(np.uint32), values.view(np.uint32))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            decode(np.zeros(4, np.uint32), np.complex64)


class TestDigitLayout:
    def test_paper_configuration(self):
        """32-bit keys with 11-bit digits: 3 passes of widths 11, 11, 10."""
        passes = digit_layout(32, 11)
        assert [(p.shift, p.width) for p in passes] == [(21, 11), (10, 11), (0, 10)]
        assert [p.num_buckets for p in passes] == [2048, 2048, 1024]

    def test_eight_bit_configuration(self):
        passes = digit_layout(32, 8)
        assert len(passes) == 4
        assert all(p.width == 8 for p in passes)
        assert [p.shift for p in passes] == [24, 16, 8, 0]

    def test_covers_all_bits_disjointly(self):
        for digit_bits in (3, 7, 8, 11, 13, 32):
            passes = digit_layout(32, digit_bits)
            covered = 0
            for p in passes:
                mask = ((1 << p.width) - 1) << p.shift
                assert covered & mask == 0, "passes overlap"
                covered |= mask
            assert covered == 0xFFFFFFFF

    def test_msb_first(self):
        passes = digit_layout(32, 11)
        shifts = [p.shift for p in passes]
        assert shifts == sorted(shifts, reverse=True)

    def test_extract(self):
        keys = np.array([0b1010_1100_0000_0000_0000_0000_0000_0000], np.uint32)
        p0 = digit_layout(32, 4)[0]
        assert p0.extract(keys)[0] == 0b1010

    def test_digit_reassembly(self, rng):
        """Concatenating extracted digits MSB-first reconstructs the key."""
        keys = rng.integers(0, 2**32, size=64, dtype=np.uint32)
        for digit_bits in (8, 11):
            rebuilt = np.zeros_like(keys)
            for p in digit_layout(32, digit_bits):
                rebuilt |= p.extract(keys).astype(np.uint32) << np.uint32(p.shift)
            assert np.array_equal(rebuilt, keys)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            digit_layout(0, 8)
        with pytest.raises(ValueError):
            digit_layout(32, 0)
        with pytest.raises(ValueError):
            digit_layout(8, 16)

    def test_key_bits(self):
        assert key_bits(np.float16) == 16
        assert key_bits(np.float32) == 32
        assert key_bits(np.float64) == 64
        with pytest.raises(TypeError):
            key_bits(np.complex64)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.floats(width=32, allow_nan=False),
        min_size=2,
        max_size=64,
    )
)
def test_encode_is_order_isomorphic(values):
    """For any NaN-free float32 values: a < b  <=>  enc(a) < enc(b)."""
    arr = np.array(values, dtype=np.float32)
    keys = encode(arr).astype(np.int64)
    a = arr[:, None]
    b = arr[None, :]
    lt_float = a < b
    # -0.0 == 0.0 in float comparison but their keys differ by one; treat
    # equal floats as unordered
    eq_float = a == b
    lt_key = keys[:, None] < keys[None, :]
    assert np.all(lt_key[lt_float])
    assert not np.any(lt_float & lt_key.T)
    # equal non-zero floats must have equal keys
    nonzero = (a != 0) & (b != 0)
    n = len(values)
    kk_row = np.broadcast_to(keys[:, None], (n, n))
    kk_col = np.broadcast_to(keys[None, :], (n, n))
    mask = eq_float & nonzero
    assert np.array_equal(kk_row[mask], kk_col[mask])


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(width=32, allow_nan=True), min_size=1, max_size=32),
    st.sampled_from([8, 11, 16]),
)
def test_digit_order_prefix_property(values, digit_bits):
    """Comparing digit sequences MSB-first equals comparing keys."""
    arr = np.array(values, dtype=np.float32)
    keys = encode(arr)
    passes = digit_layout(32, digit_bits)
    digit_tuples = [
        tuple(int(p.extract(keys[i : i + 1])[0]) for p in passes)
        for i in range(len(arr))
    ]
    key_order = np.argsort(keys, kind="stable")
    tuple_order = sorted(range(len(arr)), key=lambda i: (digit_tuples[i], i))
    assert list(key_order) == tuple_order
