"""The approximate tier: recall contracts, quality dispatch, v2.1 API.

Four layers under test, mirroring docs/approximate.md:

* the analytic recall model and the ``(parts, keep)`` planners — sanity,
  monotonicity, and the floor-vs-expectation ordering;
* the two approximate algorithms — fused/per-row equivalence, and the
  empirical-recall-clears-the-promised-floor contract (property-tested
  across dtypes, directions, shapes and adversarial ties);
* the quality-aware dispatcher (``choose_plan`` and the ``topk`` facade's
  ``mode=``/``min_recall=`` keywords) — safety margins, conflicts, and
  the byte-identical exact pin;
* the serving layer — cache keying that never aliases exact and
  approximate results, and a seeded mixed load that must finish with
  zero recall violations and a clean recall SLO.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    QualityPlan,
    available_algorithms,
    choose_plan,
    expected_recall,
    recall_floor,
    topk,
)
from repro.approx import plan_buckets, plan_twostage
from repro.datagen import generate

APPROX = ("bucket_approx", "twostage_approx")


def measured_recall(data, values, k, *, largest=False):
    """Value-based recall: ties never penalise an equally good answer."""
    data = np.atleast_2d(data)
    values = np.atleast_2d(values)
    if largest:
        th = np.partition(data, data.shape[1] - k, axis=1)[:, data.shape[1] - k]
        return float((values >= th[:, None]).mean())
    th = np.partition(data, k - 1, axis=1)[:, k - 1]
    return float((values <= th[:, None]).mean())


class TestRecallModel:
    def test_expected_recall_bounds(self):
        for parts, keep in [(64, 1), (1024, 1), (256, 2), (64, 8)]:
            e = expected_recall(1 << 16, 64, parts, keep)
            assert 0.0 < e <= 1.0

    def test_more_buckets_means_more_recall(self):
        n, k = 1 << 16, 64
        es = [expected_recall(n, k, parts, 1) for parts in (256, 1024, 4096)]
        assert es == sorted(es)
        assert es[-1] > es[0]

    def test_deeper_quota_means_more_recall(self):
        n, k = 1 << 18, 128
        es = [expected_recall(n, k, 512, keep) for keep in (1, 2, 4)]
        assert es == sorted(es)
        assert es[-1] > es[0]

    def test_floor_below_expectation(self):
        for n, k, parts, keep in [
            (1 << 14, 32, 512, 1),
            (1 << 18, 256, 1024, 2),
            (1 << 20, 1024, 4096, 2),
        ]:
            assert recall_floor(n, k, parts, keep) <= expected_recall(
                n, k, parts, keep
            )

    def test_planners_return_valid_configs(self):
        for n, k in [(1000, 7), (1 << 16, 64), (1 << 20, 1024), (4096, 4096)]:
            for parts, keep in (
                plan_buckets(n, k, 16 * k),
                plan_twostage(n, k, 4 * k, 2),
            ):
                assert 1 <= parts <= n
                assert keep >= 1
                # survivors must be able to cover the answer
                assert parts * keep >= k

    def test_capability_records_carry_quality_fields(self):
        by_name = {i.name: i for i in available_algorithms()}
        for name in APPROX:
            assert not by_name[name].exact
            assert by_name[name].recall_model == "hypergeometric-occupancy"
        assert by_name["air_topk"].exact
        assert by_name["air_topk"].recall_model is None


class TestApproxAlgorithms:
    @pytest.mark.parametrize("algo", APPROX)
    def test_result_contract(self, algo, rng):
        data = rng.standard_normal((4, 1 << 14)).astype(np.float32)
        r = topk(data, 64, algo=algo)
        assert r.values.shape == (4, 64)
        assert not r.exact
        assert 0.0 < r.recall_bound <= 1.0
        assert r.meta["expected_recall"] >= r.recall_bound
        # best-first ordering and per-row membership still hold
        assert np.all(np.diff(r.values, axis=1) >= 0)
        picked = np.take_along_axis(data, r.indices, axis=1)
        assert np.array_equal(picked, r.values)

    @pytest.mark.parametrize("algo", APPROX)
    def test_fused_matches_per_row(self, algo, rng):
        data = rng.standard_normal((5, 4096)).astype(np.float32)
        fused = topk(data, 32, algo=algo, seed=3)
        ref = topk(data, 32, algo=algo, seed=3, params={"fused": False})
        assert np.array_equal(fused.values, ref.values)
        assert np.array_equal(fused.indices, ref.indices)

    @pytest.mark.parametrize("algo", APPROX)
    def test_unpacks_as_two_tuple(self, algo, rng):
        data = rng.standard_normal(4096).astype(np.float32)
        values, indices = topk(data, 16, algo=algo)
        assert values.shape == indices.shape == (16,)

    @settings(max_examples=25, deadline=None)
    @given(
        algo=st.sampled_from(APPROX),
        n_exp=st.integers(min_value=11, max_value=16),
        k=st.sampled_from([8, 64, 256]),
        batch=st.sampled_from([1, 3]),
        largest=st.booleans(),
        dtype=st.sampled_from(["float16", "float32", "float64", "int32", "uint64"]),
        distribution=st.sampled_from(["uniform", "normal", "adversarial"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_empirical_recall_clears_floor(
        self, algo, n_exp, k, batch, largest, dtype, distribution, seed
    ):
        """The promised floor holds empirically, whatever the payload."""
        n = 1 << n_exp
        data = generate(distribution, n, batch=batch, seed=seed)
        if dtype != "float32":
            # rescale into a safe range before casting to integer keys
            if np.dtype(dtype).kind in "iu":
                lo = 0 if np.dtype(dtype).kind == "u" else -(1 << 20)
                data = (
                    np.interp(data, (data.min(), data.max()), (lo, 1 << 20))
                ).astype(dtype)
            else:
                data = data.astype(dtype)
        r = topk(data, k, algo=algo, largest=largest, seed=seed)
        rec = measured_recall(data, r.values, k, largest=largest)
        assert rec >= r.recall_bound, (
            f"{algo} empirical recall {rec:.4f} below promised "
            f"{r.recall_bound:.4f} (n={n}, k={k}, {dtype}, {distribution})"
        )


class TestQualityDispatch:
    def test_choose_plan_prefers_cheapest_eligible(self):
        plan = choose_plan(n=1 << 18, k=256, batch=4, min_recall=0.9)
        assert isinstance(plan, QualityPlan)
        assert not plan.exact  # some approximate plan clears 0.9 + margin
        # the safety margin: expected recall covers half the allowed slack
        assert plan.predicted_recall >= 1.0 - (1.0 - 0.9) / 2.0

    def test_tighter_target_falls_back_to_exact(self):
        loose = choose_plan(n=1 << 16, k=64, min_recall=0.5)
        strict = choose_plan(n=1 << 16, k=64, min_recall=0.99999)
        assert not loose.exact
        assert strict.exact
        assert strict.recall_floor == 1.0

    def test_approx_only_raises_when_impossible(self):
        with pytest.raises(ValueError, match="no approximate plan"):
            choose_plan(n=1 << 16, k=64, min_recall=0.99999, include_exact=False)

    def test_dispatcher_never_promises_below_target(self):
        """Across a grid of targets, the chosen plan's contract holds."""
        for n_exp in (14, 18, 20):
            for k in (32, 256):
                for target in (0.5, 0.9, 0.95, 0.99):
                    plan = choose_plan(n=1 << n_exp, k=k, min_recall=target)
                    required = 1.0 - (1.0 - target) / 2.0
                    assert plan.exact or plan.predicted_recall >= required

    def test_facade_quality_dispatch_annotates_meta(self, rng):
        data = rng.standard_normal(1 << 16).astype(np.float32)
        r = topk(data, 64, min_recall=0.9)
        d = r.meta["dispatch"]
        assert d["min_recall"] == 0.9
        assert d["algo"] in APPROX or r.exact

    def test_facade_mode_approx_forces_the_tier(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        r = topk(data, 32, mode="approx")
        assert not r.exact
        assert r.meta["dispatch"]["algo"] in APPROX

    def test_facade_conflicts_raise(self, rng):
        data = rng.standard_normal(4096).astype(np.float32)
        with pytest.raises(ValueError, match="min_recall conflicts"):
            topk(data, 16, mode="exact", min_recall=0.9)
        with pytest.raises(ValueError, match="conflicts with approximate"):
            topk(data, 16, mode="exact", algo="bucket_approx")
        with pytest.raises(ValueError, match="conflicts with exact"):
            topk(data, 16, mode="approx", algo="air_topk")
        with pytest.raises(ValueError, match="below the min_recall"):
            topk(data, 16, algo="bucket_approx", min_recall=0.99999)
        with pytest.raises(ValueError, match="mode must be"):
            topk(data, 16, mode="fast")

    def test_exact_pin_is_byte_identical(self, rng):
        """mode="exact" is the pre-quality facade, bit for bit."""
        data = rng.standard_normal(1 << 14).astype(np.float32)
        default = topk(data, 64, seed=5)
        pinned = topk(data, 64, seed=5, mode="exact")
        assert default.exact and pinned.exact
        assert default.time == pinned.time
        assert np.array_equal(default.values, pinned.values)
        assert np.array_equal(default.indices, pinned.indices)

    def test_bare_auto_never_dispatches_approx(self, rng):
        data = rng.standard_normal(1 << 14).astype(np.float32)
        r = topk(data, 64)
        assert r.exact
        assert "dispatch" not in r.meta


class TestServeQuality:
    def test_cache_never_aliases_exact_and_approx(self, rng):
        from repro.serve import ServeCache

        cache = ServeCache()
        data = rng.standard_normal(256).astype(np.float32)
        exact_v, exact_i = np.zeros(4), np.arange(4)
        cache.put_result(data, 4, False, exact_v, exact_i)
        cache.put_result(
            data, 4, False, exact_v + 1, exact_i + 1, quality=0.95,
            meta={"exact": False, "recall_bound": 0.9, "expected_recall": 0.97},
        )
        values, indices, meta = cache.get_result(data, 4, False)
        assert np.array_equal(indices, exact_i)
        assert meta == {}
        values, indices, meta = cache.get_result(data, 4, False, quality=0.95)
        assert np.array_equal(indices, exact_i + 1)
        assert meta["recall_bound"] == 0.9
        # distinct quality classes never alias either
        assert cache.get_result(data, 4, False, quality=0.9) is None

    def test_quality_class_quantisation(self):
        from repro.serve import quality_class

        assert quality_class(None) is None
        assert quality_class(0.95) == 0.95
        assert quality_class(0.95000004) == 0.95
        assert quality_class(0.9) != quality_class(0.95)

    def test_mixed_load_zero_recall_violations(self):
        from repro import obs
        from repro.serve import LoadSpec, ServeConfig, run_serve_bench

        spec = LoadSpec(
            qps=300.0,
            duration_s=0.5,
            n=1 << 16,
            k=64,
            min_recall=0.95,
            approx_fraction=0.5,
            seed=7,
        )
        report, service = run_serve_bench(spec, ServeConfig(algo="auto"))
        s = report.stats
        assert s.approx_served > 0, "quality dispatch never engaged"
        assert s.recall_violations == 0
        # the recall SLO grades clean over the same run
        payload = obs.build_serve_report(
            service.telemetry,
            s,
            config={},
            slos=[obs.SLOSpec("recall-999", "recall", 0.999)],
        )
        (slo,) = payload["slos"]
        assert slo["sli"] == 1.0
        assert not slo["violated"]

    def test_quality_off_trace_is_byte_identical(self):
        from repro.serve import LoadSpec, build_requests

        base = build_requests(LoadSpec(qps=200, duration_s=0.25, seed=3))
        off = build_requests(
            LoadSpec(qps=200, duration_s=0.25, seed=3, approx_fraction=0.0,
                     min_recall=None)
        )
        assert len(base) == len(off)
        for a, b in zip(base, off):
            assert a.arrival_s == b.arrival_s
            assert a.slo is None and b.slo is None
            assert np.array_equal(a.data, b.data)


class TestRecallBench:
    def test_tiny_snapshot_validates_and_gates(self):
        from repro.bench import recallbench as rb

        snap = rb.collect_snapshot(rb.TINY_REGIMES, seed=0, serve=False)
        assert snap["schema"] == rb.SCHEMA_ID
        (cell,) = snap["cells"]
        assert cell["points"], "no approximate points measured"
        for p in cell["points"]:
            assert p["gate_ok"]
            assert p["qps_capacity"] > 0
        # speedup gate only applies to acceptance regimes (tiny has none)
        assert rb.gate_recall(snap) == []

    def test_gate_flags_floor_miss_and_headline_miss(self):
        from repro.bench import recallbench as rb

        snap = {
            "schema": rb.SCHEMA_ID,
            "rev": "test",
            "gpu": "A100",
            "seed": 0,
            "cells": [
                {
                    "n": 1 << 14,
                    "k": 64,
                    "batch": 4,
                    "distribution": "uniform",
                    "acceptance": True,
                    "exact_algo": "air_topk",
                    "exact_time_s": 1e-5,
                    "points": [
                        {
                            "algo": "bucket_approx",
                            "label": "b=16k",
                            "params": {},
                            "sim_time_s": 9e-6,
                            "speedup": 1.1,
                            "qps_capacity": 4e5,
                            "expected_recall": 0.97,
                            "recall_floor": 0.9,
                            "empirical_recall": 0.85,
                            "gate_ok": False,
                        }
                    ],
                }
            ],
            "serve": {
                "requests": 10,
                "served": 10,
                "approx_served": 0,
                "recall_violations": 1,
                "min_recall": 0.95,
                "approx_fraction": 0.5,
            },
        }
        failures = rb.gate_recall(snap)
        assert any("below promised floor" in f for f in failures)
        assert any("best speedup" in f for f in failures)
        assert any("recall_violations" in f or "below" in f for f in failures)
        assert any("never engaged" in f for f in failures)
