"""Sequential reference selection — the CPU heap baseline of Sec. 2.2.

The paper's related-work section notes that "heap is the typical data
structure used for this purpose in a sequential algorithm, however, heap
operations are difficult to parallelize" — which is what motivated
WarpSelect in the first place.  This module implements that sequential
algorithm for real: a bounded max-heap of (key, index) pairs scanned over
the input once.

It serves two roles:

* an *independent* correctness oracle for the test suite (unlike
  :mod:`repro.verify`, it shares no code with the sort-based checks), and
* the classical O(N log k) single-thread reference that GPU top-k papers
  measure their speedups against.
"""

from __future__ import annotations

import numpy as np

from .primitives import priority_keys


class BoundedHeap:
    """A max-heap of at most ``k`` (key, index) pairs, keeping the smallest.

    Implemented on explicit arrays with sift-up/sift-down, exactly as a
    textbook sequential top-k would be; ``pushes`` and ``sifts`` count the
    work for complexity assertions.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._keys = np.empty(k, dtype=np.uint64)
        self._idx = np.empty(k, dtype=np.int64)
        self._size = 0
        self.pushes = 0
        self.sifts = 0

    def __len__(self) -> int:
        return self._size

    @property
    def threshold(self) -> int | None:
        """Largest key currently kept, or None while filling."""
        if self._size < self.k:
            return None
        return int(self._keys[0])

    def offer(self, key: int, index: int) -> bool:
        """Consider one element; returns True if it entered the heap."""
        if self._size < self.k:
            self._keys[self._size] = key
            self._idx[self._size] = index
            self._size += 1
            self._sift_up(self._size - 1)
            self.pushes += 1
            return True
        if key >= self._keys[0]:
            return False
        self._keys[0] = key
        self._idx[0] = index
        self._sift_down(0)
        self.pushes += 1
        return True

    def _sift_up(self, pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) // 2
            if self._keys[parent] >= self._keys[pos]:
                break
            self._swap(parent, pos)
            pos = parent
            self.sifts += 1

    def _sift_down(self, pos: int) -> None:
        while True:
            left = 2 * pos + 1
            right = left + 1
            largest = pos
            if left < self._size and self._keys[left] > self._keys[largest]:
                largest = left
            if right < self._size and self._keys[right] > self._keys[largest]:
                largest = right
            if largest == pos:
                return
            self._swap(pos, largest)
            pos = largest
            self.sifts += 1

    def _swap(self, a: int, b: int) -> None:
        self._keys[a], self._keys[b] = self._keys[b], self._keys[a]
        self._idx[a], self._idx[b] = self._idx[b], self._idx[a]

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Kept (keys, indices), sorted ascending by key then index."""
        order = np.lexsort(
            (self._idx[: self._size], self._keys[: self._size])
        )
        return self._keys[: self._size][order], self._idx[: self._size][order]


def heap_topk(
    data: np.ndarray, k: int, *, largest: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential heap-based top-k: ``(values, indices)``, best first.

    Same selection semantics as the simulated GPU algorithms (ties broken
    arbitrarily, NaN never preferred).
    """
    data = np.asarray(data)
    if data.ndim != 1:
        raise ValueError(f"heap_topk takes a 1-d list, got shape {data.shape}")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    keys = priority_keys(np.ascontiguousarray(data), largest=largest)
    heap = BoundedHeap(k)
    for i in range(n):
        heap.offer(int(keys[i]), i)
    _, indices = heap.items()
    return data[indices], indices
