"""Approximate top-k tier: recall math, kernel workloads, SLO planning.

The exact algorithms of the paper trade nothing for fidelity; this
package holds everything the *approximate* tier shares:

* :mod:`repro.approx.recall` — the hypergeometric bucket-occupancy
  recall model (expected recall + Hoeffding high-probability floor) and
  the ``(parts, keep)`` config planners of both approximate algorithms;
* the kernel workload helpers below — one source of truth for the
  device traffic the simulated kernels charge *and* the analytic cost
  model prices, so the dispatcher's predictions track execution by
  construction;
* :mod:`repro.approx.planner` — :class:`QualityPlan` /
  :func:`choose_plan`, the quality-aware dispatch used by
  ``repro.topk(mode=..., min_recall=...)`` and the serving layer
  (loaded lazily: the planner imports the cost model, which the
  algorithm modules must not).

See docs/approximate.md for the full derivation and the dispatch rules.
"""

from __future__ import annotations

import math

from ..perf import calibration as cal
from .recall import (
    RECALL_DELTA,
    expected_recall,
    partition_sizes,
    plan_buckets,
    plan_twostage,
    recall_floor,
)

__all__ = [
    "APPROX_WARP_EFFICIENCY",
    "RECALL_DELTA",
    "STAGE1_OPS_PER_ELEM",
    "QualityPlan",
    "choose_plan",
    "expected_recall",
    "partition_sizes",
    "plan_buckets",
    "plan_twostage",
    "predict_approx_time",
    "recall_floor",
    "stage1_workload",
    "stage2_workload",
]

#: per-element ops of the stage-1 streaming pass (compare against the
#: partition queue's threshold + index bookkeeping)
STAGE1_OPS_PER_ELEM = 3.0

#: stage 1 streams the input in index order (fully coalesced — the
#: affine scatter only picks which register/shared-memory queue an
#: element updates), paying a small shared-memory contention discount
APPROX_WARP_EFFICIENCY = 0.95


def _queue_inserts(size: float, keep: float) -> float:
    """E[insertions] into a best-``keep`` queue over a ``size``-item stream."""
    if size <= 0 or keep <= 0:
        return 0.0
    return keep * (1.0 + math.log(max(size / keep, 1.0)))


def _bitonic_comparators(m: float) -> float:
    """Comparators of a bitonic sort network over m (power-of-two) keys."""
    if m <= 1:
        return 0.0
    stages = math.log2(m)
    return m * stages * (stages + 1) / 4.0


def stage1_workload(n: int, parts: int, keep: int, batch: int) -> dict:
    """Device workload of the partitioned stage-1 pass, all rows fused.

    One streaming read of every key, per-partition best-``keep`` register
    queues (expected-insert maintenance cost), survivors written out.
    Returned as ``launch_kernel``/``KernelCostModel.price`` keywords.
    """
    total = float(n) * batch
    inserts = batch * sum(
        count * _queue_inserts(size, keep)
        for size, count in partition_sizes(n, parts)
    )
    return {
        "bytes_read": 4.0 * total,
        "bytes_written": 8.0 * parts * keep * batch,
        "flops": STAGE1_OPS_PER_ELEM * total
        + cal.OPS_PER_COMPARATOR
        * inserts
        * (math.log2(max(2.0, float(keep))) + 1.0),
    }


def stage2_workload(m: int, k: int, batch: int) -> dict:
    """Device workload of the survivor merge: exact top-k over ``m`` keys.

    One block per row bitonic-sorts its ``m`` survivors and keeps the
    best ``k`` — the same terminal-sort shape the exact paths charge.
    """
    comps = _bitonic_comparators(2.0 ** math.ceil(math.log2(max(2, m))))
    return {
        "bytes_read": 8.0 * m * batch,
        "bytes_written": 8.0 * k * batch,
        "flops": cal.OPS_PER_COMPARATOR * batch * comps,
    }


_PLANNER_EXPORTS = {
    "QualityPlan",
    "choose_plan",
    "candidate_plans",
    "predict_approx_time",
}


def __getattr__(name: str):
    if name in _PLANNER_EXPORTS:
        from . import planner

        return getattr(planner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
