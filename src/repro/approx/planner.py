"""Quality-aware dispatch: pick the cheapest plan meeting a recall SLO.

This is the decision layer behind ``repro.topk(mode=..., min_recall=...)``
and the serving stack's SLO-aware request planning.  It combines the
analytic cost model (:mod:`repro.perf.costmodel`) with the analytic
recall curves (:mod:`repro.approx.recall`): for a given ``(n, k, batch)``
problem it enumerates candidate plans — the best exact algorithm plus
each approximate method's planned config — and returns the cheapest one
whose *expected* recall clears the target with a safety margin.

The margin matters: the recall target is a promise to the caller, and
the analytic expectation is a mean, not a floor.  An approximate plan is
eligible for target ``r`` only when its expected recall covers half the
allowed slack (``E >= 1 - (1 - r) / 2``); the reported
:attr:`QualityPlan.recall_floor` is the Hoeffding high-probability bound
actually attached to results.  Exact plans are always eligible — the
dispatcher degrades to exact, never to silence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perf.costmodel import (
    APPROX_ALGORITHMS,
    PREDICTABLE_ALGORITHMS,
    predict_topk_time,
    rank_algorithms,
)
from .recall import expected_recall, recall_floor

__all__ = [
    "QualityPlan",
    "candidate_plans",
    "choose_plan",
    "predict_approx_time",
]


@dataclass(frozen=True)
class QualityPlan:
    """One dispatchable (algorithm, config) point with its predictions."""

    #: registry name to run (``get_algorithm(algo, params=params)``)
    algo: str
    #: constructor tuning for the algorithm (empty for exact defaults)
    params: dict = field(default_factory=dict)
    #: analytic run-time prediction, seconds
    predicted_time: float = 0.0
    #: analytic E[recall] (1.0 for exact plans)
    predicted_recall: float = 1.0
    #: high-probability recall floor attached to results (1.0 when exact)
    recall_floor: float = 1.0
    #: whether the plan guarantees the exact top-k
    exact: bool = True


def predict_approx_time(algo: str, *, n: int, k: int, batch: int = 1, spec=None):
    """Predicted time of one approximate method at its default config."""
    if algo not in APPROX_ALGORITHMS:
        raise KeyError(f"not an approximate algorithm: {algo!r}")
    return predict_topk_time(algo, n=n, k=k, batch=batch, spec=spec)


def _approx_plan(algo: str, n: int, k: int, batch: int, spec, calibration) -> QualityPlan:
    from ..algos.registry import get_algorithm  # lazy: algos import perf

    instance = get_algorithm(algo)
    parts, keep = instance.plan(n, k)
    exact = instance.plan_is_exact(n, k)
    time = predict_topk_time(algo, n=n, k=k, batch=batch, spec=spec)
    if calibration is not None and spec is not None:
        time = calibration.refine(
            algo, predicted=time, n=n, k=k, batch=batch, spec_name=spec.name
        )
    return QualityPlan(
        algo=algo,
        params={},
        predicted_time=time,
        predicted_recall=1.0 if exact else expected_recall(n, k, parts, keep),
        recall_floor=1.0 if exact else recall_floor(n, k, parts, keep),
        exact=exact,
    )


def candidate_plans(
    *,
    n: int,
    k: int,
    batch: int = 1,
    spec=None,
    include_exact: bool = True,
    calibration=None,
) -> list[QualityPlan]:
    """Every dispatchable plan for the problem, cheapest first.

    At most one exact plan is emitted — the cost model's pick among
    :data:`PREDICTABLE_ALGORITHMS` — plus one plan per approximate
    method at its default config.  Ties break by name for determinism.
    """
    if spec is None:
        from ..device import A100  # lazy: device imports perf

        spec = A100
    plans: list[QualityPlan] = []
    if include_exact:
        ranked = rank_algorithms(
            n=n, k=k, batch=batch, spec=spec, calibration=calibration
        )
        best = ranked[0]
        plans.append(
            QualityPlan(algo=best.algo, predicted_time=best.time, exact=True)
        )
    from ..algos.registry import get_algorithm  # lazy: algos import perf

    for algo in APPROX_ALGORITHMS:
        if get_algorithm(algo).supports(n, k) is not None:
            continue
        plans.append(_approx_plan(algo, n, k, batch, spec, calibration))
    return sorted(plans, key=lambda p: (p.predicted_time, p.algo))


def choose_plan(
    *,
    n: int,
    k: int,
    batch: int = 1,
    spec=None,
    min_recall: float | None = None,
    include_exact: bool = True,
    calibration=None,
) -> QualityPlan:
    """Cheapest plan whose expected recall clears ``min_recall``.

    ``min_recall=None`` means any recall is acceptable and the overall
    cheapest plan wins.  With a target set, approximate plans must clear
    it with the safety margin described in the module docstring; exact
    plans always qualify.  ``include_exact=False`` restricts dispatch to
    the approximate tier (``mode="approx"``) and raises ``ValueError``
    when no approximate plan can meet the target — the caller asked for
    something the tier cannot promise, which must not silently degrade.
    """
    if min_recall is not None and not 0.0 <= min_recall <= 1.0:
        raise ValueError(f"min_recall must be in [0, 1], got {min_recall!r}")
    plans = candidate_plans(
        n=n,
        k=k,
        batch=batch,
        spec=spec,
        include_exact=include_exact,
        calibration=calibration,
    )
    required = 0.0
    if min_recall is not None:
        required = 1.0 - (1.0 - min_recall) / 2.0
    eligible = [
        p for p in plans if p.exact or p.predicted_recall >= required
    ]
    if not eligible:
        raise ValueError(
            f"no approximate plan meets min_recall={min_recall} for "
            f"n={n}, k={k}; use mode='auto' to allow exact fallback"
        )
    return eligible[0]
