"""Analytic recall model of partition-based approximate top-k.

Both approximate algorithms in this repo share one structure: scatter the
``n`` inputs across ``parts`` disjoint partitions, keep the best ``keep``
of each partition, and select the final ``k`` from the ``parts * keep``
survivors.  A true top-k element is *lost* exactly when it lands in a
partition together with ``keep`` or more better top-k elements — every
survivor that is a true top-k element beats every non-top-k survivor, so
it always makes the final cut.

Under a random assignment of elements to partitions, the number of true
top-k elements in a partition of size ``s`` is hypergeometric
(``N = n`` items, ``K = k`` marked, ``s`` drawn without replacement), and
by linearity of expectation the dependence *between* partitions is
irrelevant:

``E[recall] = (1/k) * sum_i E[min(X_i, keep)]``,
``X_i ~ Hypergeom(n, k, s_i)``.

This is the bucket-occupancy model of Key et al. ("Approximate Top-k for
Increased Parallelism") generalized to ``keep >= 1`` per partition, which
also covers the two-stage construction of Samaga et al. ("A Faster
Generalized Two-Stage Approximate Top-K").

:func:`recall_floor` turns the expectation into the same kind of
high-probability floor the degraded-serving path attaches
(:func:`repro.faults.recall_bound`): recall is a mean of ``k`` bounded
indicator-like terms, so Hoeffding gives
``P[recall < E - t] <= exp(-2 k t^2)``.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "expected_recall",
    "partition_sizes",
    "plan_buckets",
    "plan_twostage",
    "recall_floor",
]

#: default failure probability of the high-probability recall floor —
#: matches the degraded-result contract in :mod:`repro.faults`
RECALL_DELTA = 1e-6


def _log_comb(a: int, b: int) -> float:
    """log C(a, b); ``-inf`` outside the support."""
    if b < 0 or b > a:
        return -math.inf
    return (
        math.lgamma(a + 1) - math.lgamma(b + 1) - math.lgamma(a - b + 1)
    )


@lru_cache(maxsize=65536)
def _expected_min_hyper(n: int, k: int, size: int, keep: int) -> float:
    """E[min(X, keep)] with X ~ Hypergeom(N=n, K=k, draws=size).

    Uses ``min(x, c) = c - max(c - x, 0)`` so only the ``x < keep`` head
    of the pmf is ever evaluated::

        E[min(X, keep)] = keep - sum_{x < keep} (keep - x) P[X = x]
    """
    if size <= 0 or k <= 0 or keep <= 0:
        return 0.0
    log_total = _log_comb(n, size)
    head = 0.0
    for x in range(min(keep, k + 1, size + 1)):
        log_p = _log_comb(k, x) + _log_comb(n - k, size - x) - log_total
        if log_p == -math.inf:
            continue
        head += (keep - x) * math.exp(log_p)
    return keep - head


def partition_sizes(n: int, parts: int) -> list[tuple[int, int]]:
    """Partition sizes of a strided ``n``-into-``parts`` split.

    Returns ``[(size, count), ...]`` runs: the first ``n % parts``
    partitions hold ``ceil(n / parts)`` elements, the rest hold
    ``floor(n / parts)``.
    """
    if not 1 <= parts <= n:
        raise ValueError(f"parts must be in [1, n={n}], got {parts}")
    big, rem = divmod(n, parts)
    out = []
    if rem:
        out.append((big + 1, rem))
    if parts - rem:
        out.append((big, parts - rem))
    return out


def expected_recall(n: int, k: int, parts: int, keep: int) -> float:
    """Analytic E[recall] of keep-``keep``-per-partition approximate top-k.

    Assumes the positions of the true top-k are exchangeable with respect
    to the partition assignment (the algorithms randomise the assignment
    with a seeded affine permutation to make this hold for structured
    inputs).
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n={n}], got {k}")
    total = 0.0
    for size, count in partition_sizes(n, parts):
        total += count * _expected_min_hyper(n, k, size, keep)
    return min(1.0, total / k)


def recall_floor(
    n: int, k: int, parts: int, keep: int, *, delta: float = RECALL_DELTA
) -> float:
    """High-probability recall floor: ``P[recall < floor] <= delta``.

    Hoeffding over the ``k`` per-element hit indicators:
    ``floor = max(0, E[recall] - sqrt(ln(1/delta) / (2k)))``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    expected = expected_recall(n, k, parts, keep)
    if expected >= 1.0:
        return 1.0
    slack = math.sqrt(math.log(1.0 / delta) / (2.0 * k))
    return max(0.0, expected - slack)


def plan_buckets(n: int, k: int, buckets: int) -> tuple[int, int]:
    """Clamp a bucketed-approximate config to a valid ``(parts, keep)``.

    ``keep = ceil(k / parts)`` (the minimal per-bucket quota that still
    yields ``k`` candidates); the bucket count is halved until every
    bucket is large enough to honour its quota.  ``parts = 1`` always
    degenerates to the exact selection.
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n={n}], got {k}")
    parts = max(1, min(int(buckets), n))
    while True:
        keep = -(-k // parts)
        if parts == 1 or n // parts >= keep:
            return parts, keep
        parts = max(1, parts // 2)


def plan_twostage(
    n: int, k: int, partitions: int, stage_k: int | None
) -> tuple[int, int]:
    """Clamp a two-stage config to a valid ``(parts, keep)``.

    ``keep`` defaults to ``ceil(2k / parts)`` (2x oversampling versus the
    minimal quota, the knob Samaga et al. generalize beyond ``keep = 1``)
    and is never allowed below ``ceil(k / parts)``; the partition count
    is halved until every partition can honour its quota.
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n={n}], got {k}")
    parts = max(1, min(int(partitions), n))
    while True:
        keep = int(stage_k) if stage_k else -(-2 * k // parts)
        keep = max(keep, -(-k // parts))
        if parts == 1:
            return 1, min(max(keep, k), n)
        if n // parts >= keep:
            return parts, keep
        parts = max(1, parts // 2)
