"""Parallel sweep execution engine (see :mod:`repro.exec.engine`)."""

from .engine import (
    SEED_MODES,
    ProgressEvent,
    build_grid,
    default_chunk_size,
    fanout,
    parallel_sweep,
)
from .worker import (
    DEFAULT_RETRIES,
    ChunkResult,
    PointSpec,
    PointTimeout,
    execute_chunk,
    execute_chunk_telemetry,
    execute_point,
    point_seed,
)

__all__ = [
    "SEED_MODES",
    "ProgressEvent",
    "build_grid",
    "default_chunk_size",
    "fanout",
    "parallel_sweep",
    "DEFAULT_RETRIES",
    "ChunkResult",
    "PointSpec",
    "PointTimeout",
    "execute_chunk",
    "execute_chunk_telemetry",
    "execute_point",
    "point_seed",
]
