"""Parallel sweep execution engine.

The figure sweeps of ``repro.bench`` are embarrassingly parallel — every
(algorithm, distribution, N, K, batch) point is an independent pure
function of its coordinates — but the seed runner executed them serially.
This engine shards any benchmark grid across a ``multiprocessing`` pool:

* **chunked work stealing** — pending points are cut into many small
  chunks consumed through ``imap_unordered``, so an idle worker always
  steals the next chunk instead of waiting on a static partition;
* **deterministic results** — every point carries its grid index; results
  are reassembled into exact grid order, and each point's seed is a pure
  function of the sweep seed (and, under ``seed_mode="per-point"``, of the
  problem coordinates), so ``workers=1`` and ``workers=N`` produce
  byte-identical CSV rows (pinned by tests/test_exec_engine.py);
* **failure isolation** — a crashing point is retried once and then
  recorded as an ``error`` row, an overrunning point as a ``timeout`` row
  (see :mod:`repro.exec.worker`); one bad point cannot kill a sweep;
* **progress/ETA** — an optional callback receives a
  :class:`ProgressEvent` per finished point (the CLI renders these).

``repro.bench.runner.sweep`` delegates here, so every existing sweep —
including ``run_paper_suite`` — gains ``workers=``/``timeout=`` for free.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..bench.runner import ALL_ALGORITHMS, BenchPoint, SweepResult
from ..device import A100, GPUSpec
from ..obs.drift import record_point_drift
from ..obs.metrics import get_metrics, metrics_enabled
from ..obs.spans import get_tracer, span, tracing_enabled
from ..perf import DEFAULT_EXACT_CAP
from .worker import (
    DEFAULT_RETRIES,
    PointSpec,
    execute_chunk,
    execute_chunk_telemetry,
    execute_point,
    point_seed,
)

SEED_MODES = ("shared", "per-point")


@dataclass(frozen=True)
class ProgressEvent:
    """One finished point, with sweep-level completion accounting."""

    #: points finished so far (including this one)
    done: int
    #: total points in the grid
    total: int
    #: wall-clock seconds since the sweep started
    elapsed_s: float
    #: estimated seconds remaining (None until one point has finished)
    eta_s: float | None
    #: the finished point
    point: BenchPoint

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0


def build_grid(
    *,
    algos: Sequence[str] = ALL_ALGORITHMS,
    distributions: Sequence[str] = ("uniform",),
    ns: Iterable[int] = (1 << 20,),
    ks: Iterable[int] = (256,),
    batches: Iterable[int] = (1,),
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    seed_mode: str = "shared",
    trace: bool = False,
    metrics: bool = False,
    faults=None,
    backoff_s: float = 0.0,
) -> list[PointSpec | BenchPoint]:
    """Expand a sweep grid into ordered slots.

    Each slot is either a :class:`PointSpec` to execute, or an
    already-final :class:`BenchPoint` for points no algorithm can run
    (k > n), recorded as explicit ``unsupported`` rows rather than
    silently dropped — the paper's SOTA denominators stay auditable.
    The nesting order (distribution, batch, n, k, algorithm) matches the
    seed serial runner exactly.
    """
    if seed_mode not in SEED_MODES:
        raise ValueError(f"seed_mode must be one of {SEED_MODES}, got {seed_mode!r}")
    slots: list[PointSpec | BenchPoint] = []
    for distribution in distributions:
        for batch in batches:
            for n in ns:
                for k in ks:
                    for algo in algos:
                        if k > n:
                            slots.append(
                                BenchPoint(
                                    algo=algo,
                                    distribution=distribution,
                                    n=n,
                                    k=k,
                                    batch=batch,
                                    time=None,
                                    mode="unsupported",
                                    status="unsupported",
                                    detail=f"k={k} exceeds n={n}",
                                )
                            )
                            continue
                        if seed_mode == "per-point":
                            s = point_seed(
                                seed,
                                distribution=distribution,
                                n=n,
                                k=k,
                                batch=batch,
                            )
                        else:
                            s = seed
                        slots.append(
                            PointSpec(
                                index=len(slots),
                                algo=algo,
                                distribution=distribution,
                                n=n,
                                k=k,
                                batch=batch,
                                spec=spec,
                                cap=cap,
                                seed=s,
                                adversarial_m=adversarial_m,
                                timeout=timeout,
                                retries=retries,
                                trace=trace,
                                metrics=metrics,
                                faults=faults,
                                backoff_s=backoff_s,
                            )
                        )
    return slots


def default_chunk_size(pending: int, workers: int) -> int:
    """Small chunks so the pool self-balances (work stealing), but not so
    small that per-chunk dispatch overhead dominates tiny points."""
    if pending <= 0:
        return 1
    return max(1, -(-pending // (workers * 8)))


def fanout(
    fn: Callable,
    items: Sequence,
    *,
    workers: int = 1,
) -> list:
    """Apply ``fn`` to every item, optionally across a thread pool.

    The engine's generic fan-out primitive, reused by the serving layer's
    sharder (:mod:`repro.serve.sharder`): shard selections are pure
    functions of their inputs whose *simulated* time is computed rather
    than measured, so inline execution (``workers=1``) is the determinism
    reference and threads only shorten host wall-clock for large numpy
    slices.  Results always come back in item order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from multiprocessing.pool import ThreadPool

    with ThreadPool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items)


def parallel_sweep(
    *,
    algos: Sequence[str] = ALL_ALGORITHMS,
    distributions: Sequence[str] = ("uniform",),
    ns: Iterable[int] = (1 << 20,),
    ks: Iterable[int] = (256,),
    batches: Iterable[int] = (1,),
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    chunk_size: int | None = None,
    seed_mode: str = "shared",
    progress: Callable[[ProgressEvent], None] | None = None,
    faults=None,
    backoff_s: float = 0.0,
) -> SweepResult:
    """Run a benchmark grid, sharded over ``workers`` processes.

    Returns the same :class:`SweepResult`, with points in the same order,
    as a serial sweep — parallelism is an execution detail, not a result
    change.  ``workers=1`` runs inline in the calling process (no pool).

    ``faults`` (a :class:`repro.faults.FaultPlan`) opens the worker-side
    injection seams — deterministic per grid index, so the same plan
    yields the same rows at any worker count; ``backoff_s`` adds capped
    exponential backoff between a point's retry attempts.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    traced = tracing_enabled()
    metered = metrics_enabled()
    slots = build_grid(
        algos=algos,
        distributions=distributions,
        ns=ns,
        ks=ks,
        batches=batches,
        spec=spec,
        cap=cap,
        seed=seed,
        adversarial_m=adversarial_m,
        timeout=timeout,
        retries=retries,
        seed_mode=seed_mode,
        trace=traced,
        metrics=metered,
        faults=faults,
        backoff_s=backoff_s,
    )
    total = len(slots)
    started = time.perf_counter()
    done = 0

    def emit(point: BenchPoint) -> None:
        nonlocal done
        done += 1
        if metered:
            registry = get_metrics()
            registry.counter("sweep.points", status=point.status).inc()
            record_point_drift(registry, point, spec=spec)
        if progress is None:
            return
        elapsed = time.perf_counter() - started
        eta = (elapsed / done) * (total - done) if done else None
        progress(
            ProgressEvent(
                done=done, total=total, elapsed_s=elapsed, eta_s=eta, point=point
            )
        )

    points: list[BenchPoint | None] = [None] * total
    pending = [slot for slot in slots if isinstance(slot, PointSpec)]

    with span("sweep", cat="sweep", points=total, workers=workers) as sweep_span:
        if workers == 1 or len(pending) <= 1:
            # inline: same process, grid order — the determinism reference
            for i, slot in enumerate(slots):
                point = slot if isinstance(slot, BenchPoint) else execute_point(slot)
                points[i] = point
                emit(point)
        else:
            for i, slot in enumerate(slots):
                if isinstance(slot, BenchPoint):
                    points[i] = slot
                    emit(slot)
            size = chunk_size or default_chunk_size(len(pending), workers)
            chunks = [pending[i : i + size] for i in range(0, len(pending), size)]
            pool_size = min(workers, len(chunks))
            sweep_span.set(chunks=len(chunks), chunk_size=size, pool=pool_size)
            # telemetry rides back with each chunk: workers buffer into a
            # fresh local session and the parent merges here, so counters,
            # metrics and spans are identical to the workers=1 run
            run_chunk = (
                execute_chunk_telemetry if (traced or metered) else execute_chunk
            )
            with multiprocessing.get_context().Pool(processes=pool_size) as pool:
                for outcome in pool.imap_unordered(run_chunk, chunks):
                    with span("merge_chunk", cat="sweep"):
                        if run_chunk is execute_chunk:
                            pairs = outcome
                        else:
                            pairs = outcome.pairs
                            if traced and outcome.spans:
                                get_tracer().extend(outcome.spans)
                            if metered and outcome.metrics is not None:
                                get_metrics().merge(outcome.metrics)
                        for index, point in pairs:
                            points[index] = point
                            emit(point)

    if metered:
        get_metrics().gauge("sweep.wall_time_s").set(
            time.perf_counter() - started
        )

    result = SweepResult()
    for point in points:
        assert point is not None  # every slot is filled by construction
        result.add(point)
    return result
