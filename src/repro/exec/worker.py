"""Worker-side execution of sweep points: seeding, timeout, retry.

Everything here must be importable at module top level so a
``multiprocessing`` pool can run it under any start method (fork *or*
spawn).  A :class:`PointSpec` is a fully picklable description of one
benchmark point; :func:`execute_chunk` turns a chunk of them into
``(grid_index, BenchPoint)`` pairs, never raising: a crashing point is
retried once and then recorded as an ``error`` row, an overrunning point
as a ``timeout`` row, so one bad point cannot kill a sweep.
"""

from __future__ import annotations

import hashlib
import signal
import traceback
from contextlib import contextmanager
from dataclasses import dataclass

from ..bench.runner import BenchPoint, run_point
from ..device import GPUSpec

#: how many times a crashing point is re-attempted before an error row
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class PointSpec:
    """Picklable description of one grid point, tagged with its grid slot."""

    index: int
    algo: str
    distribution: str
    n: int
    k: int
    batch: int
    spec: GPUSpec
    cap: int
    seed: int
    adversarial_m: int
    timeout: float | None = None
    retries: int = DEFAULT_RETRIES


def point_seed(base_seed: int, *, distribution: str, n: int, k: int, batch: int) -> int:
    """Deterministic per-point seed, stable across processes and runs.

    Derived by hashing the problem coordinates into the base seed (sha256,
    not ``hash()`` — the latter is salted per process for strings).  Used
    by the engine's ``seed_mode="per-point"``; the default ``"shared"``
    mode reuses ``base_seed`` everywhere, matching the serial sweeps the
    paper figures are built from.
    """
    text = f"{base_seed}:{distribution}:{n}:{k}:{batch}"
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**32)


class PointTimeout(Exception):
    """Raised inside a worker when a point exceeds its wall-clock budget."""


@contextmanager
def _alarm(timeout: float | None):
    """SIGALRM-based wall-clock guard (POSIX; a no-op where unavailable)."""
    if timeout is None or not hasattr(signal, "setitimer"):
        yield
        return

    def _raise(signum, frame):
        raise PointTimeout()

    previous = signal.signal(signal.SIGALRM, _raise)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failure_point(spec: PointSpec, status: str, detail: str) -> BenchPoint:
    return BenchPoint(
        algo=spec.algo,
        distribution=spec.distribution,
        n=spec.n,
        k=spec.k,
        batch=spec.batch,
        time=None,
        mode=status,
        status=status,
        detail=detail,
    )


def execute_point(spec: PointSpec) -> BenchPoint:
    """Run one point; failures become recorded rows, never exceptions."""
    attempts = 1 + max(0, spec.retries)
    last_error = ""
    for _ in range(attempts):
        try:
            with _alarm(spec.timeout):
                return run_point(
                    spec.algo,
                    distribution=spec.distribution,
                    n=spec.n,
                    k=spec.k,
                    batch=spec.batch,
                    spec=spec.spec,
                    cap=spec.cap,
                    seed=spec.seed,
                    adversarial_m=spec.adversarial_m,
                )
        except PointTimeout:
            # a timed-out point is not retried: it would only time out again
            return _failure_point(
                spec, "timeout", f"exceeded {spec.timeout:g}s wall clock"
            )
        except Exception as exc:  # noqa: BLE001 — the row records the cause
            last_error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
    return _failure_point(spec, "error", last_error)


def execute_chunk(chunk: list[PointSpec]) -> list[tuple[int, BenchPoint]]:
    """Pool entry point: run a chunk, returning (grid_index, point) pairs."""
    return [(spec.index, execute_point(spec)) for spec in chunk]
