"""Worker-side execution of sweep points: seeding, timeout, retry.

Everything here must be importable at module top level so a
``multiprocessing`` pool can run it under any start method (fork *or*
spawn).  A :class:`PointSpec` is a fully picklable description of one
benchmark point; :func:`execute_chunk` turns a chunk of them into
``(grid_index, BenchPoint)`` pairs, never raising: a crashing point is
retried once and then recorded as an ``error`` row, an overrunning point
as a ``timeout`` row, so one bad point cannot kill a sweep.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import signal
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass

from ..bench.runner import BenchPoint, run_point
from ..device import GPUSpec
from ..faults import FaultPlan, backoff_schedule
from ..obs.metrics import get_metrics
from ..obs.spans import SpanEvent, span

#: how many times a crashing point is re-attempted before an error row
DEFAULT_RETRIES = 1


@dataclass(frozen=True)
class PointSpec:
    """Picklable description of one grid point, tagged with its grid slot."""

    index: int
    algo: str
    distribution: str
    n: int
    k: int
    batch: int
    spec: GPUSpec
    cap: int
    seed: int
    adversarial_m: int
    timeout: float | None = None
    retries: int = DEFAULT_RETRIES
    #: telemetry switches, set by the engine when the parent session has a
    #: tracer/registry installed; picklable under fork and spawn alike
    trace: bool = False
    metrics: bool = False
    #: deterministic fault plan (repro.faults); None leaves every seam a
    #: strict no-op.  Draws key on the grid index, never the process, so
    #: workers=1 and workers=N inject identically (tests/test_exec_engine)
    faults: FaultPlan | None = None
    #: capped-exponential backoff before each retry, wall-clock seconds;
    #: 0 (the default) retries immediately, as the seed engine did
    backoff_s: float = 0.0
    backoff_cap_s: float = 0.05


def point_seed(base_seed: int, *, distribution: str, n: int, k: int, batch: int) -> int:
    """Deterministic per-point seed, stable across processes and runs.

    Derived by hashing the problem coordinates into the base seed (sha256,
    not ``hash()`` — the latter is salted per process for strings).  Used
    by the engine's ``seed_mode="per-point"``; the default ``"shared"``
    mode reuses ``base_seed`` everywhere, matching the serial sweeps the
    paper figures are built from.
    """
    text = f"{base_seed}:{distribution}:{n}:{k}:{batch}"
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**32)


class PointTimeout(Exception):
    """Raised inside a worker when a point exceeds its wall-clock budget."""


@contextmanager
def _alarm(timeout: float | None):
    """SIGALRM-based wall-clock guard (POSIX; a no-op where unavailable)."""
    if timeout is None or not hasattr(signal, "setitimer"):
        yield
        return

    def _raise(signum, frame):
        raise PointTimeout()

    previous = signal.signal(signal.SIGALRM, _raise)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failure_point(spec: PointSpec, status: str, detail: str) -> BenchPoint:
    return BenchPoint(
        algo=spec.algo,
        distribution=spec.distribution,
        n=spec.n,
        k=spec.k,
        batch=spec.batch,
        time=None,
        mode=status,
        status=status,
        detail=detail,
    )


def _count_fault(spec: PointSpec, kind: str) -> None:
    """Export one injected fault as an ``exec.faults`` counter sample."""
    if not spec.metrics:
        return
    registry = get_metrics()
    if registry is not None:
        registry.counter("exec.faults", kind=kind).inc()


def execute_point(spec: PointSpec) -> BenchPoint:
    """Run one point; failures become recorded rows, never exceptions.

    With a fault plan attached, two seams open up (both keyed on the
    grid index, so injection is identical however the grid is sharded):
    an injected ``timeout`` records the point as a timeout row exactly
    like a real wall-clock overrun, and an injected ``worker_crash``
    consumes one retry attempt exactly like a real exception — past the
    retry budget the point becomes an ``error`` row, never a raise.
    """
    attempts = 1 + max(0, spec.retries)
    last_error = ""
    injector = spec.faults.injector() if spec.faults is not None else None
    backoffs = backoff_schedule(
        attempts, base_s=spec.backoff_s, cap_s=spec.backoff_cap_s
    )
    with span(
        f"execute {spec.algo}", cat="exec", index=spec.index, algo=spec.algo
    ) as exec_span:
        if injector is not None and injector.decide(
            "timeout", "exec.point", f"index={spec.index}"
        ):
            _count_fault(spec, "timeout")
            exec_span.set(status="timeout")
            return _failure_point(spec, "timeout", "injected wall-clock overrun")
        for attempt in range(attempts):
            if attempt and backoffs[attempt - 1] > 0:
                time.sleep(backoffs[attempt - 1])
            if injector is not None and injector.decide(
                "worker_crash",
                "exec.point",
                f"index={spec.index}",
                f"attempt={attempt}",
            ):
                _count_fault(spec, "worker_crash")
                last_error = "injected worker crash"
                continue
            try:
                with _alarm(spec.timeout), span(
                    "attempt", cat="exec", attempt=attempt + 1
                ):
                    point = run_point(
                        spec.algo,
                        distribution=spec.distribution,
                        n=spec.n,
                        k=spec.k,
                        batch=spec.batch,
                        spec=spec.spec,
                        cap=spec.cap,
                        seed=spec.seed,
                        adversarial_m=spec.adversarial_m,
                    )
                    exec_span.set(status=point.status)
                    return point
            except PointTimeout:
                # a timed-out point is not retried: it would only time out
                # again
                exec_span.set(status="timeout")
                return _failure_point(
                    spec, "timeout", f"exceeded {spec.timeout:g}s wall clock"
                )
            except Exception as exc:  # noqa: BLE001 — the row records the cause
                last_error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
        exec_span.set(status="error", retries=attempts - 1)
    return _failure_point(spec, "error", last_error)


def execute_chunk(chunk: list[PointSpec]) -> list[tuple[int, BenchPoint]]:
    """Pool entry point: run a chunk, returning (grid_index, point) pairs."""
    return [(spec.index, execute_point(spec)) for spec in chunk]


@dataclass(frozen=True)
class ChunkResult:
    """A chunk's points plus the worker-local telemetry that produced them."""

    pairs: list[tuple[int, BenchPoint]]
    spans: tuple[SpanEvent, ...] = ()
    metrics: "object | None" = None  # MetricsRegistry, kept loose for pickling


def execute_chunk_telemetry(chunk: list[PointSpec]) -> ChunkResult:
    """Pool entry point when the parent session has telemetry enabled.

    Opens a *fresh* tracer/registry for the chunk (never the fork-copied
    parent one — its buffered events would be duplicated on merge), runs
    the chunk inside it, and ships the buffers back with the results; the
    engine merges them into the parent session.  The worker's lane is its
    ``multiprocessing`` process name, so Perfetto shows one row per pool
    worker.
    """
    from ..obs import local_session

    trace = any(spec.trace for spec in chunk)
    metrics = any(spec.metrics for spec in chunk)
    lane = f"host/{multiprocessing.current_process().name}"
    with local_session(trace=trace, metrics=metrics, lane=lane) as (tracer, registry):
        with span("chunk", cat="exec", points=len(chunk)):
            pairs = [(spec.index, execute_point(spec)) for spec in chunk]
        return ChunkResult(
            pairs=pairs,
            spans=tracer.events if tracer is not None else (),
            metrics=registry,
        )
