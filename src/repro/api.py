"""The v2 public facade: one keyword-only ``topk`` entry point.

Everything user-facing — the CLI, :mod:`repro.serve`, the examples —
funnels through :func:`topk`.  It replaces the v1 pair of ``topk``
(algorithm-first, ``spec=``/``device=`` split, ``**algo_kwargs``) and
``select_k`` (RAFT-style tuple wrapper) with a single signature::

    repro.topk(data, k, *, algo="auto", device=A100, largest=False,
               batch=None, seed=0, params=None)

* ``algo`` defaults to the cost-model ``auto`` dispatcher, so a bare
  call picks the predicted-fastest method for the problem shape;
* ``device`` accepts a preset name (``"A100"``), a :class:`GPUSpec`, or
  an existing :class:`Device` to account the run against — no separate
  ``spec`` argument;
* ``batch`` reshapes a flat buffer into ``(batch, n)`` rows, the layout
  a serving tier hands over;
* ``params`` is the single dict of algorithm-specific tuning, matching
  the ``tunables`` of the registry's :class:`~repro.algos.AlgorithmInfo`.

The v1 spellings still work as thin shims — ``select_k(...)``, the
``spec=`` keyword and loose ``**algo_kwargs`` each emit a
:class:`DeprecationWarning` and delegate here with identical results
(pinned by tests/test_api.py).
"""

from __future__ import annotations

import warnings

import numpy as np

from .algos import TopKResult, get_algorithm
from .device import A100, Device, GPUSpec, get_spec

__all__ = ["topk", "select_k", "resolve_device"]


def resolve_device(
    device: Device | GPUSpec | str | None,
) -> tuple[Device | None, GPUSpec]:
    """Normalise the facade's ``device`` argument to ``(device, spec)``.

    Accepts an existing :class:`Device` (the run is accounted against
    it), a :class:`GPUSpec`, a preset name (``"A100"``, ``"H100"``,
    ``"A10"``), or None for the default A100.
    """
    if device is None:
        return None, A100
    if isinstance(device, Device):
        return device, device.spec
    if isinstance(device, GPUSpec):
        return None, device
    if isinstance(device, str):
        return None, get_spec(device)
    raise TypeError(
        f"device must be a Device, GPUSpec or preset name, got {type(device).__name__}"
    )


def topk(
    data: np.ndarray,
    k: int,
    *,
    algo: str = "auto",
    device: Device | GPUSpec | str | None = None,
    largest: bool = False,
    batch: int | None = None,
    seed: int = 0,
    params: dict | None = None,
    spec: GPUSpec | None = None,
    **legacy_kwargs,
) -> TopKResult:
    """Find the k smallest (or largest) elements of each problem row.

    Parameters
    ----------
    data:
        ``(n,)`` or ``(batch, n)`` array, or a flat buffer combined with
        ``batch=``.  float32 is the paper's benchmark dtype; float16/
        float64 and all 16/32/64-bit integer keys are also supported.
    k:
        number of results per problem, ``1 <= k <= n``.
    algo:
        registry name — one of :func:`repro.algorithm_names`.  Defaults
        to ``"auto"``, the cost-model dispatcher that runs the
        predicted-fastest concrete method for the problem shape.
    device:
        where to run: a preset name (``"A100"``), a :class:`GPUSpec`, or
        an existing :class:`Device` to account the run against.
        Defaults to a fresh simulated A100.
    largest:
        select the largest elements instead of the smallest.
    batch:
        reshape a flat ``data`` buffer into ``(batch, n)`` problem rows
        (its size must divide evenly); with 2-d data it must match the
        leading dimension.
    seed:
        deterministic source for algorithmic randomness (pivot sampling).
    params:
        algorithm-specific tuning dict, e.g. ``{"adaptive": False}`` for
        AIR Top-K — the keys are the ``tunables`` of the method's
        :class:`~repro.algos.AlgorithmInfo`.

    Returns
    -------
    TopKResult with ``values`` and ``indices`` sorted best-first, and the
    simulated ``device`` carrying the run's time, counters and trace.
    """
    if spec is not None:
        warnings.warn(
            "topk(spec=...) is deprecated; pass device=<spec|name|Device> instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if device is None:
            device = spec
    if legacy_kwargs:
        warnings.warn(
            f"passing algorithm tuning as loose keyword arguments "
            f"({sorted(legacy_kwargs)}) is deprecated; use params={{...}}",
            DeprecationWarning,
            stacklevel=2,
        )
        merged = dict(legacy_kwargs)
        merged.update(params or {})
        params = merged

    data = np.asarray(data)
    if batch is not None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if data.ndim == 1:
            if data.size % batch:
                raise ValueError(
                    f"cannot split {data.size} elements into {batch} equal rows"
                )
            data = data.reshape(batch, -1)
        elif data.ndim == 2:
            if data.shape[0] != batch:
                raise ValueError(
                    f"data has {data.shape[0]} rows but batch={batch} was requested"
                )
        else:
            raise ValueError(
                f"data must be 1-d or 2-d (batch, n), got shape {data.shape}"
            )

    run_device, run_spec = resolve_device(device)
    algorithm = get_algorithm(algo, params=params)
    return algorithm.select(
        data, k, device=run_device, spec=run_spec, largest=largest, seed=seed
    )


def select_k(
    data: np.ndarray,
    k: int,
    *,
    select_min: bool = True,
    algo: str = "air_topk",
    **kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Deprecated RAFT-style wrapper: ``(values, indices)`` best-first.

    Use :func:`topk` — this shim emits a :class:`DeprecationWarning` and
    returns ``(result.values, result.indices)`` unchanged from the v1
    behaviour (same default algorithm, same direction flag semantics).
    """
    warnings.warn(
        "select_k() is deprecated; use repro.topk(data, k, largest=not "
        "select_min).values/.indices instead",
        DeprecationWarning,
        stacklevel=2,
    )
    with warnings.catch_warnings():
        # don't double-warn when legacy kwargs ride along
        warnings.simplefilter("ignore", DeprecationWarning)
        result = topk(data, k, algo=algo, largest=not select_min, **kwargs)
    return result.values, result.indices
