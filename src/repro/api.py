"""The v2 public facade: one keyword-only ``topk`` entry point.

Everything user-facing — the CLI, :mod:`repro.serve`, the examples —
funnels through :func:`topk`.  It replaces the v1 pair of ``topk``
(algorithm-first, ``spec=``/``device=`` split, ``**algo_kwargs``) and
``select_k`` (RAFT-style tuple wrapper) with a single signature::

    repro.topk(data, k, *, algo="auto", device=A100, largest=False,
               batch=None, seed=0, params=None,
               mode="auto", min_recall=None)

* ``algo`` defaults to the cost-model ``auto`` dispatcher, so a bare
  call picks the predicted-fastest method for the problem shape;
* ``mode`` and ``min_recall`` (v2.1) opt into the approximate tier:
  ``mode="approx"`` restricts dispatch to approximate methods,
  ``min_recall=`` sets the recall target the quality-aware planner must
  clear, and ``mode="exact"`` asserts the exact tier (rejecting
  approximate ``algo`` names).  A bare call never returns an
  approximate result — ``mode="auto"`` without ``min_recall`` is the
  v2.0 exact path, byte for byte;
* ``device`` accepts a preset name (``"A100"``), a :class:`GPUSpec`, or
  an existing :class:`Device` to account the run against — no separate
  ``spec`` argument;
* ``batch`` reshapes a flat buffer into ``(batch, n)`` rows, the layout
  a serving tier hands over;
* ``params`` is the single dict of algorithm-specific tuning, matching
  the ``tunables`` of the registry's :class:`~repro.algos.AlgorithmInfo`.

The v1 spellings still work as thin shims — ``select_k(...)``, the
``spec=`` keyword and loose ``**algo_kwargs`` each emit a
:class:`DeprecationWarning` and delegate here with identical results
(pinned by tests/test_api.py).
"""

from __future__ import annotations

import warnings

import numpy as np

from .algos import TopKResult, get_algorithm
from .device import A100, Device, GPUSpec, get_spec

__all__ = ["topk", "select_k", "resolve_device"]


def resolve_device(
    device: Device | GPUSpec | str | None,
) -> tuple[Device | None, GPUSpec]:
    """Normalise the facade's ``device`` argument to ``(device, spec)``.

    Accepts an existing :class:`Device` (the run is accounted against
    it), a :class:`GPUSpec`, a preset name (``"A100"``, ``"H100"``,
    ``"A10"``), or None for the default A100.
    """
    if device is None:
        return None, A100
    if isinstance(device, Device):
        return device, device.spec
    if isinstance(device, GPUSpec):
        return None, device
    if isinstance(device, str):
        return None, get_spec(device)
    raise TypeError(
        f"device must be a Device, GPUSpec or preset name, got {type(device).__name__}"
    )


def topk(
    data: np.ndarray,
    k: int,
    *,
    algo: str = "auto",
    device: Device | GPUSpec | str | None = None,
    largest: bool = False,
    batch: int | None = None,
    seed: int = 0,
    params: dict | None = None,
    mode: str = "auto",
    min_recall: float | None = None,
    spec: GPUSpec | None = None,
    **legacy_kwargs,
) -> TopKResult:
    """Find the k smallest (or largest) elements of each problem row.

    Parameters
    ----------
    data:
        ``(n,)`` or ``(batch, n)`` array, or a flat buffer combined with
        ``batch=``.  float32 is the paper's benchmark dtype; float16/
        float64 and all 16/32/64-bit integer keys are also supported.
    k:
        number of results per problem, ``1 <= k <= n``.
    algo:
        registry name — one of :func:`repro.algorithm_names`.  Defaults
        to ``"auto"``, the cost-model dispatcher that runs the
        predicted-fastest concrete method for the problem shape.
    device:
        where to run: a preset name (``"A100"``), a :class:`GPUSpec`, or
        an existing :class:`Device` to account the run against.
        Defaults to a fresh simulated A100.
    largest:
        select the largest elements instead of the smallest.
    batch:
        reshape a flat ``data`` buffer into ``(batch, n)`` problem rows
        (its size must divide evenly); with 2-d data it must match the
        leading dimension.
    seed:
        deterministic source for algorithmic randomness (pivot sampling).
    params:
        algorithm-specific tuning dict, e.g. ``{"adaptive": False}`` for
        AIR Top-K — the keys are the ``tunables`` of the method's
        :class:`~repro.algos.AlgorithmInfo`.
    mode:
        ``"auto"`` (default) runs exact methods unless ``min_recall``
        opts into quality-aware dispatch; ``"exact"`` asserts the exact
        tier and rejects approximate ``algo`` names; ``"approx"``
        restricts dispatch to the approximate tier (raising when no
        approximate plan can meet ``min_recall``).
    min_recall:
        recall target in [0, 1].  With ``algo="auto"`` the quality-aware
        planner (:func:`repro.approx.choose_plan`) picks the cheapest
        plan clearing the target with a safety margin, falling back to
        exact when no approximate plan qualifies; with an explicit
        approximate ``algo`` the call is rejected when the method's
        analytic expected recall cannot clear the target.

    Returns
    -------
    TopKResult with ``values`` and ``indices`` sorted best-first, the
    simulated ``device`` carrying the run's time, counters and trace,
    and the v2.1 quality fields: ``exact``, ``recall_bound`` and the
    per-method ``meta``.  The result still unpacks as a
    ``(values, indices)`` 2-tuple.
    """
    if spec is not None:
        warnings.warn(
            "topk(spec=...) is deprecated; pass device=<spec|name|Device> instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if device is None:
            device = spec
    if legacy_kwargs:
        warnings.warn(
            f"passing algorithm tuning as loose keyword arguments "
            f"({sorted(legacy_kwargs)}) is deprecated; use params={{...}}",
            DeprecationWarning,
            stacklevel=2,
        )
        merged = dict(legacy_kwargs)
        merged.update(params or {})
        params = merged

    data = np.asarray(data)
    if batch is not None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if data.ndim == 1:
            if data.size % batch:
                raise ValueError(
                    f"cannot split {data.size} elements into {batch} equal rows"
                )
            data = data.reshape(batch, -1)
        elif data.ndim == 2:
            if data.shape[0] != batch:
                raise ValueError(
                    f"data has {data.shape[0]} rows but batch={batch} was requested"
                )
        else:
            raise ValueError(
                f"data must be 1-d or 2-d (batch, n), got shape {data.shape}"
            )

    run_device, run_spec = resolve_device(device)
    algo, params, dispatch = _plan_quality(
        data, k, algo=algo, params=params, mode=mode, min_recall=min_recall,
        spec=run_spec,
    )
    algorithm = get_algorithm(algo, params=params)
    result = algorithm.select(
        data, k, device=run_device, spec=run_spec, largest=largest, seed=seed
    )
    if dispatch is not None:
        result.meta["dispatch"] = dispatch
    return result


def _plan_quality(
    data: np.ndarray,
    k: int,
    *,
    algo: str,
    params: dict | None,
    mode: str,
    min_recall: float | None,
    spec: GPUSpec,
) -> tuple[str, dict | None, dict | None]:
    """Resolve the v2.1 quality keywords to a concrete (algo, params).

    Returns ``(algo, params, dispatch_meta)`` where ``dispatch_meta`` is
    the annotation attached to ``result.meta["dispatch"]`` when the
    quality-aware planner made the choice, else None.  The fast path —
    ``mode="auto"`` without ``min_recall`` — returns the arguments
    untouched, keeping the default facade byte-identical to v2.0.
    """
    if mode not in ("auto", "exact", "approx"):
        raise ValueError(
            f"mode must be 'auto', 'exact' or 'approx', got {mode!r}"
        )
    if min_recall is not None and not 0.0 <= min_recall <= 1.0:
        raise ValueError(f"min_recall must be in [0, 1], got {min_recall!r}")
    if mode == "exact":
        if min_recall is not None:
            raise ValueError(
                "min_recall conflicts with mode='exact': exact results "
                "always have recall 1.0 — drop one of the two"
            )
        if algo != "auto" and not get_algorithm(algo, params=params).exact:
            raise ValueError(
                f"mode='exact' conflicts with approximate algo={algo!r}"
            )
        return algo, params, None
    if mode == "auto" and min_recall is None:
        return algo, params, None  # v2.0 path, untouched

    from .approx import choose_plan  # lazy: planner imports the cost model

    n = int(data.shape[-1])
    rows = int(data.shape[0]) if data.ndim == 2 else 1
    if algo == "auto":
        plan = choose_plan(
            n=n,
            k=k,
            batch=rows,
            spec=spec,
            min_recall=min_recall,
            include_exact=(mode != "approx"),
        )
        merged = {**plan.params, **(params or {})}
        dispatch = {
            "mode": mode,
            "min_recall": min_recall,
            "algo": plan.algo,
            "predicted_time": plan.predicted_time,
            "predicted_recall": plan.predicted_recall,
        }
        return plan.algo, merged or None, dispatch
    instance = get_algorithm(algo, params=params)
    if mode == "approx" and instance.exact:
        raise ValueError(
            f"mode='approx' conflicts with exact algo={algo!r}"
        )
    if min_recall is not None and not instance.exact:
        required = 1.0 - (1.0 - min_recall) / 2.0
        expected = instance.expected_recall(n, k)
        if expected < required:
            raise ValueError(
                f"algo={algo!r} has expected recall {expected:.4f} for "
                f"n={n}, k={k}, below the min_recall={min_recall} target "
                f"(safety-margin threshold {required:.4f})"
            )
    return algo, params, None


def select_k(
    data: np.ndarray,
    k: int,
    *,
    select_min: bool = True,
    algo: str = "air_topk",
    **kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Deprecated RAFT-style wrapper: ``(values, indices)`` best-first.

    Use :func:`topk` — this shim emits a :class:`DeprecationWarning` and
    returns ``(result.values, result.indices)`` unchanged from the v1
    behaviour (same default algorithm, same direction flag semantics).
    """
    warnings.warn(
        "select_k() is deprecated; use repro.topk(data, k, largest=not "
        "select_min).values/.indices instead",
        DeprecationWarning,
        stacklevel=2,
    )
    with warnings.catch_warnings():
        # don't double-warn when legacy kwargs ride along
        warnings.simplefilter("ignore", DeprecationWarning)
        result = topk(data, k, algo=algo, largest=not select_min, **kwargs)
    return result.values, result.indices
