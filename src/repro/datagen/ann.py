"""Synthetic stand-ins for the paper's real-world ANN datasets (Sec. 5.5).

The paper feeds the top-k algorithms the *distance arrays* of approximate
nearest neighbour search over DEEP1B (9.99M CNN descriptors, 96-d) and SIFT
(1M local descriptors, 128-d).  Those datasets are multi-GB downloads that
are unavailable offline, so we generate vector sets with the same
dimensionality and the structural property that matters for top-k input:
clustered embeddings whose query-to-base distance arrays are smooth,
non-uniform, and concentrated — unlike the synthetic uniform/normal inputs
of Sec. 5.1 (this is exactly why the paper adds the experiment).

* ``deep1b_like`` — L2-normalised Gaussian-mixture vectors (DEEP descriptors
  come from a CNN's last layer and are L2-normalised in the published set).
* ``sift_like`` — non-negative, heavy-tailed integer-valued vectors in
  [0, 255] (SIFT descriptors are quantised gradient histograms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device import Device
from ..perf import calibration as cal


@dataclass(frozen=True)
class VectorDataset:
    """A base vector set plus query vectors, mimicking an ANN benchmark."""

    name: str
    vectors: np.ndarray  # (num_vectors, dim) float32
    queries: np.ndarray  # (num_queries, dim) float32

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    @property
    def num_vectors(self) -> int:
        return int(self.vectors.shape[0])


def _mixture(
    rng: np.random.Generator, count: int, dim: int, centers: int, spread: float
) -> np.ndarray:
    """Gaussian-mixture embedding cloud."""
    mu = rng.standard_normal((centers, dim), dtype=np.float32)
    assign = rng.integers(0, centers, size=count)
    noise = rng.standard_normal((count, dim), dtype=np.float32) * np.float32(spread)
    return mu[assign] + noise


def deep1b_like(
    num_vectors: int = 100_000, *, num_queries: int = 16, dim: int = 96, seed: int = 0
) -> VectorDataset:
    """DEEP1B-like descriptors: 96-d, L2-normalised, clustered."""
    rng = np.random.default_rng(seed)
    base = _mixture(rng, num_vectors + num_queries, dim, centers=64, spread=0.35)
    base /= np.linalg.norm(base, axis=1, keepdims=True).astype(np.float32)
    return VectorDataset(
        name="DEEP1B-like",
        vectors=base[:num_vectors],
        queries=base[num_vectors:],
    )


def sift_like(
    num_vectors: int = 100_000, *, num_queries: int = 16, dim: int = 128, seed: int = 0
) -> VectorDataset:
    """SIFT-like descriptors: 128-d, non-negative, quantised to [0, 255]."""
    rng = np.random.default_rng(seed)
    base = np.abs(_mixture(rng, num_vectors + num_queries, dim, centers=32, spread=0.5))
    base = np.clip(base * 64.0, 0.0, 255.0)
    base = np.floor(base).astype(np.float32)
    return VectorDataset(
        name="SIFT-like",
        vectors=base[:num_vectors],
        queries=base[num_vectors:],
    )


DATASETS = {"deep1b": deep1b_like, "sift": sift_like}


def make_dataset(name: str, num_vectors: int, *, seed: int = 0, **kwargs) -> VectorDataset:
    """Dataset factory keyed by the paper's dataset names."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return DATASETS[key](num_vectors, seed=seed, **kwargs)


def distance_array(
    dataset: VectorDataset,
    query_index: int = 0,
    *,
    subset: int | None = None,
    device: Device | None = None,
) -> np.ndarray:
    """Squared-L2 distances from one query to (a subset of) the base vectors.

    This is the top-k input of the paper's Sec. 5.5 pipeline.  When a
    simulated ``device`` is given, the distance computation is accounted as
    one kernel (a fused gemv-style pass), so end-to-end examples can show
    selection cost in proportion to scoring cost.
    """
    if not 0 <= query_index < dataset.queries.shape[0]:
        raise IndexError(
            f"query_index {query_index} outside [0, {dataset.queries.shape[0]})"
        )
    vectors = dataset.vectors
    if subset is not None:
        if not 1 <= subset <= vectors.shape[0]:
            raise ValueError(
                f"subset must be in [1, {vectors.shape[0]}], got {subset}"
            )
        vectors = vectors[:subset]
    q = dataset.queries[query_index]
    diff = vectors - q
    dists = np.einsum("ij,ij->i", diff, diff).astype(np.float32)
    if device is not None:
        n, d = vectors.shape
        device.launch_kernel(
            "ComputeDistances",
            grid_blocks=max(1, n // (256 * cal.STREAM_ITEMS_PER_THREAD) or 1),
            block_threads=256,
            bytes_read=4.0 * n * d,
            bytes_written=4.0 * n,
            flops=3.0 * n * d,
        )
    return dists
