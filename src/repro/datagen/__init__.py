"""Workload generators: the paper's synthetic distributions and ANN stand-ins."""

from .distributions import (
    DISTRIBUTIONS,
    adversarial,
    generate,
    leading_bits_shared,
)
from .ann import (
    DATASETS,
    VectorDataset,
    deep1b_like,
    distance_array,
    make_dataset,
    sift_like,
)

__all__ = [
    "DISTRIBUTIONS",
    "adversarial",
    "generate",
    "leading_bits_shared",
    "DATASETS",
    "VectorDataset",
    "deep1b_like",
    "sift_like",
    "make_dataset",
    "distance_array",
]
