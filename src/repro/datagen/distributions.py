"""Synthetic input distributions used by the paper's benchmark (Sec. 5.1).

Three families:

* ``uniform`` — uniform in (0, 1],
* ``normal`` — standard normal (mean 0, std 1),
* ``adversarial`` — the radix-adversarial distribution: the first M bits of
  every element's IEEE-754 pattern are identical (the paper uses M = 20 in
  the main benchmark and M in {10, 20} for the Fig. 9 ablation).  The
  shared prefix is that of 1.0f (0x3F800000), matching the paper's example
  of values in [1.0, 1.00049].
"""

from __future__ import annotations

import numpy as np

#: bit pattern whose leading bits every adversarial element shares
_ADVERSARIAL_BASE = np.uint32(0x3F800000)

#: distribution names accepted by :func:`generate`
DISTRIBUTIONS = ("uniform", "normal", "adversarial")


def generate(
    distribution: str,
    n: int,
    *,
    batch: int = 1,
    seed: int = 0,
    adversarial_m: int = 20,
) -> np.ndarray:
    """Generate a ``(batch, n)`` float32 benchmark input.

    ``adversarial_m`` is the number of identical leading bits for the
    radix-adversarial distribution (ignored otherwise).
    """
    if n <= 0 or batch <= 0:
        raise ValueError(f"n and batch must be positive, got n={n}, batch={batch}")
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        # uniform over (0, 1]: flip [0, 1) around 1
        return (1.0 - rng.random((batch, n), dtype=np.float32)).astype(np.float32)
    if distribution == "normal":
        return rng.standard_normal((batch, n), dtype=np.float32)
    if distribution == "adversarial":
        return adversarial(n, batch=batch, seed=seed, m=adversarial_m)
    raise ValueError(
        f"unknown distribution {distribution!r}; choose from {DISTRIBUTIONS}"
    )


def adversarial(
    n: int, *, batch: int = 1, seed: int = 0, m: int = 20
) -> np.ndarray:
    """Radix-adversarial floats: first ``m`` bits identical across elements.

    With the 1.0f base pattern the exponent bits are fixed for any m >= 9,
    so every generated value is a normal float in [1.0, 2.0) — never NaN,
    inf or a denormal.
    """
    if not 9 <= m <= 31:
        raise ValueError(
            f"m must be in [9, 31] so the fixed prefix pins the sign and "
            f"exponent bits, got {m}"
        )
    rng = np.random.default_rng(seed)
    free_bits = 32 - m
    mask = np.uint32((1 << free_bits) - 1)
    low = rng.integers(0, 1 << free_bits, size=(batch, n), dtype=np.uint32)
    bits = (_ADVERSARIAL_BASE & ~mask) | low
    return bits.view(np.float32)


def leading_bits_shared(values: np.ndarray) -> int:
    """Number of leading bit positions shared by every element.

    Diagnostic used by tests to confirm the adversarial property.
    """
    bits = np.ascontiguousarray(values).view(np.uint32).ravel()
    if bits.size == 0:
        return 32
    agree = ~(bits ^ bits[0])  # 1s where every element matches the first
    combined = np.uint32(0xFFFFFFFF)
    for chunk in np.array_split(agree, max(1, agree.size // (1 << 20))):
        combined &= np.bitwise_and.reduce(chunk)
    shared = 0
    for pos in range(31, -1, -1):
        if combined >> np.uint32(pos) & np.uint32(1):
            shared += 1
        else:
            break
    return shared
