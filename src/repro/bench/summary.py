"""Speedup summaries — the machinery behind the paper's Table 2.

Table 2 reports, per (batch size, distribution), the min-max range over all
(N, K) combinations of three speedup ratios:

* AIR Top-K vs RadixSelect,
* GridSelect vs BlockSelect,
* AIR Top-K vs SOTA (the virtual best-of-baselines).
"""

from __future__ import annotations

from dataclasses import dataclass

from .runner import SweepResult


@dataclass(frozen=True)
class SpeedupRange:
    """Min-max of a speedup ratio over a grid of problem sizes."""

    low: float
    high: float
    points: int

    def formatted(self) -> str:
        if self.points == 0:
            return "n/a"
        return f"{self.low:.2f}-{self.high:.2f}"


@dataclass(frozen=True)
class Table2Row:
    """One row of the Table 2 reproduction."""

    batch: int
    distribution: str
    air_vs_radix: SpeedupRange
    grid_vs_block: SpeedupRange
    air_vs_sota: SpeedupRange


def speedup_range(
    result: SweepResult,
    *,
    numerator: str,
    denominator: str,
    distribution: str,
    batch: int,
) -> SpeedupRange:
    """Range of ``time(numerator) / time(denominator)`` speedups.

    Following the paper's convention the ratio is denominator-time over
    numerator-time: "A vs B" means how many times faster A is than B.
    Points where either algorithm is unsupported are skipped.
    """
    ratios: list[float] = []
    for key in result.keys():
        dist, n, k, b = key
        if dist != distribution or b != batch:
            continue
        fast = result.time_of(numerator, dist, n, k, b)
        slow = (
            result.sota_time(dist, n, k, b)
            if denominator == "sota"
            else result.time_of(denominator, dist, n, k, b)
        )
        if fast is None or slow is None or fast <= 0:
            continue
        ratios.append(slow / fast)
    if not ratios:
        return SpeedupRange(low=float("nan"), high=float("nan"), points=0)
    return SpeedupRange(low=min(ratios), high=max(ratios), points=len(ratios))


def table2(
    result: SweepResult,
    *,
    batches=(1, 100),
    distributions=("uniform", "normal", "adversarial"),
) -> list[Table2Row]:
    """Build the Table 2 reproduction from a sweep covering its grid."""
    rows: list[Table2Row] = []
    for batch in batches:
        for distribution in distributions:
            rows.append(
                Table2Row(
                    batch=batch,
                    distribution=distribution,
                    air_vs_radix=speedup_range(
                        result,
                        numerator="air_topk",
                        denominator="radix_select",
                        distribution=distribution,
                        batch=batch,
                    ),
                    grid_vs_block=speedup_range(
                        result,
                        numerator="grid_select",
                        denominator="block_select",
                        distribution=distribution,
                        batch=batch,
                    ),
                    air_vs_sota=speedup_range(
                        result,
                        numerator="air_topk",
                        denominator="sota",
                        distribution=distribution,
                        batch=batch,
                    ),
                )
            )
    return rows
