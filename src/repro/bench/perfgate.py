"""Performance gate: pinned workload grid → ``BENCH_<rev>.json`` trajectory.

The fused batched hot paths (AIR Top-K, BucketSelect, the queue family)
are pure-Python emulations, so their *host wall-clock* is a real, easily
regressed quantity — a careless per-row loop reappearing in a fused path
shows up as a 10-100x slowdown long before any simulated-time drift.  This
module pins a small workload grid and measures, per cell:

* ``sim_time_s`` — simulated device seconds (deterministic; any change is
  a cost-model or accounting change, never noise);
* ``wall_s`` — best-of-``repeats`` host wall-clock of the emulation;
* for the fused algorithms, ``wall_unfused_s`` — the same cell forced
  through the per-row reference path (``params={"fused": False}``), whose
  ratio ``fused_speedup`` tracks the value of batch fusion.

Snapshots are schema-validated JSON (``repro.bench.perfgate/v1``) written
as ``BENCH_<rev>.json`` at the repository root; :func:`compare_snapshots`
gates a new snapshot against the previous one with a configurable
wall-clock tolerance (simulated times must match exactly).  CI runs this
via ``repro-topk perf-bench`` — see docs/execution.md.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.schema import validate
from ..perf import simulate_topk

SCHEMA_ID = "repro.bench.perfgate/v1"

#: wall-clock regression tolerance of the gate (25% — generous enough for
#: shared CI runners, tight enough to catch a de-fused hot path)
DEFAULT_TOLERANCE = 0.25

#: algorithms with a per-row reference path selectable via
#: ``params={"fused": False}``
FUSED_ALGORITHMS = ("air_topk", "bucket_select", "quick_select", "sample_select")


@dataclass(frozen=True)
class GateCell:
    """One pinned workload of the perf-gate grid."""

    algo: str
    n: int
    k: int
    batch: int
    #: hot cells gate the build: a wall-clock regression beyond tolerance
    #: fails the comparison; cold cells are recorded but informational
    hot: bool = True


#: the pinned grid.  The batch=100 cells sit in the overhead-dominated
#: regime (small rows, many of them) where per-row scheduling cost — not
#: element math — is the bill, which is precisely what batch fusion
#: removes; their aggregate fused-vs-per-row ratio is published as
#: ``batch100_fused_speedup``.  The large single-problem cell and the
#: deliberately serial sort baseline guard the math-dominated regime.
PINNED_GRID: tuple[GateCell, ...] = (
    GateCell("air_topk", 1024, 16, 100),
    GateCell("bucket_select", 2048, 16, 100),
    GateCell("bucket_select", 2048, 64, 100),
    GateCell("quick_select", 2048, 16, 100),
    GateCell("sample_select", 2048, 16, 100),
    GateCell("grid_select", 1 << 16, 64, 100),
    GateCell("air_topk", 1 << 18, 256, 1),
    GateCell("sort", 1 << 14, 64, 16, hot=False),
)

#: reduced grid for tests and smoke runs
TINY_GRID: tuple[GateCell, ...] = (
    GateCell("air_topk", 4096, 16, 8),
    GateCell("bucket_select", 4096, 16, 8),
)

SNAPSHOT_SCHEMA = {
    "type": "object",
    "required": ["schema", "rev", "gpu", "repeats", "seed", "cells"],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "rev": {"type": "string"},
        "gpu": {"type": "string"},
        "repeats": {"type": "integer"},
        "seed": {"type": "integer"},
        "batch100_fused_speedup": {"type": "number"},
        "cells": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "algo", "n", "k", "batch", "hot", "sim_time_s", "wall_s",
                ],
                "properties": {
                    "algo": {"type": "string"},
                    "n": {"type": "integer"},
                    "k": {"type": "integer"},
                    "batch": {"type": "integer"},
                    "hot": {"type": "boolean"},
                    "sim_time_s": {"type": "number"},
                    "wall_s": {"type": "number"},
                    "wall_unfused_s": {"type": "number"},
                    "fused_speedup": {"type": "number"},
                },
            },
        },
    },
}


def git_rev(root: Path | str = ".") -> str:
    """Short git revision of ``root``, or ``"local"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def _measure(cell: GateCell, *, gpu: str, repeats: int, seed: int, **kwargs):
    """Best-of-``repeats`` wall-clock and the (deterministic) sim time.

    The workload is generated once, outside the timed region, so ``wall``
    measures the emulated algorithm itself and not ``datagen``."""
    from ..datagen import generate
    from ..device import get_spec

    spec = get_spec(gpu)
    data = generate("uniform", n=cell.n, batch=cell.batch, seed=seed)
    wall = float("inf")
    sim = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run = simulate_topk(
            cell.algo,
            distribution="uniform",
            n=cell.n,
            k=cell.k,
            batch=cell.batch,
            spec=spec,
            seed=seed,
            data=data,
            **kwargs,
        )
        wall = min(wall, time.perf_counter() - start)
        sim = run.time
    return sim, wall


def collect_snapshot(
    grid: tuple[GateCell, ...] = PINNED_GRID,
    *,
    gpu: str = "A100",
    repeats: int = 3,
    seed: int = 0,
    rev: str | None = None,
    progress=None,
) -> dict:
    """Measure every grid cell and return a validated snapshot payload."""
    cells = []
    for cell in grid:
        sim, wall = _measure(cell, gpu=gpu, repeats=repeats, seed=seed)
        entry = {
            "algo": cell.algo,
            "n": cell.n,
            "k": cell.k,
            "batch": cell.batch,
            "hot": cell.hot,
            "sim_time_s": sim,
            "wall_s": wall,
        }
        if cell.algo in FUSED_ALGORITHMS and cell.batch > 1:
            # the per-row reference path; its simulated time may legitimately
            # differ (BucketSelect's fused scheduling removes per-row syncs
            # and PCIe round trips), the wall ratio tracks the host win
            _, wall_u = _measure(
                cell, gpu=gpu, repeats=repeats, seed=seed,
                params={"fused": False},
            )
            entry["wall_unfused_s"] = wall_u
            entry["fused_speedup"] = wall_u / wall if wall > 0 else float("inf")
        cells.append(entry)
        if progress is not None:
            progress(entry)
    snapshot = {
        "schema": SCHEMA_ID,
        "rev": rev if rev is not None else git_rev(),
        "gpu": gpu,
        "repeats": int(repeats),
        "seed": int(seed),
        "cells": cells,
    }
    # aggregate fused-vs-per-row ratio over the batch=100 fusion cells —
    # wall-weighted, so big cells cannot be hidden behind fast ones
    fused = [
        c for c in cells if c["batch"] == 100 and "wall_unfused_s" in c
    ]
    if fused:
        total = sum(c["wall_s"] for c in fused)
        total_u = sum(c["wall_unfused_s"] for c in fused)
        snapshot["batch100_fused_speedup"] = (
            total_u / total if total > 0 else float("inf")
        )
    validate(snapshot, SNAPSHOT_SCHEMA)
    return snapshot


def write_snapshot(snapshot: dict, root: Path | str = ".") -> Path:
    """Validate and write ``BENCH_<rev>.json`` under ``root``."""
    validate(snapshot, SNAPSHOT_SCHEMA)
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"BENCH_{snapshot['rev']}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path | str) -> dict:
    """Read and schema-validate a snapshot file."""
    payload = json.loads(Path(path).read_text())
    validate(payload, SNAPSHOT_SCHEMA)
    return payload


def find_baseline(
    root: Path | str = ".", *, exclude: Path | str | None = None
) -> Path | None:
    """Most recent ``BENCH_*.json`` under ``root`` (optionally excluding
    the snapshot just written), or None when there is no baseline yet."""
    exclude = Path(exclude).resolve() if exclude is not None else None
    candidates = [
        p for p in Path(root).glob("BENCH_*.json") if p.resolve() != exclude
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


@dataclass
class GateReport:
    """Outcome of one snapshot comparison."""

    #: hot-cell wall-clock regressions beyond tolerance — these fail CI
    regressions: list[str] = field(default_factory=list)
    #: informational lines: cold-cell drift, new/removed cells, sim drift
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _cell_key(entry: dict) -> tuple:
    return (entry["algo"], entry["n"], entry["k"], entry["batch"])


def compare_snapshots(
    baseline: dict, current: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> GateReport:
    """Gate ``current`` against ``baseline``.

    A *hot* cell whose wall-clock exceeds the baseline by more than
    ``tolerance`` (fractional, default 25%) is a regression.  Simulated
    times are deterministic, so any ``sim_time_s`` change is surfaced as a
    note — it means the cost accounting itself changed, which a PR should
    be stating loudly anyway.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    report = GateReport()
    base = {_cell_key(c): c for c in baseline["cells"]}
    for entry in current["cells"]:
        key = _cell_key(entry)
        label = "{}(n={}, k={}, batch={})".format(*key)
        ref = base.pop(key, None)
        if ref is None:
            report.notes.append(f"{label}: new cell, no baseline")
            continue
        if entry["sim_time_s"] != ref["sim_time_s"]:
            report.notes.append(
                f"{label}: simulated time changed "
                f"{ref['sim_time_s']:.6e} -> {entry['sim_time_s']:.6e}"
            )
        limit = ref["wall_s"] * (1.0 + tolerance)
        if entry["wall_s"] > limit:
            ratio = entry["wall_s"] / ref["wall_s"] if ref["wall_s"] else float("inf")
            line = (
                f"{label}: wall {ref['wall_s']:.4f}s -> "
                f"{entry['wall_s']:.4f}s ({ratio:.2f}x, tolerance "
                f"{1.0 + tolerance:.2f}x)"
            )
            if entry["hot"]:
                report.regressions.append(line)
            else:
                report.notes.append(f"cold {line}")
    for key in base:
        report.notes.append(
            "{}(n={}, k={}, batch={}): cell removed".format(*key)
        )
    return report
