"""Adapt bench: regret of online adaptive dispatch under a device shift.

The :class:`repro.perf.adaptive.AdaptiveDispatcher` claims to *learn the
fastest algorithm per regime* from live measurements, where static
dispatch trusts the analytic cost model's belief about the device.  This
bench makes that claim falsifiable with a worst case for the static
path: the cost model keeps believing ``gpu`` while, halfway through the
decision stream, the device silently becomes ``gpu_shift`` (a
device-spec drift — new hardware behind the same endpoint, thermal
derating, a driver regression).

Per pinned regime the bench measures every candidate algorithm once on
each device (memoised — simulated times are deterministic), then replays
one decision stream through both dispatchers:

* **static** — the cost model's pick for the believed device, forever;
* **adaptive** — epsilon-greedy over the corrected ranking, fed each
  decision's measured time back through the correction store.

Per decision the *regret* is ``measured(chosen) - measured(oracle)``,
the oracle being the per-regime fastest algorithm on the device actually
executing.  The gate requires the adaptive stream's cumulative
post-shift regret to undercut static's by :data:`ACCEPT_RATIO`, and two
safety properties to hold exactly:

* **byte identity** — adaptation only changes *which* algorithm runs;
  re-running any chosen (regime, algorithm) pair reproduces its results
  byte-for-byte;
* **no-telemetry no-op** — a dispatcher that never receives feedback
  (telemetry off) makes exactly the static choices and folds nothing.

Snapshots are schema-validated JSON (``repro.bench.adapt/v1``) with no
wall-clock content, so a seeded rerun is byte-identical — CI runs the
tiny grid twice and ``cmp``s the files (see docs/adaptive.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..obs.schema import validate
from .perfgate import git_rev
from .report import format_table, format_time

SCHEMA_ID = "repro.bench.adapt/v1"

#: post-shift cumulative-regret ratio (static / adaptive) the gate requires
ACCEPT_RATIO = 1.3

#: dispatch roster raced in every regime — the exact tier's contenders
#: across the paper's regime map (hierarchical, AIR, radix, partition)
CANDIDATES = (
    "air_topk",
    "grid_select",
    "radix_select",
    "bucket_select",
    "quick_select",
    "sample_select",
)


@dataclass(frozen=True)
class AdaptCell:
    """One pinned regime of the adapt-bench decision stream."""

    n: int
    k: int
    batch: int


#: the pinned grid.  (16384, 64, 4) is the regime where the A100-belief
#: pick (grid_select) is measurably wrong on both devices and ~1.5x
#: wrong post-shift — the regret the learner must recover; (4096, 16,
#: 16) is a regime whose measured winner *flips* across the shift, so
#: the learner has to unlearn its pre-shift preference; the other two
#: are controls where the static pick stays optimal and adaptation must
#: not regress it.
DEFAULT_REGIMES: tuple[AdaptCell, ...] = (
    AdaptCell(16384, 64, 4),
    AdaptCell(4096, 16, 16),
    AdaptCell(65536, 256, 4),
    AdaptCell(2048, 8, 64),
)

#: reduced grid for CI: the regret regime plus the flip regime
TINY_REGIMES: tuple[AdaptCell, ...] = (
    AdaptCell(16384, 64, 4),
    AdaptCell(4096, 16, 16),
)

_SHIFT_PHASES = ("pre", "post")

_TIMES = {"type": "object"}

SNAPSHOT_SCHEMA = {
    "type": "object",
    "required": [
        "schema", "rev", "gpu", "gpu_shift", "seed", "candidates",
        "decisions", "shift_at", "epsilon", "min_window", "regimes",
        "static_regret_s", "adaptive_regret_s", "pre_shift", "post_shift",
        "folds", "explored", "corrections", "byte_identical",
        "no_telemetry_noop",
    ],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "rev": {"type": "string"},
        "gpu": {"type": "string"},
        "gpu_shift": {"type": "string"},
        "seed": {"type": "integer"},
        "candidates": {"type": "array", "items": {"type": "string"}},
        "decisions": {"type": "integer"},
        "shift_at": {"type": "integer"},
        "epsilon": {"type": "number"},
        "min_window": {"type": "integer"},
        "regimes": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "n", "k", "batch", "static_algo", "oracle_pre",
                    "oracle_post", "flipped", "times_pre_s", "times_post_s",
                ],
                "properties": {
                    "n": {"type": "integer"},
                    "k": {"type": "integer"},
                    "batch": {"type": "integer"},
                    "static_algo": {"type": "string"},
                    "oracle_pre": {"type": "string"},
                    "oracle_post": {"type": "string"},
                    "flipped": {"type": "boolean"},
                    "times_pre_s": _TIMES,
                    "times_post_s": _TIMES,
                },
            },
        },
        "static_regret_s": {"type": "number"},
        "adaptive_regret_s": {"type": "number"},
        "pre_shift": {
            "type": "object",
            "required": ["static_regret_s", "adaptive_regret_s"],
            "properties": {
                "static_regret_s": {"type": "number"},
                "adaptive_regret_s": {"type": "number"},
            },
        },
        "post_shift": {
            "type": "object",
            "required": ["static_regret_s", "adaptive_regret_s", "ratio"],
            "properties": {
                "static_regret_s": {"type": "number"},
                "adaptive_regret_s": {"type": "number"},
                #: null when adaptive post-shift regret is exactly zero
                "ratio": {"type": ["number", "null"]},
            },
        },
        "folds": {"type": "integer"},
        "explored": {"type": "integer"},
        "corrections": {"type": "integer"},
        "byte_identical": {"type": "boolean"},
        "no_telemetry_noop": {"type": "boolean"},
    },
}


# --------------------------------------------------------------------------- #
# measurement
# --------------------------------------------------------------------------- #
def measure_regime(
    cell: AdaptCell,
    *,
    gpu: str,
    gpu_shift: str,
    seed: int,
    candidates: tuple[str, ...] = CANDIDATES,
) -> dict:
    """One regime's measured-time tables on both devices.

    Simulated times are pure functions of (payload, algorithm, spec,
    seed), so measuring each pair once and replaying from the table is
    exact, not an approximation — and keeps the decision loop free of
    device work.
    """
    from ..api import topk
    from ..datagen import generate
    from ..device import get_spec
    from ..perf.costmodel import rank_algorithms

    data = generate("uniform", cell.n, batch=cell.batch, seed=seed)
    times = {}
    for phase, name in zip(_SHIFT_PHASES, (gpu, gpu_shift)):
        spec = get_spec(name)
        times[phase] = {
            algo: topk(data, cell.k, algo=algo, device=spec, seed=seed).time
            for algo in candidates
        }
    static_algo = rank_algorithms(
        n=cell.n,
        k=cell.k,
        batch=cell.batch,
        spec=get_spec(gpu),
        candidates=candidates,
    )[0].algo
    oracle_pre = min(times["pre"], key=times["pre"].get)
    oracle_post = min(times["post"], key=times["post"].get)
    return {
        "cell": cell,
        "data": data,
        "static_algo": static_algo,
        "oracle_pre": oracle_pre,
        "oracle_post": oracle_post,
        "times": times,
    }


def _replay(
    regimes: list[dict],
    *,
    gpu: str,
    seed: int,
    decisions: int,
    shift_at: int,
    epsilon: float,
    min_window: int,
    candidates: tuple[str, ...],
) -> dict:
    """Run the static and adaptive decision streams against the tables."""
    from ..device import get_spec
    from ..perf.adaptive import AdaptiveDispatcher, CorrectionStore

    belief = get_spec(gpu)
    store = CorrectionStore(min_window=min_window)
    dispatcher = AdaptiveDispatcher(
        corrections=store,
        epsilon=epsilon,
        seed=seed,
        candidates=candidates,
    )
    # the no-op control: same construction, never fed — must reproduce
    # the static stream exactly (what "telemetry off" degrades to)
    control = AdaptiveDispatcher(
        corrections=CorrectionStore(min_window=min_window),
        epsilon=epsilon,
        seed=seed,
        candidates=candidates,
    )
    regret = {
        "static": {"pre": 0.0, "post": 0.0},
        "adaptive": {"pre": 0.0, "post": 0.0},
    }
    chosen_algos: list[set] = [set() for _ in regimes]
    noop = True
    for t in range(decisions):
        entry = regimes[t % len(regimes)]
        cell = entry["cell"]
        phase = "pre" if t < shift_at else "post"
        times = entry["times"][phase]
        oracle_s = min(times.values())
        regret["static"][phase] += times[entry["static_algo"]] - oracle_s
        decision = dispatcher.choose(
            n=cell.n,
            k=cell.k,
            batch=cell.batch,
            spec=belief,
            site="bench.adapt",
        )
        chosen_algos[t % len(regimes)].add(decision.algo)
        regret["adaptive"][phase] += times[decision.algo] - oracle_s
        dispatcher.observe(
            decision.algo,
            n=cell.n,
            k=cell.k,
            batch=cell.batch,
            measured_s=times[decision.algo],
            spec=belief,
        )
        unfed = control.choose(
            n=cell.n,
            k=cell.k,
            batch=cell.batch,
            spec=belief,
            explore=False,
            site="bench.adapt",
        )
        if unfed.algo != entry["static_algo"]:
            noop = False
    noop = noop and control.corrections.folds == 0 and len(control.corrections) == 0
    return {
        "regret": regret,
        "chosen": chosen_algos,
        "noop": noop,
        "store": store,
        "dispatcher": dispatcher,
    }


def _byte_identity(
    regimes: list[dict],
    chosen: list[set],
    *,
    gpu: str,
    gpu_shift: str,
    seed: int,
) -> bool:
    """Re-run every (regime, chosen algorithm) pair on both devices and
    compare results byte-for-byte — adaptation must only change *which*
    algorithm runs, never what it returns."""
    from ..api import topk
    from ..device import get_spec

    for entry, algos in zip(regimes, chosen):
        cell = entry["cell"]
        for algo in sorted(algos):
            for name in (gpu, gpu_shift):
                spec = get_spec(name)
                first = topk(entry["data"], cell.k, algo=algo, device=spec, seed=seed)
                again = topk(entry["data"], cell.k, algo=algo, device=spec, seed=seed)
                if (
                    first.values.tobytes() != again.values.tobytes()
                    or first.indices.tobytes() != again.indices.tobytes()
                ):
                    return False
    return True


def collect_snapshot(
    regimes: tuple[AdaptCell, ...] = DEFAULT_REGIMES,
    *,
    gpu: str = "A100",
    gpu_shift: str = "V100",
    seed: int = 0,
    decisions: int = 240,
    shift_at: int | None = None,
    epsilon: float = 0.1,
    min_window: int = 4,
    candidates: tuple[str, ...] = CANDIDATES,
    rev: str | None = None,
    progress=None,
) -> dict:
    """Measure, replay, and assemble one ``repro.bench.adapt/v1`` payload."""
    if gpu_shift == gpu:
        raise ValueError("gpu_shift must differ from gpu — no shift, no bench")
    if shift_at is None:
        shift_at = decisions // 2
    if not 0 < shift_at < decisions:
        raise ValueError(f"shift_at must be inside (0, {decisions}), got {shift_at}")
    measured = []
    for cell in regimes:
        entry = measure_regime(
            cell, gpu=gpu, gpu_shift=gpu_shift, seed=seed, candidates=candidates
        )
        measured.append(entry)
        if progress is not None:
            progress(cell, entry)
    replay = _replay(
        measured,
        gpu=gpu,
        seed=seed,
        decisions=decisions,
        shift_at=shift_at,
        epsilon=epsilon,
        min_window=min_window,
        candidates=candidates,
    )
    byte_identical = _byte_identity(
        measured, replay["chosen"], gpu=gpu, gpu_shift=gpu_shift, seed=seed
    )
    regret = replay["regret"]
    static_post = regret["static"]["post"]
    adaptive_post = regret["adaptive"]["post"]
    ratio = static_post / adaptive_post if adaptive_post > 0 else None
    store = replay["store"]
    snapshot = {
        "schema": SCHEMA_ID,
        "rev": rev if rev is not None else git_rev(),
        "gpu": gpu,
        "gpu_shift": gpu_shift,
        "seed": int(seed),
        "candidates": list(candidates),
        "decisions": int(decisions),
        "shift_at": int(shift_at),
        "epsilon": float(epsilon),
        "min_window": int(min_window),
        "regimes": [
            {
                "n": e["cell"].n,
                "k": e["cell"].k,
                "batch": e["cell"].batch,
                "static_algo": e["static_algo"],
                "oracle_pre": e["oracle_pre"],
                "oracle_post": e["oracle_post"],
                "flipped": e["oracle_pre"] != e["oracle_post"],
                "times_pre_s": dict(sorted(e["times"]["pre"].items())),
                "times_post_s": dict(sorted(e["times"]["post"].items())),
            }
            for e in measured
        ],
        "static_regret_s": regret["static"]["pre"] + static_post,
        "adaptive_regret_s": regret["adaptive"]["pre"] + adaptive_post,
        "pre_shift": {
            "static_regret_s": regret["static"]["pre"],
            "adaptive_regret_s": regret["adaptive"]["pre"],
        },
        "post_shift": {
            "static_regret_s": static_post,
            "adaptive_regret_s": adaptive_post,
            "ratio": ratio,
        },
        "folds": store.folds,
        "explored": replay["dispatcher"].explored,
        "corrections": len(store),
        "byte_identical": byte_identical,
        "no_telemetry_noop": replay["noop"],
    }
    validate(snapshot, SNAPSHOT_SCHEMA)
    return snapshot


# --------------------------------------------------------------------------- #
# gating and rendering
# --------------------------------------------------------------------------- #
def gate_adapt(snapshot: dict, *, min_ratio: float = ACCEPT_RATIO) -> list[str]:
    """Every gate violation in ``snapshot`` (empty list = gate passes)."""
    failures: list[str] = []
    post = snapshot["post_shift"]
    if post["static_regret_s"] <= 0:
        failures.append(
            "static dispatch accumulated zero post-shift regret — the "
            "pinned regimes no longer exercise the shift; re-pin them"
        )
    elif post["ratio"] is not None and post["ratio"] < min_ratio:
        failures.append(
            f"post-shift regret ratio {post['ratio']:.2f}x below the "
            f">= {min_ratio:g}x acceptance bar (static "
            f"{post['static_regret_s']:.3e}s vs adaptive "
            f"{post['adaptive_regret_s']:.3e}s)"
        )
    if not snapshot["folds"]:
        failures.append("no correction ever folded — the learner never engaged")
    if not snapshot["byte_identical"]:
        failures.append(
            "byte-identity violated: a chosen (regime, algorithm) pair did "
            "not reproduce its results exactly on re-run"
        )
    if not snapshot["no_telemetry_noop"]:
        failures.append(
            "no-telemetry control deviated from static dispatch — "
            "adaptation is not a strict no-op without feedback"
        )
    return failures


def render_adapt_report(snapshot: dict) -> str:
    """The regret tables ``repro-topk adapt-bench`` prints."""
    out = [
        f"adapt-bench on {snapshot['gpu']} -> {snapshot['gpu_shift']} "
        f"(rev {snapshot['rev']}, seed {snapshot['seed']}): "
        f"{snapshot['decisions']} decisions, shift at {snapshot['shift_at']}"
    ]
    rows = []
    for r in snapshot["regimes"]:
        pre, post = r["times_pre_s"], r["times_post_s"]
        static_post = post[r["static_algo"]] / post[r["oracle_post"]]
        rows.append(
            (
                f"{r['n']:,}x{r['batch']} k={r['k']}",
                r["static_algo"],
                r["oracle_pre"],
                r["oracle_post"],
                "flip" if r["flipped"] else "-",
                f"{static_post:.2f}x",
                format_time(post[r["oracle_post"]]),
            )
        )
    out.append(
        format_table(
            ["regime", "static pick", "oracle pre", "oracle post", "shift",
             "static post regret", "oracle post"],
            rows,
        )
    )
    pre, post = snapshot["pre_shift"], snapshot["post_shift"]
    out.append(
        f"cumulative regret pre-shift:  static {format_time(pre['static_regret_s'])}"
        f"  adaptive {format_time(pre['adaptive_regret_s'])}"
    )
    ratio = post["ratio"]
    out.append(
        f"cumulative regret post-shift: static {format_time(post['static_regret_s'])}"
        f"  adaptive {format_time(post['adaptive_regret_s'])}"
        f"  ratio {'inf' if ratio is None else f'{ratio:.2f}x'}"
        f" (gate >= {ACCEPT_RATIO:g}x)"
    )
    out.append(
        f"learner: folds={snapshot['folds']} corrections={snapshot['corrections']} "
        f"explored={snapshot['explored']}  "
        f"byte_identical={'yes' if snapshot['byte_identical'] else 'NO'}  "
        f"no_telemetry_noop={'yes' if snapshot['no_telemetry_noop'] else 'NO'}"
    )
    return "\n".join(out)


def write_snapshot(snapshot: dict, path: Path | str) -> Path:
    """Validate and write the snapshot JSON to ``path``."""
    validate(snapshot, SNAPSHOT_SCHEMA)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path | str) -> dict:
    """Read and schema-validate a snapshot file."""
    payload = json.loads(Path(path).read_text())
    validate(payload, SNAPSHOT_SCHEMA)
    return payload
