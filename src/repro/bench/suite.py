"""One-call reproduction of the paper's whole evaluation.

The artifact's ``exp.sh`` turns two sweep outputs into Fig. 6, Fig. 7 and
Table 2; this module is the library equivalent: it runs every experiment
of Section 5 on the simulated device and returns (and optionally writes)
the reproduced tables, series and traces.  The per-figure pytest-benchmark
modules under ``benchmarks/`` drive the same code paths with assertions;
this entry point is for interactive and scripted use
(``python -m repro reproduce``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from .report import format_table, format_time, write_csv
from .runner import SweepResult, sweep
from .summary import table2
from ..datagen import distance_array, make_dataset
from ..perf import simulate_topk, sol_report


@dataclass
class PaperSuiteResult:
    """Everything `run_paper_suite` produced, as printable sections."""

    sections: list[tuple[str, str]] = field(default_factory=list)
    #: raw sweep behind Fig. 6 / Fig. 7 / Table 2
    sweep_result: SweepResult | None = None
    elapsed_s: float = 0.0

    def add(self, title: str, body: str) -> None:
        self.sections.append((title, body))

    def render(self) -> str:
        parts = []
        for title, body in self.sections:
            parts.append("=" * 72)
            parts.append(title)
            parts.append("=" * 72)
            parts.append(body)
            parts.append("")
        parts.append(f"(suite completed in {self.elapsed_s:.1f}s of wall time)")
        return "\n".join(parts)


def run_paper_suite(
    *,
    out_dir: str | Path | None = None,
    cap: int = 1 << 18,
    full: bool = False,
    seed: int = 0,
    workers: int = 1,
    timeout: float | None = None,
    progress=None,
) -> PaperSuiteResult:
    """Run every Section-5 experiment; ``full=True`` uses the paper grids.

    ``workers``/``timeout``/``progress`` are forwarded to the sweep engine
    (:func:`repro.exec.parallel_sweep`) for the two big grids; the
    single-point experiments (timelines, ablations, devices, ANN) always
    run inline.
    """
    t0 = time.perf_counter()
    result = PaperSuiteResult()
    out = Path(out_dir) if out_dir is not None else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)

    # ---- the Fig. 6 + Fig. 7 grid, summarised into Table 2 ---------------
    ns = [1 << p for p in ((11, 13, 15, 17, 20, 23, 25, 30) if full else (11, 15, 20, 25, 30))]
    ks = (32, 256, 32768)
    grid = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=ns,
        ks=ks,
        batches=(1,),
        cap=cap,
        seed=seed,
        workers=workers,
        timeout=timeout,
        progress=progress,
    )
    b100 = sweep(
        distributions=("uniform", "normal", "adversarial"),
        ns=[n for n in ns if n <= 1 << 24],
        ks=ks,
        batches=(100,),
        cap=cap,
        seed=seed,
        workers=workers,
        timeout=timeout,
        progress=progress,
    )
    for p in b100.points:
        grid.add(p)
    result.sweep_result = grid
    if out is not None:
        write_csv(grid.points, out / "paper_grid.csv")

    rows = table2(grid)
    result.add(
        "Table 2 — speedup ranges",
        format_table(
            ["batch", "distribution", "AIR vs Radix", "Grid vs Block", "AIR vs SOTA"],
            [
                (
                    r.batch,
                    r.distribution,
                    r.air_vs_radix.formatted(),
                    r.grid_vs_block.formatted(),
                    r.air_vs_sota.formatted(),
                )
                for r in rows
            ],
        ),
    )

    # ---- Fig. 8: timelines ------------------------------------------------
    radix = simulate_topk(
        "radix_select", distribution="uniform", n=1 << 23, k=2048, cap=cap, seed=seed
    )
    air = simulate_topk(
        "air_topk", distribution="uniform", n=1 << 23, k=2048, cap=cap, seed=seed
    )
    result.add(
        "Fig. 8 — timelines at N=2^23, K=2048",
        "RadixSelect:\n"
        + radix.device.timeline.render()
        + "\n\nAIR Top-K:\n"
        + air.device.timeline.render(),
    )

    # ---- Table 3: SOL -----------------------------------------------------
    big = simulate_topk(
        "air_topk", distribution="uniform", n=1 << 30, k=2048, cap=cap, seed=seed
    )
    result.add(
        "Table 3 — AIR Top-K kernel SOL at N=2^30, K=2048",
        format_table(
            ["kernel", "time %", "memory SOL", "compute SOL"],
            [r.row() for r in sol_report(big.device)],
        ),
    )

    # ---- Fig. 9 / 10 / 11: ablations ---------------------------------------
    ablation_rows = []
    for m in (10, 20):
        n = 1 << (28 if full else 25)
        on = simulate_topk(
            "air_topk", distribution="adversarial", n=n, k=2048,
            adversarial_m=m, cap=cap, seed=seed,
        )
        off = simulate_topk(
            "air_topk", distribution="adversarial", n=n, k=2048,
            adversarial_m=m, cap=cap, seed=seed, adaptive=False,
        )
        ablation_rows.append(
            (f"adaptive strategy, M={m}", f"{off.time / on.time:.2f}x")
        )
    es_on = simulate_topk(
        "air_topk", distribution="uniform", n=1 << 20, k=1 << 20, cap=cap, seed=seed
    )
    es_off = simulate_topk(
        "air_topk", distribution="uniform", n=1 << 20, k=1 << 20, cap=cap,
        seed=seed, early_stop=False,
    )
    ablation_rows.append(
        (
            "early stopping (K=N=2^20)",
            f"{(es_off.time - es_on.time) / es_off.time * 100:.1f}% faster",
        )
    )
    q_sh = simulate_topk(
        "grid_select", distribution="uniform", n=1 << 26, k=256, cap=cap, seed=seed
    )
    q_th = simulate_topk(
        "grid_select", distribution="uniform", n=1 << 26, k=256, cap=cap,
        seed=seed, queue="thread",
    )
    ablation_rows.append(
        ("shared vs per-thread queue (N=2^26)", f"{q_th.time / q_sh.time:.2f}x")
    )
    result.add(
        "Figs. 9/10/11 — design ablations",
        format_table(["ablation", "benefit"], ablation_rows),
    )

    # ---- Fig. 12: devices ---------------------------------------------------
    from ..device import PRESETS

    device_rows = []
    for name in ("A100", "H100", "A10"):
        run = simulate_topk(
            "air_topk", distribution="uniform", n=1 << 30, k=2048,
            spec=PRESETS[name], cap=cap, seed=seed,
        )
        device_rows.append((name, format_time(run.time)))
    result.add(
        "Fig. 12 — AIR Top-K across boards at N=2^30, K=2048",
        format_table(["GPU", "time"], device_rows),
    )

    # ---- Fig. 13: ANN stand-ins --------------------------------------------
    ann_rows = []
    for ds_name in ("deep1b", "sift"):
        dataset = make_dataset(ds_name, 1 << 17, seed=seed)
        dists = distance_array(dataset, 0)
        for k in (10, 100):
            air_t = simulate_topk(
                "air_topk", distribution="ann", n=dists.shape[0], k=k, data=dists
            ).time
            grid_t = simulate_topk(
                "grid_select", distribution="ann", n=dists.shape[0], k=k, data=dists
            ).time
            ann_rows.append(
                (dataset.name, k, format_time(air_t), format_time(grid_t))
            )
    result.add(
        "Fig. 13 — ANN distance arrays at N=2^17",
        format_table(["dataset", "K", "AIR Top-K", "GridSelect"], ann_rows),
    )

    result.elapsed_s = time.perf_counter() - t0
    if out is not None:
        (out / "paper_suite.txt").write_text(result.render() + "\n")
        from ..obs import build_manifest, get_metrics, write_manifest

        artifacts = {"csv": "paper_grid.csv", "report": "paper_suite.txt"}
        registry = get_metrics()
        if registry is not None:
            registry.write(out / "metrics.json")
            artifacts["metrics"] = "metrics.json"
        write_manifest(
            build_manifest(
                command="suite",
                config={
                    "cap": cap,
                    "full": full,
                    "workers": workers,
                    "timeout": timeout,
                    "ns": list(ns),
                    "ks": list(ks),
                    "distributions": ["uniform", "normal", "adversarial"],
                    "batches": [1, 100],
                },
                seed=seed,
                points=grid.points,
                wall_time_s=result.elapsed_s,
                artifacts=artifacts,
            ),
            out / "manifest.json",
        )
    return result
