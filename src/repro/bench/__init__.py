"""Benchmark harness: sweeps, SOTA computation, Table 2 summary, reporting."""

from .runner import (
    ALL_ALGORITHMS,
    BASELINE_ALGORITHMS,
    OUR_ALGORITHMS,
    BenchPoint,
    SweepResult,
    run_point,
    sweep,
)
from .suite import PaperSuiteResult, run_paper_suite
from .summary import SpeedupRange, Table2Row, speedup_range, table2
from .ascii_plot import ascii_plot, plot_sweep
from .report import (
    format_dispatch_table,
    format_series_table,
    format_table,
    format_time,
    geomean,
    read_csv,
    write_csv,
)

__all__ = [
    "ALL_ALGORITHMS",
    "BASELINE_ALGORITHMS",
    "OUR_ALGORITHMS",
    "BenchPoint",
    "SweepResult",
    "run_point",
    "sweep",
    "PaperSuiteResult",
    "run_paper_suite",
    "SpeedupRange",
    "Table2Row",
    "speedup_range",
    "table2",
    "ascii_plot",
    "plot_sweep",
    "format_dispatch_table",
    "format_series_table",
    "format_table",
    "format_time",
    "geomean",
    "read_csv",
    "write_csv",
]
