"""Benchmark harness: sweeps, SOTA computation, Table 2 summary, reporting."""

from .runner import (
    ALL_ALGORITHMS,
    BASELINE_ALGORITHMS,
    OUR_ALGORITHMS,
    BenchPoint,
    SweepResult,
    run_point,
    sweep,
)
from .suite import PaperSuiteResult, run_paper_suite
from .summary import SpeedupRange, Table2Row, speedup_range, table2
from .ascii_plot import ascii_plot, plot_sweep
from .report import (
    REPORT_QUANTILES,
    format_dispatch_table,
    format_percentile_table,
    format_series_table,
    format_status_summary,
    format_table,
    format_time,
    geomean,
    percentile,
    percentiles,
    read_csv,
    status_counts,
    sweep_time_summary,
    write_csv,
)

__all__ = [
    "ALL_ALGORITHMS",
    "BASELINE_ALGORITHMS",
    "OUR_ALGORITHMS",
    "BenchPoint",
    "SweepResult",
    "run_point",
    "sweep",
    "PaperSuiteResult",
    "run_paper_suite",
    "SpeedupRange",
    "Table2Row",
    "speedup_range",
    "table2",
    "ascii_plot",
    "plot_sweep",
    "REPORT_QUANTILES",
    "format_dispatch_table",
    "format_percentile_table",
    "format_series_table",
    "format_status_summary",
    "format_table",
    "format_time",
    "geomean",
    "percentile",
    "percentiles",
    "read_csv",
    "status_counts",
    "sweep_time_summary",
    "write_csv",
]
