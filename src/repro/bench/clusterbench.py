"""Cluster bench: node-count scaling sweep plus the chaos acceptance cell.

Two measurements into one ``repro.bench.cluster/v1`` snapshot:

* **Sweep** — the same 200 QPS request trace served by clusters of
  1, 2, 4... nodes.  The headline is ``capacity_rps`` — executed
  requests per second of *bottleneck-node* busy time, the cluster's
  throughput ceiling — and ``speedup`` against the single-node cell.
  The acceptance gate requires near-linear scaling:
  >= :data:`ACCEPT_SPEEDUP` x at :data:`ACCEPT_NODES` nodes.
* **Chaos** — the pinned cluster fault plan
  (``benchmarks/fault_plans/cluster.json``: one sticky ``node_crash``
  replica plus transient ``node_partition`` churn and node-level
  stragglers) against a 4-node R=2 cluster at 200 QPS.  The gate
  requires >= :data:`ACCEPT_AVAILABILITY` availability with at least
  one actually-crashed replica (so the assertion can never pass
  vacuously).

Both cells run entirely in virtual time on the simulated device, so a
snapshot is a pure function of (seed, config) — re-runs are
byte-identical and the gates are deterministic, not flaky.  CI runs this
via ``repro-topk cluster-bench`` — see docs/cluster.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from typing import TYPE_CHECKING

from ..faults import FaultPlan, FaultRule, fault_draw
from ..obs.schema import validate
from .perfgate import git_rev
from .report import format_table, format_time

if TYPE_CHECKING:  # real imports are lazy: cluster -> serve -> bench cycle
    from ..cluster import ClusterRouter
    from ..serve import LoadSpec, ServeConfig

SCHEMA_ID = "repro.bench.cluster/v1"

#: acceptance gate: the sweep's ACCEPT_NODES-node cell must reach this
#: capacity multiple of the single-node cell
ACCEPT_NODES = 4
ACCEPT_SPEEDUP = 3.0
#: chaos gate: answered fraction under the pinned fault plan
ACCEPT_AVAILABILITY = 0.99

#: node counts the default sweep visits
DEFAULT_NODE_COUNTS = (1, 2, 4)

#: the pinned chaos scenario, mirrored on disk at
#: benchmarks/fault_plans/cluster.json (tests assert they stay in sync).
#: Under seed 3 the sticky node_crash rule takes down exactly node 0 of
#: a 4-node cluster — one crashed replica, per the acceptance wording.
DEFAULT_CHAOS_PLAN = FaultPlan(
    seed=3,
    rules=(
        FaultRule(kind="node_crash", rate=0.3, site="cluster.node", sticky=True),
        FaultRule(kind="node_partition", rate=0.05, site="cluster.node"),
        FaultRule(kind="straggler", rate=0.05, site="serve.shard", factor=4.0),
    ),
)


def sweep_spec(*, seed: int = 0, tiny: bool = False) -> LoadSpec:
    """The pinned scaling workload (200 QPS acceptance load).

    n = 2^22 puts the per-request device time well past the launch
    overheads, so partitioning has real linear work to divide; the
    bounded payload pool keeps host wall-clock down (repeats come from
    node result caches, which the capacity metric excludes on both
    sides of the comparison).
    """
    from ..serve import LoadSpec

    if tiny:
        return LoadSpec(
            qps=200.0, duration_s=0.25, n=1 << 16, k=64,
            payload_pool=16, seed=seed,
        )
    return LoadSpec(
        qps=200.0, duration_s=1.0, n=1 << 22, k=256,
        payload_pool=32, seed=seed,
    )


def chaos_spec(*, seed: int = 0, tiny: bool = False) -> LoadSpec:
    """The chaos-cell workload: availability, not throughput, so the
    payloads stay small and the request count high."""
    from ..serve import LoadSpec

    return LoadSpec(
        qps=200.0,
        duration_s=0.25 if tiny else 1.0,
        n=1 << 15,
        k=32,
        payload_pool=24,
        seed=seed,
    )


def node_template(*, gpu: str | None = None, seed: int = 0) -> ServeConfig:
    """The per-node service config both cells use."""
    from ..serve import ServeConfig

    return ServeConfig(
        algo="auto",
        device=gpu,
        max_batch=64,
        max_delay_s=0.15,
        seed=seed,
    )


SNAPSHOT_SCHEMA = {
    "type": "object",
    "required": [
        "schema", "rev", "gpu", "seed", "spec", "cluster", "sweep", "chaos",
    ],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "rev": {"type": "string"},
        "gpu": {"type": "string"},
        "seed": {"type": "integer"},
        "spec": {
            "type": "object",
            "required": ["qps", "duration_s", "n", "k", "payload_pool"],
            "properties": {
                "qps": {"type": "number"},
                "duration_s": {"type": "number"},
                "n": {"type": "integer"},
                "k": {"type": "integer"},
                "payload_pool": {"type": "integer"},
            },
        },
        "cluster": {
            "type": "object",
            "required": ["replication", "placement", "partitions"],
            "properties": {
                "replication": {"type": "integer"},
                "placement": {"type": "string"},
                "partitions": {"type": ["integer", "null"]},
            },
        },
        "sweep": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "nodes", "requests", "served", "degraded", "shed",
                    "timeout", "failed", "availability", "capacity_rps",
                    "speedup", "latency_p50_s", "latency_p99_s",
                    "bottleneck_busy_s", "node_busy_s", "batches",
                    "mean_occupancy", "failovers",
                ],
                "properties": {
                    "nodes": {"type": "integer"},
                    "requests": {"type": "integer"},
                    "served": {"type": "integer"},
                    "degraded": {"type": "integer"},
                    "shed": {"type": "integer"},
                    "timeout": {"type": "integer"},
                    "failed": {"type": "integer"},
                    "availability": {"type": "number"},
                    "capacity_rps": {"type": "number"},
                    "speedup": {"type": "number"},
                    "latency_p50_s": {"type": ["number", "null"]},
                    "latency_p99_s": {"type": ["number", "null"]},
                    "bottleneck_busy_s": {"type": "number"},
                    "node_busy_s": {"type": "array"},
                    "batches": {"type": "integer"},
                    "mean_occupancy": {"type": "number"},
                    "failovers": {"type": "integer"},
                },
            },
        },
        "chaos": {
            "type": ["object", "null"],
            "required": [
                "nodes", "replication", "plan_seed", "crashed_nodes",
                "requests", "availability", "served", "degraded", "failed",
                "timeout", "shed", "failovers", "lost_partitions",
                "wasted_dispatches", "faults", "capacity_rps",
            ],
            "properties": {
                "nodes": {"type": "integer"},
                "replication": {"type": "integer"},
                "plan_seed": {"type": "integer"},
                "crashed_nodes": {"type": "array"},
                "requests": {"type": "integer"},
                "availability": {"type": "number"},
                "served": {"type": "integer"},
                "degraded": {"type": "integer"},
                "failed": {"type": "integer"},
                "timeout": {"type": "integer"},
                "shed": {"type": "integer"},
                "failovers": {"type": "integer"},
                "lost_partitions": {"type": "integer"},
                "wasted_dispatches": {"type": "integer"},
                "faults": {"type": "object"},
                "capacity_rps": {"type": "number"},
            },
        },
    },
}


def crashed_nodes(plan: FaultPlan, nodes: int) -> list[int]:
    """Nodes a plan's *sticky* ``node_crash`` rules keep down for the
    whole run (the epoch key is stripped, so one pure draw per node)."""
    down = []
    for node in range(nodes):
        for rule in plan.rules:
            if rule.kind != "node_crash" or not rule.sticky:
                continue
            if not rule.matches("cluster.node") or rule.rate <= 0.0:
                continue
            draw = fault_draw(
                plan.seed, "node_crash", "cluster.node", f"node={node}"
            )
            if draw < rule.rate:
                down.append(node)
                break
    return down


def measure_point(
    nodes: int,
    requests: list,
    *,
    replication: int = 2,
    placement: str = "least-loaded",
    partitions: int | None = None,
    template: ServeConfig | None = None,
    faults: FaultPlan | None = None,
    seed: int = 0,
    workers: int = 1,
) -> tuple[dict, ClusterRouter]:
    """Serve one trace on an N-node cluster; returns (cell, router)."""
    from ..cluster import ClusterConfig, ClusterRouter

    router = ClusterRouter(
        ClusterConfig(
            nodes=nodes,
            replication=min(replication, nodes),
            placement=placement,
            partitions=partitions,
            node_config=template or node_template(seed=seed),
            faults=faults,
            seed=seed,
            workers=workers,
        )
    )
    stats = router.run(requests)
    pcts = stats.latency_percentiles((50.0, 99.0))
    cell = {
        "nodes": nodes,
        "requests": stats.total,
        "served": stats.served,
        "degraded": stats.degraded,
        "shed": stats.shed,
        "timeout": stats.timeout,
        "failed": stats.failed,
        "availability": stats.availability,
        "capacity_rps": stats.capacity_rps,
        "speedup": 1.0,  # filled against the 1-node cell by the caller
        "latency_p50_s": pcts[50.0],
        "latency_p99_s": pcts[99.0],
        "bottleneck_busy_s": stats.bottleneck_busy_s,
        "node_busy_s": [float(b) for b in stats.node_busy_s],
        "batches": stats.batches,
        "mean_occupancy": stats.mean_occupancy,
        "failovers": stats.failovers,
    }
    return cell, router


def measure_chaos(
    *,
    plan: FaultPlan,
    nodes: int = 4,
    replication: int = 2,
    placement: str = "least-loaded",
    gpu: str | None = None,
    seed: int = 0,
    workers: int = 1,
    tiny: bool = False,
) -> dict:
    """The availability cell: the pinned plan against an R-replicated
    cluster at the 200 QPS acceptance load."""
    from ..cluster import ClusterConfig, ClusterRouter
    from ..serve import build_requests

    requests = build_requests(chaos_spec(seed=seed, tiny=tiny))
    router = ClusterRouter(
        ClusterConfig(
            nodes=nodes,
            replication=replication,
            placement=placement,
            partition_min_n=1 << 14,
            node_config=node_template(gpu=gpu, seed=seed),
            faults=plan,
            seed=seed,
            workers=workers,
        )
    )
    stats = router.run(requests)
    return {
        "nodes": nodes,
        "replication": replication,
        "plan_seed": plan.seed,
        "crashed_nodes": crashed_nodes(plan, nodes),
        "requests": stats.total,
        "availability": stats.availability,
        "served": stats.served,
        "degraded": stats.degraded,
        "failed": stats.failed,
        "timeout": stats.timeout,
        "shed": stats.shed,
        "failovers": stats.failovers,
        "lost_partitions": stats.lost_partitions,
        "wasted_dispatches": stats.wasted_dispatches,
        "faults": dict(stats.faults),
        "capacity_rps": stats.capacity_rps,
    }


def collect_snapshot(
    *,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    replication: int = 2,
    placement: str = "least-loaded",
    partitions: int | None = None,
    gpu: str = "A100",
    seed: int = 0,
    workers: int = 1,
    chaos_plan: FaultPlan | None = DEFAULT_CHAOS_PLAN,
    tiny: bool = False,
    rev: str | None = None,
    progress=None,
) -> dict:
    """Measure the sweep (and optionally the chaos cell) into a
    validated ``repro.bench.cluster/v1`` payload."""
    from ..serve import build_requests

    spec = sweep_spec(seed=seed, tiny=tiny)
    requests = build_requests(spec)
    template = node_template(gpu=gpu, seed=seed)
    sweep = []
    base_capacity = None
    for nodes in node_counts:
        cell, _router = measure_point(
            nodes,
            requests,
            replication=replication,
            placement=placement,
            partitions=partitions,
            template=template,
            seed=seed,
            workers=workers,
        )
        if base_capacity is None:
            base_capacity = cell["capacity_rps"]
        cell["speedup"] = (
            cell["capacity_rps"] / base_capacity if base_capacity else 0.0
        )
        sweep.append(cell)
        if progress is not None:
            progress(cell)
    snapshot = {
        "schema": SCHEMA_ID,
        "rev": rev if rev is not None else git_rev(),
        "gpu": gpu,
        "seed": int(seed),
        "spec": {
            "qps": spec.qps,
            "duration_s": spec.duration_s,
            "n": spec.n,
            "k": spec.k,
            "payload_pool": spec.payload_pool,
        },
        "cluster": {
            "replication": replication,
            "placement": placement,
            "partitions": partitions,
        },
        "sweep": sweep,
        "chaos": (
            measure_chaos(
                plan=chaos_plan,
                replication=replication,
                placement=placement,
                gpu=gpu,
                seed=seed,
                workers=workers,
                tiny=tiny,
            )
            if chaos_plan is not None
            else None
        ),
    }
    validate(snapshot, SNAPSHOT_SCHEMA)
    return snapshot


def gate_cluster(
    snapshot: dict,
    *,
    min_speedup: float = ACCEPT_SPEEDUP,
    at_nodes: int = ACCEPT_NODES,
    min_availability: float = ACCEPT_AVAILABILITY,
) -> list[str]:
    """Every gate violation in ``snapshot`` (empty list = gates pass).

    Two contracts: the ``at_nodes``-node sweep cell scales capacity by
    >= ``min_speedup`` over one node at full availability, and the chaos
    cell (when present) sustains >= ``min_availability`` with at least
    one genuinely crashed replica.
    """
    failures: list[str] = []
    cells = {cell["nodes"]: cell for cell in snapshot["sweep"]}
    if at_nodes in cells and 1 in cells:
        cell = cells[at_nodes]
        if cell["speedup"] < min_speedup:
            failures.append(
                f"sweep: {at_nodes}-node capacity is {cell['speedup']:.2f}x "
                f"the single node, need >= {min_speedup:g}x "
                f"({cell['capacity_rps']:,.0f} vs "
                f"{cells[1]['capacity_rps']:,.0f} rps)"
            )
        for c in snapshot["sweep"]:
            if c["availability"] < 1.0:
                failures.append(
                    f"sweep: {c['nodes']}-node cell lost requests on a "
                    f"healthy cluster (availability {c['availability']:.4f})"
                )
    elif at_nodes in cells or 1 in cells:
        failures.append(
            f"sweep: need both the 1-node and {at_nodes}-node cells to "
            f"gate scaling, got node counts {sorted(cells)}"
        )
    chaos = snapshot.get("chaos")
    if chaos is not None:
        if not chaos["crashed_nodes"]:
            failures.append(
                "chaos: the pinned plan crashed no replica — the "
                "availability assertion would be vacuous"
            )
        if chaos["availability"] < min_availability:
            failures.append(
                f"chaos: availability {chaos['availability']:.4f} below "
                f"the {min_availability:.0%} SLO with "
                f"{len(chaos['crashed_nodes'])} crashed replica(s)"
            )
    return failures


def render_cluster_report(snapshot: dict) -> str:
    """The scaling table ``repro-topk cluster-bench`` prints."""
    spec = snapshot["spec"]
    cluster = snapshot["cluster"]
    out = [
        f"cluster-bench on {snapshot['gpu']} (rev {snapshot['rev']}, "
        f"seed {snapshot['seed']}): {spec['qps']:g} QPS x "
        f"{spec['duration_s']:g}s, n={spec['n']:,} k={spec['k']}, "
        f"R={cluster['replication']} placement={cluster['placement']}"
    ]
    rows = [
        (
            str(c["nodes"]),
            str(c["requests"]),
            f"{c['availability']:.4f}",
            f"{c['capacity_rps']:,.0f}",
            f"{c['speedup']:.2f}x",
            format_time(c["latency_p50_s"]) if c["latency_p50_s"] else "-",
            format_time(c["latency_p99_s"]) if c["latency_p99_s"] else "-",
            f"{c['mean_occupancy']:.1f}",
            f"{c['bottleneck_busy_s'] * 1e3:.2f} ms",
        )
        for c in snapshot["sweep"]
    ]
    out.append(
        format_table(
            ["nodes", "reqs", "avail", "capacity rps", "speedup",
             "p50", "p99", "occ", "bottleneck"],
            rows,
        )
    )
    chaos = snapshot.get("chaos")
    if chaos is not None:
        out.append(
            f"\nchaos: {chaos['nodes']} nodes R={chaos['replication']} "
            f"(plan seed {chaos['plan_seed']}, crashed "
            f"{chaos['crashed_nodes']}): availability "
            f"{chaos['availability']:.4f} over {chaos['requests']} requests "
            f"— served={chaos['served']} degraded={chaos['degraded']} "
            f"failed={chaos['failed']} timeout={chaos['timeout']}, "
            f"failovers={chaos['failovers']} "
            f"lost_partitions={chaos['lost_partitions']} "
            f"wasted={chaos['wasted_dispatches']}, faults={chaos['faults']}"
        )
    return "\n".join(out)


def write_snapshot(snapshot: dict, path: Path | str) -> Path:
    """Validate and write the snapshot JSON to ``path``."""
    validate(snapshot, SNAPSHOT_SCHEMA)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path | str) -> dict:
    """Read and schema-validate a snapshot file."""
    payload = json.loads(Path(path).read_text())
    validate(payload, SNAPSHOT_SCHEMA)
    return payload
