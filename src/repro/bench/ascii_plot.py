"""ASCII log-log line plots — textual renderings of the paper's figures.

The paper's Fig. 6/7/9-13 are log-log running-time plots.  A terminal
reproduction can't draw them, but an ASCII grid with one mark per
algorithm preserves what the figures communicate: orderings, slopes and
crossovers.  Used by the benchmark modules alongside the numeric tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: marks assigned to series, in declaration order
_MARKS = "ox+*#@%&^~st"


def _log(value: float) -> float:
    if value <= 0:
        raise ValueError(f"log-log plots need positive values, got {value}")
    return math.log10(value)


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float | None]]],
    *,
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "time",
    y_formatter=None,
) -> str:
    """Render named (x, y) series on a log-log ASCII grid.

    ``series`` maps a label to its points; ``None`` y-values (unsupported
    problem sizes — the gaps in the paper's figures) are skipped.  Returns
    the plot followed by a legend.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("plot area too small")
    points = [
        (x, y)
        for pts in series.values()
        for x, y in pts
        if y is not None
    ]
    if not points:
        return "(no data to plot)"
    xs = [_log(x) for x, _ in points]
    ys = [_log(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for mark, (label, pts) in zip(_MARKS, series.items()):
        legend.append(f"{mark}={label}")
        for x, y in pts:
            if y is None:
                continue
            col = round((_log(x) - x_lo) / x_span * (width - 1))
            row = round((_log(y) - y_lo) / y_span * (height - 1))
            cell = grid[height - 1 - row]
            # stack collisions by keeping the first mark (best series wins
            # visual priority by declaration order)
            if cell[col] == " ":
                cell[col] = mark
    if len(series) > len(_MARKS):
        legend.append(f"(+{len(series) - len(_MARKS)} series beyond mark set)")

    fmt = y_formatter or (lambda v: f"{v:.3g}")
    top_label = fmt(10**y_hi)
    bottom_label = fmt(10**y_lo)
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines = [f"{y_label}".rjust(gutter)]
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else (bottom_label if i == height - 1 else "")
        lines.append(f"{prefix.rjust(gutter)}|{''.join(row)}|")
    x_lo_label = _pow_label(10**x_lo)
    x_hi_label = _pow_label(10**x_hi)
    axis = f"{x_lo_label} {x_label} {x_hi_label}".center(width)
    lines.append(" " * gutter + " " + axis)
    lines.append(" " * gutter + " " + ", ".join(legend))
    return "\n".join(lines)


#: sparkline intensity ramp, lowest to highest
_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float | None], *, levels: str = _SPARK_LEVELS) -> str:
    """One character per value, scaled to the series' own min..max.

    ``None`` values render as gaps; a flat series renders at the lowest
    non-empty level.  Pure ASCII so the serve-report dashboard survives
    any terminal or CI log.
    """
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(" ")
        elif span <= 0:
            out.append(levels[1])
        else:
            idx = 1 + round((v - lo) / span * (len(levels) - 2))
            out.append(levels[idx])
    return "".join(out)


def _pow_label(x: float) -> str:
    """Label x as 2^p when it is (close to) a power of two."""
    if x > 0:
        p = math.log2(x)
        if abs(p - round(p)) < 1e-6:
            return f"2^{round(p)}"
    return f"{x:.3g}"


def plot_sweep(
    result,
    *,
    algos: Sequence[str],
    distribution: str,
    batch: int,
    vary: str,
    fixed: dict,
    **kwargs,
) -> str:
    """ASCII plot of one figure panel straight from a SweepResult."""
    series = {
        algo: result.series(
            algo, distribution=distribution, batch=batch, vary=vary, fixed=fixed
        )
        for algo in algos
    }
    return ascii_plot(
        {k: v for k, v in series.items() if any(y is not None for _, y in v)},
        x_label=vary.upper(),
        y_formatter=lambda v: f"{v * 1e6:.3g}us",
        **kwargs,
    )
