"""Recall bench: the approximate tier's Pareto sweep and quality gate.

The approximate algorithms trade recall for time, so their benchmark is
two-dimensional: for each pinned ``(n, k, batch, distribution)`` regime
this module measures the best *exact* baseline, then walks each
approximate method across a small config ladder (bucket ratios,
per-partition quotas) and records, per point,

* ``sim_time_s`` / ``speedup`` — simulated seconds and the ratio against
  the best exact baseline (``qps_capacity = batch / sim_time_s`` is the
  serving-facing reading of the same number);
* ``expected_recall`` / ``recall_floor`` — the analytic hypergeometric
  expectation and the Hoeffding high-probability floor the result
  promises (:mod:`repro.approx.recall`);
* ``empirical_recall`` — measured against the ``np.partition`` ground
  truth of the actual payload, value-based so ties never penalise an
  equally good answer.

Every point is **gated**: ``empirical_recall >= recall_floor`` must hold
(the floor is a promise attached to served results, so an empirical miss
is a correctness bug, not noise).  Regimes marked ``acceptance=True``
additionally gate the headline claim — at least one approximate point at
recall >= :data:`ACCEPT_RECALL` must beat the best exact baseline by
:data:`ACCEPT_SPEEDUP`.  A seeded mixed exact/approx serving run rides
along and must finish with zero recall violations, tying the offline
Pareto front to the SLO dispatcher that consumes it.

Snapshots are schema-validated JSON (``repro.bench.recall/v1``); CI runs
this via ``repro-topk recall-bench`` — see docs/approximate.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs.schema import validate
from .perfgate import git_rev
from .report import format_table, format_time

SCHEMA_ID = "repro.bench.recall/v1"

#: headline acceptance gate of ``acceptance=True`` regimes: some
#: approximate point must reach this speedup at this empirical recall
ACCEPT_SPEEDUP = 2.0
ACCEPT_RECALL = 0.95

#: exact algorithms raced per regime; the fastest one is the baseline
#: every approximate point's speedup is measured against
EXACT_BASELINES = ("air_topk", "drtopk_hybrid")


@dataclass(frozen=True)
class RecallCell:
    """One pinned regime of the recall-bench grid."""

    n: int
    k: int
    batch: int
    distribution: str = "uniform"
    #: acceptance regimes gate the headline >= 2x-at-0.95-recall claim;
    #: other regimes only gate the per-point empirical-vs-floor contract
    acceptance: bool = False


#: the pinned grid.  The adversarial cell is the acceptance regime: the
#: first radix pass cannot discriminate adversarial keys, so the exact
#: multi-pass baselines pay their worst case while the single-read
#: approximate schemes are distribution-oblivious — the regime where the
#: approximate tier's >= 2x headline honestly holds.  The uniform cells
#: track the friendlier regimes where exact methods are near their best.
DEFAULT_REGIMES: tuple[RecallCell, ...] = (
    RecallCell(1 << 16, 64, 8, "uniform"),
    RecallCell(1 << 20, 256, 4, "uniform"),
    RecallCell(1 << 22, 1024, 8, "adversarial", acceptance=True),
)

#: reduced grid for tests and smoke runs (no acceptance gate: the tiny
#: problem sizes sit in the launch-latency floor where speedup is noise)
TINY_REGIMES: tuple[RecallCell, ...] = (
    RecallCell(1 << 14, 64, 4, "uniform"),
)

#: per-method config ladder walked in every regime — the knobs that
#: trace each method's recall/time Pareto front.  ``None`` entries mean
#: "the method's default plan".
APPROX_VARIANTS: tuple[tuple[str, str, dict | None], ...] = (
    # bucket_approx: more buckets = fewer collisions = higher recall,
    # paid for with a larger stage-2 merge
    ("bucket_approx", "b=8k", {"bucket_ratio": 8}),
    ("bucket_approx", "b=16k", None),
    ("bucket_approx", "b=32k", {"bucket_ratio": 32}),
    # twostage_approx: a deeper per-partition quota k'' buys recall at
    # fixed partition count (quadratically fewer misses per unit kept)
    ("twostage_approx", "k''=1", {"stage_k": 1}),
    ("twostage_approx", "k''=2", None),
    ("twostage_approx", "k''=4", {"stage_k": 4}),
)

SNAPSHOT_SCHEMA = {
    "type": "object",
    "required": ["schema", "rev", "gpu", "seed", "cells", "serve"],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "rev": {"type": "string"},
        "gpu": {"type": "string"},
        "seed": {"type": "integer"},
        "cells": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "n", "k", "batch", "distribution", "acceptance",
                    "exact_algo", "exact_time_s", "points",
                ],
                "properties": {
                    "n": {"type": "integer"},
                    "k": {"type": "integer"},
                    "batch": {"type": "integer"},
                    "distribution": {"type": "string"},
                    "acceptance": {"type": "boolean"},
                    "exact_algo": {"type": "string"},
                    "exact_time_s": {"type": "number"},
                    "points": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "algo", "label", "params", "sim_time_s",
                                "speedup", "qps_capacity", "expected_recall",
                                "recall_floor", "empirical_recall", "gate_ok",
                            ],
                            "properties": {
                                "algo": {"type": "string"},
                                "label": {"type": "string"},
                                "params": {"type": "object"},
                                "sim_time_s": {"type": "number"},
                                "speedup": {"type": "number"},
                                "qps_capacity": {"type": "number"},
                                "expected_recall": {"type": "number"},
                                "recall_floor": {"type": "number"},
                                "empirical_recall": {"type": "number"},
                                "gate_ok": {"type": "boolean"},
                            },
                        },
                    },
                },
            },
        },
        "serve": {
            "type": "object",
            "required": [
                "requests", "served", "approx_served", "recall_violations",
                "min_recall", "approx_fraction",
            ],
            "properties": {
                "requests": {"type": "integer"},
                "served": {"type": "integer"},
                "approx_served": {"type": "integer"},
                "recall_violations": {"type": "integer"},
                "min_recall": {"type": "number"},
                "approx_fraction": {"type": "number"},
            },
        },
    },
}


def _resolve_params(algo: str, k: int, params: dict | None) -> dict | None:
    """Expand ladder shorthands (``bucket_ratio``) to constructor params."""
    if params is None:
        return None
    if "bucket_ratio" in params:
        out = dict(params)
        out["buckets"] = int(out.pop("bucket_ratio")) * k
        return out
    return dict(params)


def empirical_recall(data: np.ndarray, values: np.ndarray, k: int) -> float:
    """Value-based recall of ``values`` against ``np.partition`` truth.

    A returned value is a hit when it is at least as good as the k-th
    best of its row — ties never penalise an equally good answer.  Both
    the smallest-k convention of the repository and the approximate
    methods' best-first ordering are assumed.
    """
    th = np.partition(data, k - 1, axis=1)[:, k - 1]
    return float((values <= th[:, None]).mean())


def measure_cell(
    cell: RecallCell,
    *,
    gpu: str = "A100",
    seed: int = 0,
    variants: tuple = APPROX_VARIANTS,
    progress=None,
) -> dict:
    """Measure one regime: best exact baseline + the full config ladder."""
    from ..algos import UnsupportedProblem
    from ..api import topk
    from ..datagen import generate
    from ..device import get_spec

    spec = get_spec(gpu)
    data = generate(cell.distribution, cell.n, batch=cell.batch, seed=seed)
    exact_algo, exact_time = "", float("inf")
    for name in EXACT_BASELINES:
        try:
            run = topk(data, cell.k, algo=name, device=spec, seed=seed)
        except UnsupportedProblem:
            continue
        if run.time < exact_time:
            exact_algo, exact_time = name, run.time
    if not exact_algo:
        raise UnsupportedProblem(
            f"no exact baseline supports n={cell.n}, k={cell.k}"
        )
    points = []
    for algo, label, raw in variants:
        params = _resolve_params(algo, cell.k, raw)
        try:
            run = topk(data, cell.k, algo=algo, device=spec, seed=seed,
                       params=params)
        except UnsupportedProblem:
            continue
        empirical = empirical_recall(data, run.values, cell.k)
        floor = 1.0 if run.exact else float(run.recall_bound)
        entry = {
            "algo": algo,
            "label": label,
            "params": params or {},
            "sim_time_s": run.time,
            "speedup": exact_time / run.time if run.time > 0 else float("inf"),
            "qps_capacity": cell.batch / run.time if run.time > 0 else 0.0,
            "expected_recall": float(run.meta.get("expected_recall", 1.0)),
            "recall_floor": floor,
            "empirical_recall": empirical,
            "gate_ok": empirical >= floor,
        }
        points.append(entry)
        if progress is not None:
            progress(cell, entry)
    return {
        "n": cell.n,
        "k": cell.k,
        "batch": cell.batch,
        "distribution": cell.distribution,
        "acceptance": cell.acceptance,
        "exact_algo": exact_algo,
        "exact_time_s": exact_time,
        "points": points,
    }


def measure_serve(
    *,
    gpu: str = "A100",
    seed: int = 0,
    min_recall: float = 0.95,
    approx_fraction: float = 0.5,
) -> dict:
    """Seeded mixed exact/approx serving run; the SLO-dispatch gate."""
    from ..serve import LoadSpec, ServeConfig, run_serve_bench

    spec = LoadSpec(
        qps=400.0,
        duration_s=1.0,
        n=1 << 16,
        k=64,
        min_recall=min_recall,
        approx_fraction=approx_fraction,
        seed=seed,
    )
    config = ServeConfig(algo="auto", device=gpu, seed=seed)
    report, _service = run_serve_bench(spec, config)
    s = report.stats
    return {
        "requests": s.total,
        "served": s.served,
        "approx_served": s.approx_served,
        "recall_violations": s.recall_violations,
        "min_recall": min_recall,
        "approx_fraction": approx_fraction,
    }


def collect_snapshot(
    regimes: tuple[RecallCell, ...] = DEFAULT_REGIMES,
    *,
    gpu: str = "A100",
    seed: int = 0,
    variants: tuple = APPROX_VARIANTS,
    serve: bool = True,
    rev: str | None = None,
    progress=None,
) -> dict:
    """Measure every regime (plus the serving gate) into a validated
    ``repro.bench.recall/v1`` payload."""
    cells = [
        measure_cell(
            cell, gpu=gpu, seed=seed, variants=variants, progress=progress
        )
        for cell in regimes
    ]
    snapshot = {
        "schema": SCHEMA_ID,
        "rev": rev if rev is not None else git_rev(),
        "gpu": gpu,
        "seed": int(seed),
        "cells": cells,
        "serve": (
            measure_serve(gpu=gpu, seed=seed)
            if serve
            else {
                "requests": 0,
                "served": 0,
                "approx_served": 0,
                "recall_violations": 0,
                "min_recall": 0.0,
                "approx_fraction": 0.0,
            }
        ),
    }
    validate(snapshot, SNAPSHOT_SCHEMA)
    return snapshot


def gate_recall(
    snapshot: dict,
    *,
    min_speedup: float = ACCEPT_SPEEDUP,
    at_recall: float = ACCEPT_RECALL,
) -> list[str]:
    """Every gate violation in ``snapshot`` (empty list = gate passes).

    Three contracts are checked: each measured point's empirical recall
    clears its promised floor; each acceptance regime has a point at
    ``>= at_recall`` empirical recall beating the exact baseline by
    ``>= min_speedup``; and the serving run (when it carried approximate
    traffic) finished with zero recall violations.
    """
    failures: list[str] = []
    for cell in snapshot["cells"]:
        label = (
            f"n={cell['n']} k={cell['k']} batch={cell['batch']} "
            f"{cell['distribution']}"
        )
        for p in cell["points"]:
            if not p["gate_ok"]:
                failures.append(
                    f"{label} {p['algo']}[{p['label']}]: empirical recall "
                    f"{p['empirical_recall']:.4f} below promised floor "
                    f"{p['recall_floor']:.4f}"
                )
        if cell["acceptance"]:
            best = max(
                (
                    p["speedup"]
                    for p in cell["points"]
                    if p["empirical_recall"] >= at_recall
                ),
                default=0.0,
            )
            if best < min_speedup:
                failures.append(
                    f"{label}: best speedup at recall >= {at_recall:g} is "
                    f"{best:.2f}x, need >= {min_speedup:g}x vs "
                    f"{cell['exact_algo']}"
                )
    serve = snapshot["serve"]
    if serve["requests"] and serve["recall_violations"]:
        failures.append(
            f"serve: {serve['recall_violations']} request(s) finished below "
            f"min_recall={serve['min_recall']:g}"
        )
    if serve["requests"] and not serve["approx_served"]:
        failures.append(
            "serve: mixed load served no approximate results — the quality "
            "dispatcher never engaged"
        )
    return failures


def render_recall_report(snapshot: dict) -> str:
    """The Pareto tables ``repro-topk recall-bench`` prints."""
    out = [f"recall-bench on {snapshot['gpu']} (rev {snapshot['rev']}, "
           f"seed {snapshot['seed']})"]
    for cell in snapshot["cells"]:
        tag = "  [acceptance regime]" if cell["acceptance"] else ""
        out.append(
            f"\nn={cell['n']:,} k={cell['k']} batch={cell['batch']} "
            f"{cell['distribution']}: exact baseline {cell['exact_algo']} "
            f"{format_time(cell['exact_time_s'])}{tag}"
        )
        rows = [
            (
                f"{p['algo']}[{p['label']}]",
                format_time(p["sim_time_s"]),
                f"{p['speedup']:.2f}x",
                f"{p['qps_capacity']:,.0f}",
                f"{p['expected_recall']:.4f}",
                f"{p['recall_floor']:.4f}",
                f"{p['empirical_recall']:.4f}",
                "ok" if p["gate_ok"] else "FAIL",
            )
            for p in sorted(cell["points"], key=lambda p: p["sim_time_s"])
        ]
        out.append(
            format_table(
                ["config", "sim", "speedup", "qps", "E[recall]", "floor",
                 "empirical", "gate"],
                rows,
            )
        )
    serve = snapshot["serve"]
    if serve["requests"]:
        out.append(
            f"\nserve gate: {serve['requests']} requests "
            f"({serve['approx_fraction'] * 100:g}% at min_recall="
            f"{serve['min_recall']:g}): approx_served="
            f"{serve['approx_served']} recall_violations="
            f"{serve['recall_violations']}"
        )
    return "\n".join(out)


def write_snapshot(snapshot: dict, path: Path | str) -> Path:
    """Validate and write the snapshot JSON to ``path``."""
    validate(snapshot, SNAPSHOT_SCHEMA)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path | str) -> dict:
    """Read and schema-validate a snapshot file."""
    payload = json.loads(Path(path).read_text())
    validate(payload, SNAPSHOT_SCHEMA)
    return payload
