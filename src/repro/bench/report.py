"""Plain-text and CSV rendering of benchmark results.

The benchmark scripts print the same rows and series the paper reports —
these helpers keep the formatting in one place.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Sequence

from .runner import BenchPoint, SweepResult


def format_time(seconds: float | None) -> str:
    """Human-readable simulated time (the figures use microseconds)."""
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    ]
    return "\n".join([line, sep, *body])


def format_series_table(
    result: SweepResult,
    *,
    algos: Sequence[str],
    distribution: str,
    batch: int,
    vary: str,
    fixed: dict,
    x_label: str | None = None,
) -> str:
    """One figure panel as a table: x along rows, one column per algorithm.

    This is the textual equivalent of one sub-figure of the paper's Fig. 6
    (vary='k') or Fig. 7 (vary='n').
    """
    series = {
        algo: dict(
            result.series(
                algo, distribution=distribution, batch=batch, vary=vary, fixed=fixed
            )
        )
        for algo in algos
    }
    xs = sorted({x for s in series.values() for x in s})
    headers = [x_label or vary.upper()] + list(algos)
    rows = []
    for x in xs:
        row = [_pow2_label(x)]
        for algo in algos:
            row.append(format_time(series[algo].get(x)))
        rows.append(row)
    return format_table(headers, rows)


def _pow2_label(x: int) -> str:
    if x > 0 and x & (x - 1) == 0:
        return f"2^{x.bit_length() - 1}"
    return str(x)


def write_csv(points: Iterable[BenchPoint], path: str | Path) -> Path:
    """Dump benchmark points to CSV (one row per measurement)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "algo",
                "distribution",
                "n",
                "k",
                "batch",
                "time_s",
                "mode",
                "status",
                "detail",
            ]
        )
        for p in points:
            writer.writerow(
                [
                    p.algo,
                    p.distribution,
                    p.n,
                    p.k,
                    p.batch,
                    "" if p.time is None else f"{p.time:.9e}",
                    p.mode,
                    p.status,
                    p.detail,
                ]
            )
    return path


def read_csv(path: str | Path) -> list[BenchPoint]:
    """Load benchmark points back from a :func:`write_csv` file.

    The inverse of :func:`write_csv` up to the columns it writes (device
    counters are not serialised).  Used by ``repro-topk drift`` and
    ``repro-topk inspect`` to analyse finished sweeps.
    """
    path = Path(path)
    points: list[BenchPoint] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"algo", "distribution", "n", "k", "batch", "time_s", "status"}
        missing = required - set(reader.fieldnames or ())
        if missing:
            raise ValueError(
                f"{path} is not a sweep CSV: missing columns {sorted(missing)}"
            )
        for row in reader:
            points.append(
                BenchPoint(
                    algo=row["algo"],
                    distribution=row["distribution"],
                    n=int(row["n"]),
                    k=int(row["k"]),
                    batch=int(row["batch"]),
                    time=float(row["time_s"]) if row["time_s"] else None,
                    mode=row.get("mode", "exact"),
                    status=row["status"],
                    detail=row.get("detail", ""),
                )
            )
    return points


def format_dispatch_table(points: Iterable[BenchPoint]) -> str:
    """Where the ``auto`` dispatcher sent each problem, as a table.

    Every ``auto`` row records its chosen concrete algorithm in
    ``detail`` (``dispatch=<name>``); this renders those choices so a
    sweep report shows *which* algorithm the cost model picked per point.
    """
    rows = []
    for p in points:
        if p.algo != "auto" or not p.detail.startswith("dispatch="):
            continue
        rows.append(
            (
                p.distribution,
                _pow2_label(p.n),
                _pow2_label(p.k),
                p.batch,
                p.detail.removeprefix("dispatch="),
                format_time(p.time),
            )
        )
    if not rows:
        return "(no auto points in this sweep)"
    return format_table(
        ["distribution", "N", "K", "batch", "dispatched to", "time"], rows
    )


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (used for aggregate speedup reporting)."""
    vals = [v for v in values if v > 0]
    if not vals:
        raise ValueError("geomean needs at least one positive value")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# -------------------------------------------------------------------------- #
# shared percentile / distribution summaries
#
# Every consumer of latency-like samples — sweep summaries, the serving
# layer's latency report, the CLI — goes through these helpers instead of
# re-implementing its own aggregation.
# -------------------------------------------------------------------------- #

#: the serving-latency quantiles every report prints
REPORT_QUANTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (linear interpolation between order statistics).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([5.0], 99)
    5.0
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    vals = sorted(values)
    if not vals:
        raise ValueError("percentile needs at least one value")
    if len(vals) == 1:
        return vals[0]
    rank = (q / 100.0) * (len(vals) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return vals[lo]
    frac = rank - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


def percentiles(
    values: Sequence[float], qs: Sequence[float] = REPORT_QUANTILES
) -> dict[float, float]:
    """Several percentiles of one sample, as ``{q: value}``."""
    vals = sorted(values)
    return {q: percentile(vals, q) for q in qs}


def status_counts(points: Iterable[BenchPoint]) -> dict[str, int]:
    """Per-status row tallies of a sweep (ok / unsupported / error / ...)."""
    counts: dict[str, int] = {}
    for p in points:
        counts[p.status] = counts.get(p.status, 0) + 1
    return counts


def format_status_summary(points: Iterable[BenchPoint]) -> str:
    """One-line status tally, e.g. ``"12 ok, 3 unsupported"``."""
    counts = status_counts(points)
    return ", ".join(f"{v} {s}" for s, v in sorted(counts.items()))


def format_percentile_table(
    samples: dict[str, Sequence[float]],
    *,
    qs: Sequence[float] = REPORT_QUANTILES,
    unit: str = "time",
) -> str:
    """Percentile summary table: one row per labelled sample set.

    Used by the sweep summary (per-algorithm simulated times) and by the
    serving layer's latency report (per-outcome request latencies).
    """
    headers = ["series", "count"] + [f"p{q:g}" for q in qs] + [f"max {unit}"]
    rows = []
    for label, values in samples.items():
        vals = sorted(values)
        if not vals:
            rows.append([label, 0] + ["-"] * (len(qs) + 1))
            continue
        row = [label, len(vals)]
        row += [format_time(percentile(vals, q)) for q in qs]
        row.append(format_time(vals[-1]))
        rows.append(row)
    return format_table(headers, rows)


def sweep_time_summary(points: Iterable[BenchPoint]) -> str:
    """Per-algorithm percentile summary of a sweep's measured times."""
    by_algo: dict[str, list[float]] = {}
    for p in points:
        if p.time is not None:
            by_algo.setdefault(p.algo, []).append(p.time)
    if not by_algo:
        return "(no measured points)"
    return format_percentile_table(dict(sorted(by_algo.items())))
