"""Benchmark sweep runner — the engine behind every figure and table.

Runs grids of (algorithm, distribution, N, K, batch) points through
:func:`repro.perf.simulate_topk`, records simulated times, and computes the
paper's virtual SOTA baseline (the best prior algorithm per point,
Sec. 5.1: "we regard the best performance of all previous algorithms for
each combination of N, K, and batch size as ... SOTA").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..algos import UnsupportedProblem
from ..device import A100, DeviceCounters, GPUSpec, timeline_spans
from ..obs.spans import get_tracer, span, tracing_enabled
from ..perf import DEFAULT_EXACT_CAP, simulate_topk

#: the paper's contributions — excluded from the SOTA baseline
OUR_ALGORITHMS = ("air_topk", "grid_select")

#: the eight prior methods of Table 1
BASELINE_ALGORITHMS = (
    "sort",
    "warp_select",
    "block_select",
    "bitonic_topk",
    "quick_select",
    "bucket_select",
    "sample_select",
    "radix_select",
)

ALL_ALGORITHMS = OUR_ALGORITHMS + BASELINE_ALGORITHMS


@dataclass(frozen=True)
class BenchPoint:
    """One benchmark point (time is None for any non-``ok`` status)."""

    algo: str
    distribution: str
    n: int
    k: int
    batch: int
    time: float | None
    mode: str = "exact"
    #: "ok", or why there is no time: "unsupported" (the algorithm cannot
    #: handle this (n, k) — the gaps of the paper's Fig. 6/7, recorded
    #: explicitly so SOTA denominators stay auditable), "error" (the point
    #: crashed; sweeps record it and carry on) or "timeout"
    status: str = "ok"
    #: free-form annotation: the unsupported/error reason, or the concrete
    #: algorithm an ``auto`` point dispatched to ("dispatch=<name>")
    detail: str = ""
    #: per-point simulated device counters (None for non-``ok`` rows);
    #: excluded from equality/CSV so result semantics are unchanged —
    #: manifests aggregate them via repro.device.aggregate_counters
    counters: DeviceCounters | None = field(default=None, compare=False)

    @property
    def key(self) -> tuple[str, int, int, int]:
        """Problem coordinates shared by all algorithms at this point."""
        return (self.distribution, self.n, self.k, self.batch)


@dataclass
class SweepResult:
    """All points of one sweep, with SOTA lookup helpers."""

    points: list[BenchPoint] = field(default_factory=list)

    def add(self, point: BenchPoint) -> None:
        self.points.append(point)

    def time_of(
        self, algo: str, distribution: str, n: int, k: int, batch: int
    ) -> float | None:
        for p in self.points:
            if (
                p.algo == algo
                and p.key == (distribution, n, k, batch)
            ):
                return p.time
        return None

    def sota_time(
        self, distribution: str, n: int, k: int, batch: int
    ) -> float | None:
        """Best prior-algorithm time at a point (the paper's virtual SOTA)."""
        times = [
            p.time
            for p in self.points
            if p.algo in BASELINE_ALGORITHMS
            and p.key == (distribution, n, k, batch)
            and p.time is not None
        ]
        return min(times) if times else None

    def keys(self) -> list[tuple[str, int, int, int]]:
        """Distinct problem coordinates, in first-seen order."""
        seen: dict[tuple[str, int, int, int], None] = {}
        for p in self.points:
            seen.setdefault(p.key, None)
        return list(seen)

    def series(
        self, algo: str, *, distribution: str, batch: int, vary: str, fixed: dict
    ) -> list[tuple[int, float | None]]:
        """(x, time) series for one algorithm along the ``vary`` axis."""
        if vary not in ("n", "k"):
            raise ValueError(f"vary must be 'n' or 'k', got {vary!r}")
        out = []
        for p in self.points:
            if p.algo != algo or p.distribution != distribution or p.batch != batch:
                continue
            if all(getattr(p, key) == val for key, val in fixed.items()):
                out.append((getattr(p, vary), p.time))
        return sorted(out)


def run_point(
    algo: str,
    *,
    distribution: str,
    n: int,
    k: int,
    batch: int = 1,
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    **algo_kwargs,
) -> BenchPoint:
    """Measure one point; unsupported (n, k) yields an explicit
    ``status="unsupported"`` row with ``time=None`` and the reason."""
    with span(
        f"point {algo}",
        cat="point",
        algo=algo,
        distribution=distribution,
        n=n,
        k=k,
        batch=batch,
    ) as point_span:
        try:
            run = simulate_topk(
                algo,
                distribution=distribution,
                n=n,
                k=k,
                batch=batch,
                spec=spec,
                cap=cap,
                seed=seed,
                adversarial_m=adversarial_m,
                **algo_kwargs,
            )
        except UnsupportedProblem as exc:
            point_span.set(status="unsupported")
            return BenchPoint(
                algo=algo,
                distribution=distribution,
                n=n,
                k=k,
                batch=batch,
                time=None,
                mode="unsupported",
                status="unsupported",
                detail=str(exc),
            )
        point_span.set(status="ok", mode=run.mode, sim_time_s=run.time)
        if tracing_enabled():
            # re-base the point's simulated streams onto the wall clock so
            # the merged trace shows them inside this host span's gap
            label = f"sim {algo} {distribution} n={n} k={k} b={batch}"
            get_tracer().extend(
                timeline_spans(
                    run.device.timeline,
                    lane_prefix=label,
                    base_us=point_span.start_us,
                    device=run.device,
                )
            )
    return BenchPoint(
        algo=algo,
        distribution=distribution,
        n=n,
        k=k,
        batch=batch,
        time=run.time,
        mode=run.mode,
        detail=f"dispatch={run.dispatch}" if run.dispatch else "",
        counters=run.device.counters,
    )


def sweep(
    *,
    algos: Sequence[str] = ALL_ALGORITHMS,
    distributions: Sequence[str] = ("uniform",),
    ns: Iterable[int] = (1 << 20,),
    ks: Iterable[int] = (256,),
    batches: Iterable[int] = (1,),
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    progress=None,
    workers: int = 1,
    timeout: float | None = None,
) -> SweepResult:
    """Run the full cartesian grid; k > n points are recorded as
    ``unsupported`` rows (they are not runnable for any algorithm).

    ``progress`` is an optional callable invoked with each finished
    :class:`BenchPoint` (benchmark scripts use it for live output).
    ``workers`` > 1 shards the grid across a process pool via
    :func:`repro.exec.parallel_sweep` — results are identical to the
    serial run, in the same order.  ``timeout`` bounds each point's wall
    clock in seconds (exceeding it yields a ``timeout`` row).
    """
    from ..exec import parallel_sweep  # lazy: repro.exec imports this module

    return parallel_sweep(
        algos=algos,
        distributions=distributions,
        ns=ns,
        ks=ks,
        batches=batches,
        spec=spec,
        cap=cap,
        seed=seed,
        adversarial_m=adversarial_m,
        workers=workers,
        timeout=timeout,
        progress=(None if progress is None else lambda ev: progress(ev.point)),
    )
