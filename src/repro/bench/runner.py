"""Benchmark sweep runner — the engine behind every figure and table.

Runs grids of (algorithm, distribution, N, K, batch) points through
:func:`repro.perf.simulate_topk`, records simulated times, and computes the
paper's virtual SOTA baseline (the best prior algorithm per point,
Sec. 5.1: "we regard the best performance of all previous algorithms for
each combination of N, K, and batch size as ... SOTA").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..algos import UnsupportedProblem
from ..device import GPUSpec, A100
from ..perf import DEFAULT_EXACT_CAP, simulate_topk

#: the paper's contributions — excluded from the SOTA baseline
OUR_ALGORITHMS = ("air_topk", "grid_select")

#: the eight prior methods of Table 1
BASELINE_ALGORITHMS = (
    "sort",
    "warp_select",
    "block_select",
    "bitonic_topk",
    "quick_select",
    "bucket_select",
    "sample_select",
    "radix_select",
)

ALL_ALGORITHMS = OUR_ALGORITHMS + BASELINE_ALGORITHMS


@dataclass(frozen=True)
class BenchPoint:
    """One measured benchmark point (time is None when unsupported)."""

    algo: str
    distribution: str
    n: int
    k: int
    batch: int
    time: float | None
    mode: str = "exact"

    @property
    def key(self) -> tuple[str, int, int, int]:
        """Problem coordinates shared by all algorithms at this point."""
        return (self.distribution, self.n, self.k, self.batch)


@dataclass
class SweepResult:
    """All points of one sweep, with SOTA lookup helpers."""

    points: list[BenchPoint] = field(default_factory=list)

    def add(self, point: BenchPoint) -> None:
        self.points.append(point)

    def time_of(
        self, algo: str, distribution: str, n: int, k: int, batch: int
    ) -> float | None:
        for p in self.points:
            if (
                p.algo == algo
                and p.key == (distribution, n, k, batch)
            ):
                return p.time
        return None

    def sota_time(
        self, distribution: str, n: int, k: int, batch: int
    ) -> float | None:
        """Best prior-algorithm time at a point (the paper's virtual SOTA)."""
        times = [
            p.time
            for p in self.points
            if p.algo in BASELINE_ALGORITHMS
            and p.key == (distribution, n, k, batch)
            and p.time is not None
        ]
        return min(times) if times else None

    def keys(self) -> list[tuple[str, int, int, int]]:
        """Distinct problem coordinates, in first-seen order."""
        seen: dict[tuple[str, int, int, int], None] = {}
        for p in self.points:
            seen.setdefault(p.key, None)
        return list(seen)

    def series(
        self, algo: str, *, distribution: str, batch: int, vary: str, fixed: dict
    ) -> list[tuple[int, float | None]]:
        """(x, time) series for one algorithm along the ``vary`` axis."""
        if vary not in ("n", "k"):
            raise ValueError(f"vary must be 'n' or 'k', got {vary!r}")
        out = []
        for p in self.points:
            if p.algo != algo or p.distribution != distribution or p.batch != batch:
                continue
            if all(getattr(p, key) == val for key, val in fixed.items()):
                out.append((getattr(p, vary), p.time))
        return sorted(out)


def run_point(
    algo: str,
    *,
    distribution: str,
    n: int,
    k: int,
    batch: int = 1,
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    **algo_kwargs,
) -> BenchPoint:
    """Measure one point; unsupported (n, k) yields ``time=None``."""
    try:
        run = simulate_topk(
            algo,
            distribution=distribution,
            n=n,
            k=k,
            batch=batch,
            spec=spec,
            cap=cap,
            seed=seed,
            adversarial_m=adversarial_m,
            **algo_kwargs,
        )
    except UnsupportedProblem:
        return BenchPoint(
            algo=algo, distribution=distribution, n=n, k=k, batch=batch, time=None
        )
    return BenchPoint(
        algo=algo,
        distribution=distribution,
        n=n,
        k=k,
        batch=batch,
        time=run.time,
        mode=run.mode,
    )


def sweep(
    *,
    algos: Sequence[str] = ALL_ALGORITHMS,
    distributions: Sequence[str] = ("uniform",),
    ns: Iterable[int] = (1 << 20,),
    ks: Iterable[int] = (256,),
    batches: Iterable[int] = (1,),
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    progress=None,
) -> SweepResult:
    """Run the full cartesian grid; k > n points are skipped.

    ``progress`` is an optional callable invoked with each finished
    :class:`BenchPoint` (benchmark scripts use it for live output).
    """
    result = SweepResult()
    for distribution in distributions:
        for batch in batches:
            for n in ns:
                for k in ks:
                    if k > n:
                        continue
                    for algo in algos:
                        point = run_point(
                            algo,
                            distribution=distribution,
                            n=n,
                            k=k,
                            batch=batch,
                            spec=spec,
                            cap=cap,
                            seed=seed,
                            adversarial_m=adversarial_m,
                        )
                        result.add(point)
                        if progress is not None:
                            progress(point)
    return result
