"""Bitonic sorting and merging networks.

These are the building blocks of the partial-sorting family (WarpSelect,
BlockSelect, GridSelect, Bitonic Top-K).  The networks are executed for real
— vectorised across rows, comparator stage by comparator stage — and every
function also returns the exact comparator count, which the cost model
prices.  The comparator counts are the closed-form network sizes:

* full sort of ``n = 2^m`` keys: ``n/2 * m * (m + 1) / 2`` comparators,
* merge of a bitonic sequence of length ``n``: ``n/2 * m`` comparators.
"""

from __future__ import annotations

import numpy as np


def _check_rows(rows: np.ndarray) -> int:
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-d array of rows, got shape {rows.shape}")
    n = rows.shape[1]
    if n == 0 or n & (n - 1):
        raise ValueError(f"row length must be a positive power of two, got {n}")
    return n


def comparator_count_sort(n: int) -> int:
    """Comparators used by a full bitonic sort of ``n = 2^m`` keys."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a positive power of two, got {n}")
    m = n.bit_length() - 1
    return (n // 2) * m * (m + 1) // 2


def comparator_count_merge(n: int) -> int:
    """Comparators used by a bitonic merge of a length-``n`` bitonic sequence."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a positive power of two, got {n}")
    m = n.bit_length() - 1
    return (n // 2) * m


def _compare_exchange(
    keys: np.ndarray, payload: np.ndarray | None, i: np.ndarray, j: np.ndarray
) -> None:
    """Ascending compare-exchange of columns ``i`` and ``j`` (in place)."""
    left = keys[:, i]
    right = keys[:, j]
    swap = left > right
    keys[:, i] = np.where(swap, right, left)
    keys[:, j] = np.where(swap, left, right)
    if payload is not None:
        pl = payload[:, i]
        pr = payload[:, j]
        payload[:, i] = np.where(swap, pr, pl)
        payload[:, j] = np.where(swap, pl, pr)


def bitonic_sort(
    rows: np.ndarray, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Sort each row ascending with the bitonic network.

    Returns ``(sorted_rows, sorted_payload, comparators_per_row)``.  The
    input arrays are not modified.
    """
    n = _check_rows(rows)
    keys = rows.copy()
    pay = payload.copy() if payload is not None else None
    if pay is not None and pay.shape != rows.shape:
        raise ValueError("payload shape must match rows shape")
    comparators = 0
    size = 2
    while size <= n:
        # first stage of this size has a mirrored partner pattern
        stride = size // 2
        idx = np.arange(n)
        block = idx // size
        offset = idx % size
        first_half = offset < stride
        i = idx[first_half[idx]]
        j = (block[i] * size) + (size - 1 - (i % size))
        _compare_exchange(keys, pay, i, j)
        comparators += len(i)
        # remaining stages use the plain butterfly pattern
        stride //= 2
        while stride >= 1:
            partner_low = (idx % (stride * 2)) < stride
            i = idx[partner_low]
            j = i + stride
            _compare_exchange(keys, pay, i, j)
            comparators += len(i)
            stride //= 2
        size *= 2
    return keys, pay, comparators


def bitonic_merge(
    rows: np.ndarray, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Sort rows that are already bitonic sequences, ascending.

    A bitonic sequence (ascending then descending, or a rotation of one) is
    sorted by the butterfly stages alone.
    """
    n = _check_rows(rows)
    keys = rows.copy()
    pay = payload.copy() if payload is not None else None
    if pay is not None and pay.shape != rows.shape:
        raise ValueError("payload shape must match rows shape")
    comparators = 0
    idx = np.arange(n)
    stride = n // 2
    while stride >= 1:
        partner_low = (idx % (stride * 2)) < stride
        i = idx[partner_low]
        j = i + stride
        _compare_exchange(keys, pay, i, j)
        comparators += len(i)
        stride //= 2
    return keys, pay, comparators


def merge_select_lower(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, int]:
    """Lower half of the bitonic merge of two ascending rows of equal length.

    Given two ascending sorted rows ``a`` and ``b`` (shape ``(m, k)``), the
    k smallest of their union are ``min(a[i], b[k-1-i])`` element-wise — the
    first butterfly stage of merging the bitonic sequence ``a ++ reverse(b)``.
    The result is bitonic, not sorted.  This is the core trick of Bitonic
    Top-K (Shanbhag et al.): each phase halves the data with k comparators
    per pair of runs.

    Returns ``(lower_half, comparators_per_row)``.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError("expected 2-d arrays of sorted rows")
    k = a.shape[1]
    return np.minimum(a, b[:, ::-1]), k


def merge_select_lower_with_payload(
    a: np.ndarray,
    a_payload: np.ndarray,
    b: np.ndarray,
    b_payload: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """:func:`merge_select_lower` carrying a payload column (indices)."""
    if a.shape != b.shape or a_payload.shape != b_payload.shape:
        raise ValueError("shape mismatch between keys and payloads")
    b_rev = b[:, ::-1]
    bp_rev = b_payload[:, ::-1]
    take_b = b_rev < a
    keys = np.where(take_b, b_rev, a)
    payload = np.where(take_b, bp_rev, a_payload)
    return keys, payload, a.shape[1]
