"""Warp-level collective primitives, emulated lane-accurately.

GridSelect's parallel two-step insertion (Sec. 4, Fig. 5) is built on the
warp ballot: every lane announces whether it holds a qualified candidate,
and each lane derives a unique storing position by counting the qualified
lanes before it.  These helpers reproduce that computation bit-for-bit on
boolean lane masks.
"""

from __future__ import annotations

import numpy as np


def ballot(predicate: np.ndarray) -> int:
    """Pack a warp's lane predicates into a ballot bitmask (lane 0 = bit 0)."""
    predicate = np.asarray(predicate, dtype=bool)
    if predicate.ndim != 1:
        raise ValueError(f"expected 1-d lane predicates, got shape {predicate.shape}")
    if predicate.size > 64:
        raise ValueError(f"warp size above 64 is not supported, got {predicate.size}")
    mask = 0
    for lane in np.nonzero(predicate)[0]:
        mask |= 1 << int(lane)
    return mask


def lane_rank(predicate: np.ndarray) -> np.ndarray:
    """Number of qualified lanes strictly before each lane (exclusive rank).

    This is ``__popc(ballot & lanemask_lt)`` in CUDA — the storing position
    each qualified lane uses in the two-step insertion.
    """
    predicate = np.asarray(predicate, dtype=bool)
    ranks = np.cumsum(predicate) - predicate
    return ranks.astype(np.int64)


def two_step_positions(
    predicate: np.ndarray, queue_fill: int, queue_size: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Storing positions for one warp-wide insertion round (Fig. 5).

    Given the qualification predicate of each lane, the current queue fill
    and the queue capacity, returns:

    * ``first_step`` — lanes that insert immediately (their position is below
      the queue capacity),
    * ``second_step`` — lanes that must wait for the flush and insert at
      ``position - queue_size`` afterwards,
    * ``new_fill`` — queue fill after the round completes (post-flush fill if
      a flush happened).

    A flush (bitonic sort + merge of the queue into the top-k results) is
    required exactly when ``queue_fill + qualified > queue_size``... the
    paper triggers it when the queue becomes full, i.e. when any lane's
    position reaches capacity.
    """
    if not 0 <= queue_fill <= queue_size:
        raise ValueError(
            f"queue_fill must be within [0, {queue_size}], got {queue_fill}"
        )
    predicate = np.asarray(predicate, dtype=bool)
    positions = queue_fill + lane_rank(predicate)
    qualified = int(predicate.sum())
    first_step = predicate & (positions < queue_size)
    second_step = predicate & (positions >= queue_size)
    total = queue_fill + qualified
    if total >= queue_size:
        new_fill = total - queue_size  # queue flushed once, remainder inserted
        if new_fill > queue_size:
            raise ValueError(
                "more than one flush per round: warp size exceeds queue size"
            )
    else:
        new_fill = total
    return first_step, second_step, new_fill
