"""Parallel building blocks shared by all simulated top-k algorithms."""

from .radix import (
    DigitPass,
    decode,
    digit_layout,
    encode,
    invert,
    key_bits,
    priority_keys,
)
from .bitonic import (
    bitonic_merge,
    bitonic_sort,
    comparator_count_merge,
    comparator_count_sort,
    merge_select_lower,
    merge_select_lower_with_payload,
)
from .batched import (
    affine_partitions,
    flat_histogram,
    head_mask,
    partition_topc,
    segment_min_max,
    segment_offsets,
)
from .histogram import batched_digit_histogram, digit_histogram
from .scan import (
    block_scan_ops,
    exclusive_scan,
    find_target_bucket,
    inclusive_scan,
)
from .warp import ballot, lane_rank, two_step_positions
from .compact import CompactionResult, compact, partition_three_way

__all__ = [
    "DigitPass",
    "decode",
    "digit_layout",
    "encode",
    "invert",
    "key_bits",
    "priority_keys",
    "bitonic_merge",
    "bitonic_sort",
    "comparator_count_merge",
    "comparator_count_sort",
    "merge_select_lower",
    "merge_select_lower_with_payload",
    "batched_digit_histogram",
    "digit_histogram",
    "affine_partitions",
    "flat_histogram",
    "head_mask",
    "partition_topc",
    "segment_min_max",
    "segment_offsets",
    "block_scan_ops",
    "exclusive_scan",
    "find_target_bucket",
    "inclusive_scan",
    "ballot",
    "lane_rank",
    "two_step_positions",
    "CompactionResult",
    "compact",
    "partition_three_way",
]
