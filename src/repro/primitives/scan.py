"""Prefix-sum (scan) primitives with device-style operation counts.

Radix top-k needs an inclusive scan of a 2^b-entry histogram to locate the
target digit (Sec. 2.3, step 2).  AIR Top-K performs this scan inside the
fused kernel with a single thread block; the work estimate models the
Hillis–Steele block scan such an implementation uses (n * log2(n) adds).
"""

from __future__ import annotations

import math

import numpy as np


def inclusive_scan(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inclusive prefix sum along ``axis``."""
    return np.cumsum(values, axis=axis)


def exclusive_scan(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Exclusive prefix sum along ``axis`` (first element is 0)."""
    inclusive = np.cumsum(values, axis=axis)
    result = np.roll(inclusive, 1, axis=axis)
    # zero the wrapped-around first slot
    index = [slice(None)] * values.ndim
    index[axis if axis >= 0 else values.ndim + axis] = 0
    result[tuple(index)] = 0
    return result


def block_scan_ops(n: int) -> int:
    """Adds performed by a Hillis–Steele block scan of ``n`` entries."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if n == 1:
        return 0
    return n * math.ceil(math.log2(n))


def find_target_bucket(psum: np.ndarray, k: int | np.ndarray) -> np.ndarray | np.intp:
    """Bucket index ``j`` with ``psum[j-1] < k <= psum[j]`` (Sec. 2.3, step 3).

    ``psum`` is the inclusive prefix sum of a histogram; works on a single
    histogram (1-d) or a batch of histograms (2-d, with ``k`` per row).
    """
    psum = np.asarray(psum)
    if psum.ndim == 1:
        k_arr = int(k)
        if not 1 <= k_arr <= int(psum[-1]):
            raise ValueError(
                f"k={k_arr} outside [1, {int(psum[-1])}] covered by the histogram"
            )
        return np.searchsorted(psum, k_arr, side="left")
    k_arr = np.asarray(k)
    if k_arr.shape != (psum.shape[0],):
        raise ValueError("batched k must have one entry per histogram row")
    if np.any(k_arr < 1) or np.any(k_arr > psum[:, -1]):
        raise ValueError("some k outside the range covered by its histogram")
    # vectorised left-bisection: prefix sums are non-decreasing per row, so
    # searchsorted(psum[row], k, side="left") == #entries strictly below k.
    # One fused comparison covers every row of the batch at once.
    return (psum < k_arr[:, None]).sum(axis=1, dtype=np.int64)
