"""Stream compaction — the filtering step of partition-based top-k.

On the GPU this is a scan-based scatter (or atomic-append); here the result
is computed with boolean masking while the caller accounts the corresponding
memory traffic.  The helpers return both the compacted data and the byte
volumes a scatter of that size produces, so call sites do not hand-compute
them inconsistently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CompactionResult:
    """Survivors of a filtering pass plus the traffic it generated."""

    keys: np.ndarray
    indices: np.ndarray
    #: bytes written scattering the surviving keys and indices
    bytes_written: float

    @property
    def count(self) -> int:
        return int(self.keys.shape[0])


def compact(
    keys: np.ndarray,
    indices: np.ndarray,
    mask: np.ndarray,
    *,
    key_bytes: int = 4,
    index_bytes: int = 4,
) -> CompactionResult:
    """Keep the entries where ``mask`` is true, preserving order.

    ``indices`` carries original input positions alongside the keys, as
    every practical top-k implementation must (Sec. 2.1).
    """
    if keys.shape != indices.shape or keys.shape != mask.shape:
        raise ValueError(
            f"shape mismatch: keys {keys.shape}, indices {indices.shape}, "
            f"mask {mask.shape}"
        )
    if keys.ndim != 1:
        raise ValueError("compact operates on 1-d candidate lists")
    kept_keys = keys[mask]
    kept_indices = indices[mask]
    return CompactionResult(
        keys=kept_keys,
        indices=kept_indices,
        bytes_written=float(kept_keys.shape[0]) * (key_bytes + index_bytes),
    )


def partition_three_way(
    keys: np.ndarray,
    indices: np.ndarray,
    digits: np.ndarray,
    target_digit: int,
) -> tuple[CompactionResult, CompactionResult]:
    """Split candidates by their digit relative to the target (Sec. 2.3 step 4).

    Returns ``(winners, survivors)``: entries with a digit below the target
    are guaranteed top-k results; entries equal to the target remain
    candidates for the next iteration; entries above are discarded.
    """
    below = digits < target_digit
    equal = digits == target_digit
    winners = compact(keys, indices, below)
    survivors = compact(keys, indices, equal)
    return winners, survivors
