"""Flat (segment-encoded) multi-row helpers for fused batched execution.

The fused batched paths (AIR Top-K, BucketSelect) keep every row's
surviving candidates in one flat row-major array plus a parallel array of
row ids — mirroring how a fused GPU kernel keeps the whole batch resident
in a single launch instead of replaying per-row kernels.  These helpers
are the segment algebra those paths share:

* :func:`segment_offsets` — CSR-style offsets from per-segment counts;
* :func:`flat_histogram` — per-segment digit histograms of a flat array
  in one ``bincount`` (the multi-row generalisation of
  :func:`repro.primitives.histogram.batched_digit_histogram`);
* :func:`head_mask` — select the first ``take[i]`` elements of each
  segment of a row-major flat array;
* :func:`segment_min_max` — per-segment min/max reductions;
* :func:`affine_partitions` / :func:`partition_topc` — the batched bucket
  partition helpers of the approximate tier: a seeded affine scatter of
  positions into near-equal partitions, and per-partition best-``keep``
  selection over a whole batch in one vectorised pass.

All helpers are exact (integer arithmetic only); the fused paths that use
them are pinned byte-identical to the per-row reference execution by
``tests/test_differential.py::TestBatchedDifferential``.
"""

from __future__ import annotations

import math

import numpy as np


def segment_offsets(counts: np.ndarray) -> np.ndarray:
    """CSR offsets (length ``len(counts) + 1``) of row-major segments.

    >>> segment_offsets(np.array([2, 0, 3]))
    array([0, 2, 2, 5])
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError(f"counts must be 1-d, got shape {counts.shape}")
    if counts.size and counts.min() < 0:
        raise ValueError("segment counts must be non-negative")
    offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def flat_histogram(
    segments: np.ndarray,
    values: np.ndarray,
    num_segments: int,
    num_buckets: int,
) -> np.ndarray:
    """Per-segment histograms of flat ``values``, shape ``(segments, buckets)``.

    ``segments`` holds each element's segment id in ``[0, num_segments)``.
    One offset ``bincount`` covers every segment — the fused-batch
    equivalent of one privatised-histogram kernel over the whole batch.
    """
    if num_segments < 0 or num_buckets <= 0:
        raise ValueError(
            f"need num_segments >= 0 and num_buckets > 0, "
            f"got {num_segments}, {num_buckets}"
        )
    segments = np.asarray(segments, dtype=np.int64)
    values = np.asarray(values)
    if segments.shape != values.shape or segments.ndim != 1:
        raise ValueError(
            f"segments and values must be matching 1-d arrays, "
            f"got {segments.shape} and {values.shape}"
        )
    if segments.size == 0:
        return np.zeros((num_segments, num_buckets), dtype=np.int64)
    if segments.min() < 0 or segments.max() >= num_segments:
        raise ValueError(f"segment ids outside [0, {num_segments})")
    v = values.astype(np.int64)
    if v.min() < 0 or v.max() >= num_buckets:
        raise ValueError(f"bucket values outside [0, {num_buckets})")
    flat = segments * num_buckets + v
    counts = np.bincount(flat, minlength=num_segments * num_buckets)
    return counts.reshape(num_segments, num_buckets)


def head_mask(counts: np.ndarray, take: np.ndarray) -> np.ndarray:
    """Mask selecting the first ``take[i]`` elements of each segment.

    ``counts`` describes a row-major flat array's segment lengths; the
    returned boolean mask has ``counts.sum()`` entries.
    """
    counts = np.asarray(counts, dtype=np.int64)
    take = np.asarray(take, dtype=np.int64)
    if counts.shape != take.shape:
        raise ValueError("counts and take must have matching shapes")
    offsets = segment_offsets(counts)
    total = int(offsets[-1])
    position = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    return position < np.repeat(take, counts)


def segment_min_max(
    values: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(min, max)`` of a row-major flat array.

    Every segment must be non-empty (``ufunc.reduceat`` silently reads the
    next segment's first element otherwise, so this is checked).
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be a 1-d CSR offset array")
    if offsets.size == 1:
        return (
            np.empty(0, dtype=values.dtype),
            np.empty(0, dtype=values.dtype),
        )
    if int(offsets[-1]) != values.shape[0]:
        raise ValueError(
            f"offsets cover {int(offsets[-1])} elements, have {values.shape[0]}"
        )
    if (np.diff(offsets) <= 0).any():
        raise ValueError("segment_min_max requires non-empty segments")
    starts = offsets[:-1]
    return (
        np.minimum.reduceat(values, starts),
        np.maximum.reduceat(values, starts),
    )


def affine_partitions(
    n: int, parts: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded affine scatter of ``n`` positions into ``parts`` partitions.

    Position ``j`` lands in partition ``((a*j + c) mod n) mod parts`` with
    ``a`` coprime to both ``n`` and ``parts`` — a bijective remap, so the
    partition sizes are the near-equal strided split of
    :func:`repro.approx.partition_sizes`, and any *contiguous* run of
    positions cycles through every partition (adversarially clustered
    inputs spread like random ones).  The assignment depends only on
    ``(n, parts, seed)``: batched and single-shot runs of the approximate
    algorithms see the same scatter.

    Returns ``(order, sizes)``: ``order`` lists the positions grouped by
    partition (ascending position within each partition) and ``sizes`` the
    per-partition counts, descending-grouped (all ``ceil`` partitions
    first) as :func:`partition_topc` requires.
    """
    if not 1 <= parts <= n:
        raise ValueError(f"parts must be in [1, n={n}], got {parts}")
    rng = np.random.default_rng(seed)
    a, c = 1, 0
    if n > 1:
        for _ in range(128):
            cand = int(rng.integers(1, n))
            if math.gcd(cand, n) == 1 and math.gcd(cand, parts) == 1:
                a = cand
                break
        c = int(rng.integers(n))
    j = np.arange(n, dtype=np.int64)
    part = ((a * j + c) % n) % parts
    order = np.argsort(part, kind="stable")
    sizes = np.bincount(part, minlength=parts)
    return order, sizes


def partition_topc(
    keys2d: np.ndarray,
    order: np.ndarray,
    sizes: np.ndarray,
    keep: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-partition smallest-``keep`` selection across a whole batch.

    ``keys2d`` is ``(batch, n)``; ``order`` groups the ``n`` positions by
    partition and ``sizes`` gives the partition lengths in ``order``'s
    grouping (equal sizes must be consecutive, as
    :func:`affine_partitions` produces).  Every partition must hold at
    least ``keep`` elements.

    Because near-equal splits have at most two distinct sizes, the
    ragged per-partition selection decomposes into (at most two)
    rectangular ``(batch, count, size)`` blocks, each solved by one
    vectorised stable argsort — no padding sentinels, so ties between
    real elements and padding can never surface.  Ties within a partition
    break toward the lower original position.

    Returns ``(keys, positions)`` of shape ``(batch, parts * keep)``,
    partition-major, best-first within each partition.
    """
    keys2d = np.asarray(keys2d)
    order = np.asarray(order, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if keys2d.ndim != 2:
        raise ValueError(f"keys2d must be 2-d, got shape {keys2d.shape}")
    batch, n = keys2d.shape
    if order.shape != (n,):
        raise ValueError(f"order must have shape ({n},), got {order.shape}")
    if int(sizes.sum()) != n:
        raise ValueError(f"sizes sum to {int(sizes.sum())}, expected {n}")
    if sizes.size and int(sizes.min()) < keep:
        raise ValueError(
            f"every partition needs >= keep={keep} elements, "
            f"smallest has {int(sizes.min())}"
        )
    grouped = keys2d[:, order]
    out_keys: list[np.ndarray] = []
    out_pos: list[np.ndarray] = []
    start = 0
    run_start = 0
    for i in range(1, sizes.size + 1):
        if i < sizes.size and sizes[i] == sizes[run_start]:
            continue
        size = int(sizes[run_start])
        count = i - run_start
        span = size * count
        block = grouped[:, start : start + span].reshape(batch, count, size)
        sel = np.argsort(block, axis=2, kind="stable")[:, :, :keep]
        out_keys.append(
            np.take_along_axis(block, sel, axis=2).reshape(batch, -1)
        )
        base = order[start : start + span].reshape(1, count, size)
        positions = np.take_along_axis(
            np.broadcast_to(base, (batch, count, size)), sel, axis=2
        )
        out_pos.append(positions.reshape(batch, -1))
        start += span
        run_start = i
    return (
        np.concatenate(out_keys, axis=1),
        np.concatenate(out_pos, axis=1),
    )
