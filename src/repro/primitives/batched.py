"""Flat (segment-encoded) multi-row helpers for fused batched execution.

The fused batched paths (AIR Top-K, BucketSelect) keep every row's
surviving candidates in one flat row-major array plus a parallel array of
row ids — mirroring how a fused GPU kernel keeps the whole batch resident
in a single launch instead of replaying per-row kernels.  These helpers
are the segment algebra those paths share:

* :func:`segment_offsets` — CSR-style offsets from per-segment counts;
* :func:`flat_histogram` — per-segment digit histograms of a flat array
  in one ``bincount`` (the multi-row generalisation of
  :func:`repro.primitives.histogram.batched_digit_histogram`);
* :func:`head_mask` — select the first ``take[i]`` elements of each
  segment of a row-major flat array;
* :func:`segment_min_max` — per-segment min/max reductions.

All helpers are exact (integer arithmetic only); the fused paths that use
them are pinned byte-identical to the per-row reference execution by
``tests/test_differential.py::TestBatchedDifferential``.
"""

from __future__ import annotations

import numpy as np


def segment_offsets(counts: np.ndarray) -> np.ndarray:
    """CSR offsets (length ``len(counts) + 1``) of row-major segments.

    >>> segment_offsets(np.array([2, 0, 3]))
    array([0, 2, 2, 5])
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError(f"counts must be 1-d, got shape {counts.shape}")
    if counts.size and counts.min() < 0:
        raise ValueError("segment counts must be non-negative")
    offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def flat_histogram(
    segments: np.ndarray,
    values: np.ndarray,
    num_segments: int,
    num_buckets: int,
) -> np.ndarray:
    """Per-segment histograms of flat ``values``, shape ``(segments, buckets)``.

    ``segments`` holds each element's segment id in ``[0, num_segments)``.
    One offset ``bincount`` covers every segment — the fused-batch
    equivalent of one privatised-histogram kernel over the whole batch.
    """
    if num_segments < 0 or num_buckets <= 0:
        raise ValueError(
            f"need num_segments >= 0 and num_buckets > 0, "
            f"got {num_segments}, {num_buckets}"
        )
    segments = np.asarray(segments, dtype=np.int64)
    values = np.asarray(values)
    if segments.shape != values.shape or segments.ndim != 1:
        raise ValueError(
            f"segments and values must be matching 1-d arrays, "
            f"got {segments.shape} and {values.shape}"
        )
    if segments.size == 0:
        return np.zeros((num_segments, num_buckets), dtype=np.int64)
    if segments.min() < 0 or segments.max() >= num_segments:
        raise ValueError(f"segment ids outside [0, {num_segments})")
    v = values.astype(np.int64)
    if v.min() < 0 or v.max() >= num_buckets:
        raise ValueError(f"bucket values outside [0, {num_buckets})")
    flat = segments * num_buckets + v
    counts = np.bincount(flat, minlength=num_segments * num_buckets)
    return counts.reshape(num_segments, num_buckets)


def head_mask(counts: np.ndarray, take: np.ndarray) -> np.ndarray:
    """Mask selecting the first ``take[i]`` elements of each segment.

    ``counts`` describes a row-major flat array's segment lengths; the
    returned boolean mask has ``counts.sum()`` entries.
    """
    counts = np.asarray(counts, dtype=np.int64)
    take = np.asarray(take, dtype=np.int64)
    if counts.shape != take.shape:
        raise ValueError("counts and take must have matching shapes")
    offsets = segment_offsets(counts)
    total = int(offsets[-1])
    position = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    return position < np.repeat(take, counts)


def segment_min_max(
    values: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(min, max)`` of a row-major flat array.

    Every segment must be non-empty (``ufunc.reduceat`` silently reads the
    next segment's first element otherwise, so this is checked).
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be a 1-d CSR offset array")
    if offsets.size == 1:
        return (
            np.empty(0, dtype=values.dtype),
            np.empty(0, dtype=values.dtype),
        )
    if int(offsets[-1]) != values.shape[0]:
        raise ValueError(
            f"offsets cover {int(offsets[-1])} elements, have {values.shape[0]}"
        )
    if (np.diff(offsets) <= 0).any():
        raise ValueError("segment_min_max requires non-empty segments")
    starts = offsets[:-1]
    return (
        np.minimum.reduceat(values, starts),
        np.maximum.reduceat(values, starts),
    )
