"""Digit histograms (Sec. 2.3, step 1 of every radix top-k iteration)."""

from __future__ import annotations

import numpy as np


def digit_histogram(digits: np.ndarray, num_buckets: int) -> np.ndarray:
    """Frequencies of each digit value in ``[0, num_buckets)``.

    Equivalent to the atomic-increment histogram a GPU kernel builds in
    shared memory and reduces to device memory.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    digits = np.asarray(digits)
    if digits.size and (digits.min() < 0 or digits.max() >= num_buckets):
        raise ValueError(
            f"digit values outside [0, {num_buckets}): "
            f"min={digits.min()}, max={digits.max()}"
        )
    return np.bincount(digits.ravel(), minlength=num_buckets).astype(np.int64)


def batched_digit_histogram(digits: np.ndarray, num_buckets: int) -> np.ndarray:
    """Per-row histograms for a 2-d array of digits, shape ``(rows, buckets)``."""
    if digits.ndim != 2:
        raise ValueError(f"expected 2-d digits, got shape {digits.shape}")
    rows = digits.shape[0]
    if digits.size and (digits.min() < 0 or digits.max() >= num_buckets):
        raise ValueError(f"digit values outside [0, {num_buckets})")
    # offset each row into its own bucket range so one bincount does all
    # rows; staying in the digits' own dtype (when the flat bin index
    # fits) skips a full-size int64 temporary on the hot path
    total_bins = rows * num_buckets
    dt = digits.dtype
    if dt.kind == "u" and total_bins <= np.iinfo(dt).max:
        offsets = (np.arange(rows, dtype=dt) * dt.type(num_buckets))[:, None]
        flat = (digits + offsets).ravel()
    else:
        offsets = (np.arange(rows, dtype=np.int64) * num_buckets)[:, None]
        flat = (digits.astype(np.int64) + offsets).ravel()
    counts = np.bincount(flat, minlength=total_bins)
    return counts.reshape(rows, num_buckets)
