"""Order-preserving radix encodings and digit extraction.

Radix top-k operates on an unsigned-integer key space in which numeric
order equals lexicographic bit order.  IEEE-754 floats do not have that
property directly, so keys are transcoded with the standard monotone
bijection (flip the sign bit of non-negative values, flip every bit of
negative values).  This is exactly what CUB's radix sort and the RAFT
``select_radix`` implementation do.

Digit layout: the algorithms scan from the most significant digit to the
least significant one (Sec. 2.3 of the paper).  With ``r``-bit keys and
``b``-bit digits there are ``ceil(r/b)`` passes; when ``b`` does not divide
``r`` the final pass uses the remaining low bits (for the paper's r=32,
b=11 configuration the pass widths are 11, 11, 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: dtypes supported as radix keys, mapped to their unsigned view type
_UNSIGNED_VIEW = {
    np.dtype(np.float16): np.dtype(np.uint16),
    np.dtype(np.int16): np.dtype(np.uint16),
    np.dtype(np.uint16): np.dtype(np.uint16),
    np.dtype(np.float32): np.dtype(np.uint32),
    np.dtype(np.int32): np.dtype(np.uint32),
    np.dtype(np.uint32): np.dtype(np.uint32),
    np.dtype(np.float64): np.dtype(np.uint64),
    np.dtype(np.int64): np.dtype(np.uint64),
    np.dtype(np.uint64): np.dtype(np.uint64),
}


def key_bits(dtype) -> int:
    """Number of key bits for a supported dtype."""
    dt = np.dtype(dtype)
    if dt not in _UNSIGNED_VIEW:
        raise TypeError(f"unsupported radix key dtype {dt}")
    return dt.itemsize * 8


def encode(values: np.ndarray) -> np.ndarray:
    """Map values to unsigned keys whose integer order equals value order.

    NaNs are canonicalised to the positive quiet-NaN pattern first, so every
    NaN encodes to the same key, which is larger than the encoding of +inf:
    NaNs sort after every number and are only selected when k forces it.
    """
    dt = values.dtype
    if dt not in _UNSIGNED_VIEW:
        raise TypeError(f"unsupported radix key dtype {dt}")
    utype = _UNSIGNED_VIEW[dt]
    if dt.kind == "f":
        values = np.where(np.isnan(values), np.asarray(np.nan, dtype=dt), values)
        u = values.view(utype)
        sign_mask = utype.type(1) << utype.type(key_bits(dt) - 1)
        negative = (u & sign_mask) != 0
        return np.where(negative, ~u, u | sign_mask)
    if dt.kind == "i":
        u = values.view(utype)
        sign_mask = utype.type(1) << utype.type(key_bits(dt) - 1)
        return u ^ sign_mask
    return values.astype(utype, copy=False)


def decode(keys: np.ndarray, dtype) -> np.ndarray:
    """Inverse of :func:`encode` (up to NaN canonicalisation)."""
    dt = np.dtype(dtype)
    if dt not in _UNSIGNED_VIEW:
        raise TypeError(f"unsupported radix key dtype {dt}")
    utype = _UNSIGNED_VIEW[dt]
    keys = keys.astype(utype, copy=False)
    nbits = key_bits(dt)
    sign_mask = utype.type(1) << utype.type(nbits - 1)
    if dt.kind == "f":
        was_negative = (keys & sign_mask) == 0
        u = np.where(was_negative, ~keys, keys & ~sign_mask)
        return u.astype(utype).view(dt)
    if dt.kind == "i":
        return (keys ^ sign_mask).view(dt)
    return keys.view(dt)


def invert(keys: np.ndarray) -> np.ndarray:
    """Reverse the order of encoded keys (select-largest via select-smallest)."""
    return ~keys


def priority_keys(values: np.ndarray, *, largest: bool = False) -> np.ndarray:
    """Keys whose ascending order is the selection priority.

    Implements the library's NaN policy in both directions: NaN is never
    preferred.  For smallest-first the plain encoding already places NaN
    above +inf; for largest-first a plain inversion would flip NaN to the
    front, so NaN positions are re-pinned just below the sentinel key.
    """
    keys = encode(values)
    if not largest:
        return keys
    keys = invert(keys)
    if values.dtype.kind == "f":
        nan_key = keys.dtype.type(~keys.dtype.type(0) - keys.dtype.type(1))
        keys = np.where(np.isnan(values), nan_key, keys)
    return keys


@dataclass(frozen=True)
class DigitPass:
    """One most-significant-first radix pass."""

    index: int
    shift: int
    width: int

    @property
    def num_buckets(self) -> int:
        return 1 << self.width

    def extract(self, keys: np.ndarray) -> np.ndarray:
        """Digits of the encoded keys for this pass, as small unsigned ints."""
        mask = keys.dtype.type((1 << self.width) - 1)
        digits = (keys >> keys.dtype.type(self.shift)) & mask
        return digits.astype(np.uint32, copy=False)


def digit_layout(total_bits: int, digit_bits: int) -> list[DigitPass]:
    """MSB-first digit passes covering ``total_bits`` with ``digit_bits`` digits.

    >>> [(p.shift, p.width) for p in digit_layout(32, 11)]
    [(21, 11), (10, 11), (0, 10)]
    """
    if total_bits <= 0 or digit_bits <= 0:
        raise ValueError("total_bits and digit_bits must be positive")
    if digit_bits > total_bits:
        raise ValueError(
            f"digit_bits ({digit_bits}) cannot exceed total_bits ({total_bits})"
        )
    passes: list[DigitPass] = []
    consumed = 0
    index = 0
    while consumed < total_bits:
        width = min(digit_bits, total_bits - consumed)
        shift = total_bits - consumed - width
        passes.append(DigitPass(index=index, shift=shift, width=width))
        consumed += width
        index += 1
    return passes
