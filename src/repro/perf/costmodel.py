"""Analytic cost model: counted work -> simulated time.

The model prices one kernel launch from four components and takes the
critical-path maximum, which is the standard roofline treatment plus a
latency term for serially dependent work:

``duration = max(mem_time, compute_time, latency_time) + tail``

* ``mem_time`` — device-memory bytes divided by the bandwidth available to
  the launch's resident warps (linear ramp to saturation; this term is what
  makes single-block BlockSelect ~2-3 orders of magnitude slower than a
  grid-wide kernel at large N, Sec. 5.3 of the paper).
* ``compute_time`` — FP32-equivalent operations divided by available
  arithmetic throughput.
* ``latency_time`` — a chain of serially dependent cycles on the kernel's
  critical path (queue-based algorithms process their input in lockstep
  rounds; each round's insert/compare work depends on the previous round's
  threshold).
* ``tail`` — fixed scheduling tail so no kernel is cheaper than the device's
  minimum kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LaunchShape:
    """Grid configuration of a kernel launch."""

    grid_blocks: int
    block_threads: int

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError(f"grid_blocks must be positive, got {self.grid_blocks}")
        if self.block_threads <= 0:
            raise ValueError(
                f"block_threads must be positive, got {self.block_threads}"
            )

    def warps(self, warp_size: int) -> int:
        """Total warps launched."""
        return self.grid_blocks * -(-self.block_threads // warp_size)


@dataclass(frozen=True)
class KernelCost:
    """Priced execution of one kernel launch."""

    duration: float
    mem_time: float
    compute_time: float
    latency_time: float

    @property
    def bound(self) -> str:
        """Which resource bounds this launch ('memory', 'compute', 'latency')."""
        best = max(self.mem_time, self.compute_time, self.latency_time)
        if best == self.mem_time:
            return "memory"
        if best == self.compute_time:
            return "compute"
        return "latency"


class KernelCostModel:
    """Prices kernel launches against a :class:`repro.device.GPUSpec`."""

    def __init__(self, spec) -> None:
        self.spec = spec

    def available_bandwidth(self, shape: LaunchShape, *, warp_efficiency: float = 1.0) -> float:
        """Device-memory bandwidth available to a launch, bytes/second.

        ``warp_efficiency`` models how well a warp keeps memory requests in
        flight.  Per-thread-queue kernels (WarpSelect/BlockSelect) issue
        dependent loads around their queue bookkeeping and achieve a fraction
        of a streaming warp's bandwidth; the shared-queue two-step insertion
        of GridSelect restores streaming behaviour (Sec. 4).
        """
        if not 0.0 < warp_efficiency <= 1.0:
            raise ValueError(f"warp_efficiency must be in (0, 1], got {warp_efficiency}")
        warps = shape.warps(self.spec.warp_size) * warp_efficiency
        frac = self.spec.bandwidth_fraction(warps)
        return self.spec.effective_bandwidth * frac

    def available_compute(self, shape: LaunchShape) -> float:
        """FP32 throughput available to a launch, FLOP/second."""
        warps = shape.warps(self.spec.warp_size)
        frac = self.spec.compute_fraction(warps)
        return self.spec.effective_fp32 * frac

    def price(
        self,
        shape: LaunchShape,
        *,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        flops: float = 0.0,
        dependent_cycles: float = 0.0,
        warp_efficiency: float = 1.0,
    ) -> KernelCost:
        """Price one kernel launch.

        ``dependent_cycles`` is the length (in SM cycles) of the serially
        dependent chain on the kernel's critical path; it is divided by the
        clock only, never by parallelism, because by definition it cannot be
        overlapped.
        """
        if min(bytes_read, bytes_written, flops, dependent_cycles) < 0:
            raise ValueError("work quantities must be non-negative")
        bw = self.available_bandwidth(shape, warp_efficiency=warp_efficiency)
        nbytes = bytes_read + bytes_written
        # the first burst rides a single memory round trip regardless of how
        # throttled the kernel's sustained rate is: every launched warp fires
        # its initial outstanding loads at once.  Only the remainder pays the
        # occupancy-limited sustained bandwidth — this is what lets tiny
        # problems finish in launch-latency time for single-block kernels
        # (the near-1x small-N ratios of the paper's Table 2).
        spec = self.spec
        first_burst = shape.warps(spec.warp_size) * spec.outstanding_bytes_per_warp
        sustained_bytes = max(0.0, nbytes - first_burst)
        mem_time = 0.0
        if nbytes > 0:
            mem_time = spec.mem_latency_cycles / spec.clock_hz
            if sustained_bytes > 0 and bw > 0:
                mem_time += sustained_bytes / bw
            mem_time = max(mem_time, nbytes / spec.effective_bandwidth)
        comp = self.available_compute(shape)
        compute_time = flops / comp if comp > 0 else 0.0
        latency_time = dependent_cycles / self.spec.clock_hz
        duration = (
            max(mem_time, compute_time, latency_time)
            + self.spec.kernel_tail_latency
        )
        return KernelCost(
            duration=duration,
            mem_time=mem_time,
            compute_time=compute_time,
            latency_time=latency_time,
        )

    def pcie_time(self, nbytes: float) -> float:
        """Duration of one PCIe transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.spec.pcie_latency + nbytes / self.spec.pcie_bandwidth
