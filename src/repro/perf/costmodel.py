"""Analytic cost model: counted work -> simulated time.

The model prices one kernel launch from four components and takes the
critical-path maximum, which is the standard roofline treatment plus a
latency term for serially dependent work:

``duration = max(mem_time, compute_time, latency_time) + tail``

* ``mem_time`` — device-memory bytes divided by the bandwidth available to
  the launch's resident warps (linear ramp to saturation; this term is what
  makes single-block BlockSelect ~2-3 orders of magnitude slower than a
  grid-wide kernel at large N, Sec. 5.3 of the paper).
* ``compute_time`` — FP32-equivalent operations divided by available
  arithmetic throughput.
* ``latency_time`` — a chain of serially dependent cycles on the kernel's
  critical path (queue-based algorithms process their input in lockstep
  rounds; each round's insert/compare work depends on the previous round's
  threshold).
* ``tail`` — fixed scheduling tail so no kernel is cheaper than the device's
  minimum kernel time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from . import calibration as cal


@dataclass(frozen=True)
class LaunchShape:
    """Grid configuration of a kernel launch."""

    grid_blocks: int
    block_threads: int

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError(f"grid_blocks must be positive, got {self.grid_blocks}")
        if self.block_threads <= 0:
            raise ValueError(
                f"block_threads must be positive, got {self.block_threads}"
            )

    def warps(self, warp_size: int) -> int:
        """Total warps launched."""
        return self.grid_blocks * -(-self.block_threads // warp_size)


@dataclass(frozen=True)
class KernelCost:
    """Priced execution of one kernel launch."""

    duration: float
    mem_time: float
    compute_time: float
    latency_time: float

    @property
    def bound(self) -> str:
        """Which resource bounds this launch ('memory', 'compute', 'latency')."""
        best = max(self.mem_time, self.compute_time, self.latency_time)
        if best == self.mem_time:
            return "memory"
        if best == self.compute_time:
            return "compute"
        return "latency"


class KernelCostModel:
    """Prices kernel launches against a :class:`repro.device.GPUSpec`."""

    def __init__(self, spec) -> None:
        self.spec = spec

    def available_bandwidth(self, shape: LaunchShape, *, warp_efficiency: float = 1.0) -> float:
        """Device-memory bandwidth available to a launch, bytes/second.

        ``warp_efficiency`` models how well a warp keeps memory requests in
        flight.  Per-thread-queue kernels (WarpSelect/BlockSelect) issue
        dependent loads around their queue bookkeeping and achieve a fraction
        of a streaming warp's bandwidth; the shared-queue two-step insertion
        of GridSelect restores streaming behaviour (Sec. 4).
        """
        if not 0.0 < warp_efficiency <= 1.0:
            raise ValueError(f"warp_efficiency must be in (0, 1], got {warp_efficiency}")
        warps = shape.warps(self.spec.warp_size) * warp_efficiency
        frac = self.spec.bandwidth_fraction(warps)
        return self.spec.effective_bandwidth * frac

    def available_compute(self, shape: LaunchShape) -> float:
        """FP32 throughput available to a launch, FLOP/second."""
        warps = shape.warps(self.spec.warp_size)
        frac = self.spec.compute_fraction(warps)
        return self.spec.effective_fp32 * frac

    def price(
        self,
        shape: LaunchShape,
        *,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        flops: float = 0.0,
        dependent_cycles: float = 0.0,
        warp_efficiency: float = 1.0,
    ) -> KernelCost:
        """Price one kernel launch.

        ``dependent_cycles`` is the length (in SM cycles) of the serially
        dependent chain on the kernel's critical path; it is divided by the
        clock only, never by parallelism, because by definition it cannot be
        overlapped.
        """
        if min(bytes_read, bytes_written, flops, dependent_cycles) < 0:
            raise ValueError("work quantities must be non-negative")
        bw = self.available_bandwidth(shape, warp_efficiency=warp_efficiency)
        nbytes = bytes_read + bytes_written
        # the first burst rides a single memory round trip regardless of how
        # throttled the kernel's sustained rate is: every launched warp fires
        # its initial outstanding loads at once.  Only the remainder pays the
        # occupancy-limited sustained bandwidth — this is what lets tiny
        # problems finish in launch-latency time for single-block kernels
        # (the near-1x small-N ratios of the paper's Table 2).
        spec = self.spec
        first_burst = shape.warps(spec.warp_size) * spec.outstanding_bytes_per_warp
        sustained_bytes = max(0.0, nbytes - first_burst)
        mem_time = 0.0
        if nbytes > 0:
            mem_time = spec.mem_latency_cycles / spec.clock_hz
            if sustained_bytes > 0 and bw > 0:
                mem_time += sustained_bytes / bw
            mem_time = max(mem_time, nbytes / spec.effective_bandwidth)
        comp = self.available_compute(shape)
        compute_time = flops / comp if comp > 0 else 0.0
        latency_time = dependent_cycles / self.spec.clock_hz
        duration = (
            max(mem_time, compute_time, latency_time)
            + self.spec.kernel_tail_latency
        )
        return KernelCost(
            duration=duration,
            mem_time=mem_time,
            compute_time=compute_time,
            latency_time=latency_time,
        )

    def pcie_time(self, nbytes: float) -> float:
        """Duration of one PCIe transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.spec.pcie_latency + nbytes / self.spec.pcie_bandwidth


# --------------------------------------------------------------------------
# Whole-run prediction — the dispatch query API.
#
# ``predict_topk_time`` prices a complete top-k run from the problem shape
# alone, without generating data or executing an algorithm.  It replays each
# method's launch sequence analytically: the same launch shapes, calibration
# constants and per-launch overheads the simulated implementations charge,
# with *expected* (distribution-free) values substituted for data-dependent
# quantities (survivor counts assume a smooth value distribution; queue
# insert counts use the E[inserts] ~ K ln(N/K) streaming bound).  The
# ``auto`` registry algorithm ranks these predictions to choose a concrete
# method per problem; accuracy is judged by ranking fidelity, not absolute
# microseconds (see tests/test_costmodel.py and the differential suite).
# --------------------------------------------------------------------------

#: exact algorithms the analytic predictor understands.  The ``auto``
#: dispatcher draws its candidates from this tuple, so it must stay
#: exact-only: a plain ``repro.topk()`` call must never be silently
#: served an approximate result
PREDICTABLE_ALGORITHMS = (
    "air_topk",
    "grid_select",
    "sort",
    "radix_select",
    "warp_select",
    "block_select",
    "bitonic_topk",
    "quick_select",
    "bucket_select",
    "sample_select",
    "drtopk_hybrid",
)

#: approximate-tier algorithms the predictor also understands; only the
#: quality-aware dispatch (repro.approx.planner) ranks these, and only
#: when the caller opted in via ``mode=`` / ``min_recall=``
APPROX_ALGORITHMS = (
    "bucket_approx",
    "twostage_approx",
)


@dataclass(frozen=True)
class TopKPrediction:
    """Predicted run time of one algorithm on one problem shape."""

    algo: str
    #: predicted wall-clock seconds (analytic, optionally calibrated)
    time: float
    #: "model" for a pure analytic estimate, "calibrated" when refined by
    #: measured data from a :class:`repro.perf.calibration.CalibrationCache`
    source: str = "model"


def _stream_shape(spec, elems: float) -> LaunchShape:
    """Launch shape of a streaming kernel over ``elems`` items."""
    from ..device import streaming_grid  # lazy: device imports this module

    grid = streaming_grid(
        spec,
        max(1, int(elems)),
        items_per_thread=int(cal.STREAM_ITEMS_PER_THREAD),
    )
    return LaunchShape(grid, 256)


def _expected_inserts(n: float, k: float) -> float:
    """E[top-k structure updates] over a random-order stream of n items."""
    if n <= 0 or k <= 0:
        return 0.0
    return k * (1.0 + math.log(max(n / k, 1.0)))


def _sort_comparators(m: float) -> float:
    """Comparators of a bitonic sort network over m (power-of-two) keys."""
    if m <= 1:
        return 0.0
    stages = math.log2(m)
    return m * stages * (stages + 1) / 4.0


def _predict_sort(model: KernelCostModel, spec, n: int, k: int, batch: int) -> float:
    """Full radix sort (onesweep) per problem row, then copy the head."""
    shape = _stream_shape(spec, n)
    passes = 4  # 8-bit digits over 32-bit keys
    hist = model.price(
        shape,
        bytes_read=4.0 * n,
        bytes_written=passes * 256 * 4.0,
        flops=cal.HISTOGRAM_OPS_PER_ELEM * n,
    )
    onesweep = model.price(
        shape,
        bytes_read=8.0 * n,
        bytes_written=8.0 * n,
        flops=cal.SORT_PASS_OPS_PER_ELEM * n,
    )
    copy = model.price(
        _stream_shape(spec, k), bytes_read=8.0 * k, bytes_written=8.0 * k,
        flops=2.0 * k,
    )
    per_row = (
        hist.duration
        + passes * onesweep.duration
        + copy.duration
        + (passes + 2) * spec.kernel_launch_latency
    )
    return batch * per_row + spec.sync_latency


def _predict_radix_select(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    """Host-coordinated RadixSelect: per-iteration sync/PCIe/host costs."""
    buckets = 256
    passes = 4
    per_row = cal.HOST_ALLOC_SECONDS
    per_row += (
        model.price(_stream_shape(spec, n), bytes_written=4.0 * n, flops=1.0 * n).duration
        + spec.kernel_launch_latency
    )
    count = float(n)
    for _ in range(passes):
        shape = _stream_shape(spec, count)
        per_row += model.price(
            shape,
            bytes_read=4.0 * count,
            bytes_written=buckets * 4.0,
            flops=cal.HISTOGRAM_OPS_PER_ELEM * count,
        ).duration
        per_row += spec.sync_latency + model.pcie_time(buckets * 4.0)
        per_row += cal.HOST_RADIX_ITER_SECONDS + model.pcie_time(64.0)
        survivors = max(float(k), count / buckets)
        per_row += model.price(
            shape,
            bytes_read=8.0 * count,
            bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * survivors,
            flops=cal.FILTER_OPS_PER_ELEM * count,
        ).duration
        per_row += 2 * spec.kernel_launch_latency + spec.sync_latency
        count = survivors
        if count <= k:
            break
    return batch * per_row


def _partition_terminal_time(
    model: KernelCostModel, spec, count: float, k: int, batch: int
) -> float:
    """Shared terminal bitonic sort of the partition family: one block per
    row still owing results, priced at the fused survivor count."""
    comps = _sort_comparators(2 ** math.ceil(math.log2(max(2.0, count))))
    t = model.price(
        LaunchShape(batch, 256),
        bytes_read=8.0 * count * batch,
        bytes_written=8.0 * k * batch,
        flops=cal.OPS_PER_COMPARATOR * batch * comps,
    ).duration
    return t + spec.kernel_launch_latency + spec.sync_latency


def _predict_quick_select(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    """Fused batched QuickSelect: one count+scatter launch pair per
    recursion level over the concatenated survivors of every active row.

    The host round trip (sync, batched count transfer, per-row pivot picks)
    is paid once per *level*, not once per row; the expected survivor
    fraction of a median-of-three pivot is 1/2.
    """
    terminal = 1024.0
    t = cal.HOST_ALLOC_SECONDS
    count = float(n)
    while count > max(terminal, float(k)):
        total = count * batch
        shape = _stream_shape(spec, total)
        t += model.price(  # QuickSelectCount: pivot-comparison tallies
            shape, bytes_read=4.0 * total, bytes_written=8.0 * batch,
            flops=2.0 * total,
        ).duration
        t += model.price(  # QuickSelectScatter partitions the candidates
            shape,
            bytes_read=8.0 * total,
            bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
            flops=cal.PARTITION_OPS_PER_ELEM * total,
        ).duration
        # host coordination once per level, not once per row
        t += 2 * spec.kernel_launch_latency + 2 * spec.sync_latency
        t += model.pcie_time(8.0 * batch)  # per-row counts
        t += cal.HOST_PIVOT_SECONDS * batch
        count = max(float(k), count * 0.5)
    return t + _partition_terminal_time(model, spec, count, k, batch)


def _predict_sample_select(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    """Fused batched SampleSelect: per iteration, one block-per-row sample
    sort, a splitter-search histogram over the flat candidates, a batched
    histogram PCIe transfer + host scan, an offset scan and the filtering
    scatter — 256 splitter buckets shrink the survivors by ~1/256."""
    buckets = 256
    terminal = 1024.0
    sample_comps = _sort_comparators(1024.0)
    t = cal.HOST_ALLOC_SECONDS
    count = float(n)
    while count > max(terminal, float(k)):
        total = count * batch
        shape = _stream_shape(spec, total)
        s = min(1024.0, count)
        t += model.price(  # SampleGatherSort: one block per row
            LaunchShape(batch, 256),
            bytes_read=4.0 * s * batch,
            bytes_written=4.0 * (buckets - 1) * batch,
            flops=cal.OPS_PER_COMPARATOR * sample_comps * batch,
        ).duration
        t += model.price(  # SplitterHistogram over the flat candidates
            shape,
            bytes_read=4.0 * total,
            bytes_written=batch * buckets * 4.0,
            flops=cal.SPLITTER_SEARCH_OPS_PER_ELEM * total,
        ).duration
        t += model.price(  # ScanBucketOffsets: one block per active row
            LaunchShape(batch, 256),
            bytes_read=batch * buckets * 4.0,
            bytes_written=batch * buckets * 4.0,
            flops=float(batch * buckets * 8),
        ).duration
        t += model.price(  # SampleFilter scatters into grouped buckets
            shape,
            bytes_read=8.0 * total,
            bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
            flops=cal.FILTER_OPS_PER_ELEM * total,
        ).duration
        # host coordination once per iteration, not once per row
        t += 4 * spec.kernel_launch_latency + 3 * spec.sync_latency
        t += model.pcie_time(batch * buckets * 4.0)  # histograms
        t += cal.HOST_SCAN_SECONDS * batch
        count = max(float(k), count / buckets)
    return t + _partition_terminal_time(model, spec, count, k, batch)


def _predict_bucket_select(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    """Fused batched BucketSelect: one launch set per iteration, all rows.

    Unlike the serial partition family, the host round trip (sync, batched
    histogram PCIe transfer, host scan) is paid once per *iteration*, not
    once per row — the kernels stream the concatenated candidates of every
    still-active row, so only the device-side traffic scales with batch.
    """
    buckets = 256
    terminal = 1024.0
    t = cal.HOST_ALLOC_SECONDS
    count = float(n)
    while count > max(terminal, float(k)):
        total = count * batch
        shape = _stream_shape(spec, total)
        t += model.price(  # MinMaxReduce: bucket boundaries for every row
            shape, bytes_read=4.0 * total, bytes_written=8.0 * batch,
            flops=2.0 * total,
        ).duration
        t += model.price(  # BucketHistogram over the flat candidates
            shape,
            bytes_read=4.0 * total,
            bytes_written=batch * buckets * 4.0,
            flops=cal.HISTOGRAM_OPS_PER_ELEM * total,
        ).duration
        t += model.price(  # ScanBucketOffsets: one block per active row
            LaunchShape(batch, 256),
            bytes_read=batch * buckets * 4.0,
            bytes_written=batch * buckets * 4.0,
            flops=float(batch * buckets * 8),
        ).duration
        t += model.price(  # BucketFilter scatters into grouped buckets
            shape,
            bytes_read=8.0 * total,
            bytes_written=cal.SCATTER_WRITE_PENALTY * 8.0 * total,
            flops=cal.FILTER_OPS_PER_ELEM * total,
        ).duration
        # host coordination once per iteration, not once per row
        t += 4 * spec.kernel_launch_latency + 4 * spec.sync_latency
        t += model.pcie_time(8.0 * batch)  # min/max
        t += model.pcie_time(batch * buckets * 4.0)  # histograms
        t += cal.HOST_SCAN_SECONDS * batch
        count = max(float(k), count / buckets)
    # shared terminal sort: one block per row still owing results
    comps = _sort_comparators(2 ** math.ceil(math.log2(max(2.0, count))))
    t += model.price(
        LaunchShape(batch, 256),
        bytes_read=8.0 * count * batch,
        bytes_written=8.0 * k * batch,
        flops=cal.OPS_PER_COMPARATOR * batch * comps,
    ).duration
    return t + spec.kernel_launch_latency + spec.sync_latency


def _predict_thread_queue(
    model: KernelCostModel, spec, n: int, k: int, batch: int, *, lanes: int
) -> float:
    """WarpSelect / BlockSelect: one ``lanes``-thread block per problem."""
    shape = LaunchShape(batch, lanes)
    inserts = _expected_inserts(n, k) * batch
    flushes = inserts / (lanes * cal.THREAD_QUEUE_LEN)
    flush_comps = _sort_comparators(2 ** math.ceil(math.log2(max(2, 2 * k))))
    rounds = -(-n // lanes)
    dependent = (
        rounds * cal.ROUND_CYCLES_THREAD_QUEUE
        + (flushes / batch) * (flush_comps / lanes)
        * cal.FLUSH_CYCLES_PER_LANE_COMPARATOR
        + cal.QUEUE_KERNEL_FIXED_CYCLES
        + batch * cal.QUEUE_PER_PROBLEM_CYCLES
    )
    kernel = model.price(
        shape,
        bytes_read=4.0 * batch * n,
        bytes_written=8.0 * batch * k,
        flops=(
            cal.THREAD_QUEUE_OPS_PER_ELEM
            * cal.queue_k_ops_factor(k)
            * batch
            * n
            + cal.OPS_PER_COMPARATOR * flushes * flush_comps
        ),
        dependent_cycles=dependent,
        warp_efficiency=cal.WARP_EFFICIENCY_THREAD_QUEUE,
    )
    return kernel.duration + spec.kernel_launch_latency + spec.sync_latency


def _grid_select_blocks(spec, n: int) -> int:
    """Blocks per problem used by GridSelect (mirrors GridSelect.num_blocks)."""
    per_block = 256 * cal.STREAM_ITEMS_PER_THREAD * 16
    needed = -(-n // int(per_block))
    return max(1, min(needed, 2 * spec.sm_count))


def _predict_grid_select(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    blocks = _grid_select_blocks(spec, n)
    shape = LaunchShape(batch * blocks, 256)
    slice_len = -(-n // blocks)
    inserts = _expected_inserts(slice_len, min(k, slice_len)) * blocks * batch
    flushes = inserts / cal.SHARED_QUEUE_LEN
    flush_comps = _sort_comparators(2 ** math.ceil(math.log2(max(2, 2 * k))))
    dependent = (
        (-(-slice_len // 256)) * cal.ROUND_CYCLES_SHARED_QUEUE
        + (flushes / (batch * blocks)) * (flush_comps / 256)
        * cal.FLUSH_CYCLES_PER_LANE_COMPARATOR
        + cal.GRID_KERNEL_FIXED_CYCLES
        + batch * cal.QUEUE_PER_PROBLEM_CYCLES
    )
    t = model.price(
        shape,
        bytes_read=4.0 * batch * n,
        bytes_written=8.0 * batch * blocks * k,
        flops=(
            cal.SHARED_QUEUE_OPS_PER_ELEM
            * cal.queue_k_ops_factor(k)
            * batch
            * n
            + cal.OPS_PER_COMPARATOR * flushes * flush_comps
        ),
        dependent_cycles=dependent,
        warp_efficiency=cal.WARP_EFFICIENCY_SHARED_QUEUE,
    ).duration
    t += spec.kernel_launch_latency
    if blocks > 1:
        merge_elems = batch * blocks * k
        t += model.price(
            LaunchShape(batch, 256),
            bytes_read=8.0 * merge_elems,
            bytes_written=8.0 * batch * k,
            flops=cal.OPS_PER_COMPARATOR
            * batch
            * _sort_comparators(2 ** math.ceil(math.log2(max(2, blocks * k)))),
        ).duration
        t += spec.kernel_launch_latency
    return t + spec.sync_latency


def _predict_air_topk(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    """AIR Top-K: 3 fused kernels + last filter, no host round trips."""
    buckets = 1 << 11
    shape = _stream_shape(spec, n * batch)
    alpha = 128.0
    c1 = max(1.0, min(float(n), n / buckets + k))
    c2 = max(1.0, min(c1, c1 / buckets + k))
    fixed_hist = batch * buckets * 4.0
    per_launch_dep = batch * cal.AIR_PER_PROBLEM_CYCLES
    t = model.price(  # kernel 1: scan all of N, histogram digit 0
        shape,
        bytes_read=4.0 * n * batch,
        bytes_written=fixed_hist,
        flops=cal.FUSED_KERNEL_OPS_PER_ELEM * n * batch,
        dependent_cycles=per_launch_dep,
    ).duration
    # kernel 2 rescans N (pass 1 never buffers), buffers its survivors
    buffer1 = c1 < n / alpha
    t += model.price(
        shape,
        bytes_read=4.0 * n * batch,
        bytes_written=fixed_hist
        + (cal.ATOMIC_SCATTER_PENALTY * 8.0 * c1 * batch if buffer1 else 0.0),
        flops=cal.FUSED_KERNEL_OPS_PER_ELEM * n * batch,
        dependent_cycles=per_launch_dep,
    ).duration
    # kernel 3 reads the buffer (or rescans), buffers the final survivors
    read3 = 8.0 * c1 * batch if buffer1 else 4.0 * n * batch
    elems3 = c1 * batch if buffer1 else n * batch
    buffer2 = c2 < n / alpha
    t += model.price(
        shape,
        bytes_read=read3,
        bytes_written=fixed_hist
        + (cal.ATOMIC_SCATTER_PENALTY * 8.0 * c2 * batch if buffer2 else 0.0),
        flops=cal.FUSED_KERNEL_OPS_PER_ELEM * elems3,
        dependent_cycles=per_launch_dep,
    ).duration
    # last filter gathers the k results from the final candidates
    read4 = 8.0 * c2 * batch if buffer2 else 4.0 * n * batch
    elems4 = c2 * batch if buffer2 else n * batch
    t += model.price(
        shape,
        bytes_read=read4,
        bytes_written=8.0 * k * batch,
        flops=cal.FILTER_OPS_PER_ELEM * elems4,
        dependent_cycles=per_launch_dep,
    ).duration
    return t + 4 * spec.kernel_launch_latency + spec.sync_latency


def _predict_bitonic(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    kp = 2 ** math.ceil(math.log2(max(2, k)))
    runs = -(-n // kp)
    shape = _stream_shape(spec, n)
    per_row = model.price(
        shape,
        bytes_read=4.0 * n,
        bytes_written=8.0 * n,
        flops=cal.BITONIC_OPS_PER_COMPARATOR * runs * _sort_comparators(kp),
        dependent_cycles=cal.BITONIC_KERNEL_FIXED_CYCLES,
    ).duration + spec.kernel_launch_latency
    m = runs
    while m > 1:
        pairs = (m + 1) // 2
        elems = pairs * 2 * kp
        merge_comps = kp * (math.log2(kp) / 2.0 + 1.0)
        per_row += model.price(
            _stream_shape(spec, elems),
            bytes_read=8.0 * elems,
            bytes_written=4.0 * elems,
            flops=cal.BITONIC_OPS_PER_COMPARATOR * pairs * (kp + merge_comps),
            dependent_cycles=cal.BITONIC_KERNEL_FIXED_CYCLES,
        ).duration + spec.kernel_launch_latency
        m = pairs
    return batch * per_row + spec.sync_latency


def _predict_drtopk_hybrid(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    """Delegate hybrid: reduction + top-k over delegates + final top-k."""
    g = max(1, int(math.sqrt(n / max(1, k))))
    delegates = -(-n // g)
    reduce_t = model.price(
        _stream_shape(spec, n),
        bytes_read=4.0 * n,
        bytes_written=8.0 * delegates,
        flops=2.0 * n,
    ).duration
    per_row = (
        reduce_t
        + spec.kernel_launch_latency
        + _predict_air_topk(
            model, spec, max(1, delegates), max(1, min(k, delegates)), 1
        )
        + _predict_air_topk(model, spec, max(1, k * g), max(1, min(k, k * g)), 1)
    )
    return batch * per_row


def _predict_partition_approx(
    model: KernelCostModel, spec, n: int, k: int, batch: int, parts: int, keep: int
) -> float:
    """Shared shape of the approximate tier (repro.algos.approx_base).

    One coalesced streaming pass maintaining per-partition best-``keep``
    queues, then one survivor-merge launch — no host round trip between
    the stages; the workloads come from the same helpers the simulated
    kernels charge, so prediction tracks execution by construction.
    """
    from ..approx import (  # lazy: approx imports this module's package
        APPROX_WARP_EFFICIENCY,
        stage1_workload,
        stage2_workload,
    )

    t = model.price(
        _stream_shape(spec, n * batch),
        warp_efficiency=APPROX_WARP_EFFICIENCY,
        **stage1_workload(n, parts, keep, batch),
    ).duration
    m = parts * keep
    t += model.price(
        _stream_shape(spec, m * batch), **stage2_workload(m, k, batch)
    ).duration
    return t + 2 * spec.kernel_launch_latency + spec.sync_latency


def _predict_bucket_approx(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    from ..algos.bucket_approx import BucketApproxTopK

    parts, keep = BucketApproxTopK().plan(n, k)
    return _predict_partition_approx(model, spec, n, k, batch, parts, keep)


def _predict_twostage_approx(
    model: KernelCostModel, spec, n: int, k: int, batch: int
) -> float:
    from ..algos.twostage_approx import TwoStageApproxTopK

    parts, keep = TwoStageApproxTopK().plan(n, k)
    return _predict_partition_approx(model, spec, n, k, batch, parts, keep)


def _predict(algo: str, model: KernelCostModel, spec, n: int, k: int, batch: int) -> float:
    if algo == "sort":
        return _predict_sort(model, spec, n, k, batch)
    if algo == "radix_select":
        return _predict_radix_select(model, spec, n, k, batch)
    if algo == "quick_select":
        return _predict_quick_select(model, spec, n, k, batch)
    if algo == "bucket_select":
        return _predict_bucket_select(model, spec, n, k, batch)
    if algo == "sample_select":
        return _predict_sample_select(model, spec, n, k, batch)
    if algo == "warp_select":
        return _predict_thread_queue(model, spec, n, k, batch, lanes=32)
    if algo == "block_select":
        return _predict_thread_queue(
            model, spec, n, k, batch, lanes=32 * cal.BLOCK_SELECT_WARPS
        )
    if algo == "grid_select":
        return _predict_grid_select(model, spec, n, k, batch)
    if algo == "air_topk":
        return _predict_air_topk(model, spec, n, k, batch)
    if algo == "bitonic_topk":
        return _predict_bitonic(model, spec, n, k, batch)
    if algo == "drtopk_hybrid":
        return _predict_drtopk_hybrid(model, spec, n, k, batch)
    if algo == "bucket_approx":
        return _predict_bucket_approx(model, spec, n, k, batch)
    if algo == "twostage_approx":
        return _predict_twostage_approx(model, spec, n, k, batch)
    raise KeyError(
        f"no analytic prediction for {algo!r}; "
        f"predictable: {PREDICTABLE_ALGORITHMS + APPROX_ALGORITHMS}"
    )


@lru_cache(maxsize=4096)
def _predict_cached(algo: str, spec, n: int, k: int, batch: int) -> float:
    return _predict(algo, KernelCostModel(spec), spec, n, k, batch)


def predict_topk_time(algo: str, *, n: int, k: int, batch: int = 1, spec=None) -> float:
    """Predicted run time (seconds) of ``algo`` on an (n, k, batch) problem.

    Analytic only — see :func:`rank_algorithms` for calibrated ranking.
    """
    if n <= 0 or batch <= 0 or not 1 <= k <= n:
        raise ValueError(f"invalid problem: n={n}, k={k}, batch={batch}")
    if spec is None:
        from ..device import A100  # lazy: device imports this module

        spec = A100
    return _predict_cached(algo, spec, int(n), int(k), int(batch))


def rank_algorithms(
    *,
    n: int,
    k: int,
    batch: int = 1,
    spec=None,
    candidates=None,
    calibration=None,
) -> list[TopKPrediction]:
    """Rank candidate algorithms by predicted time, fastest first.

    ``candidates`` defaults to every predictable algorithm that supports
    the (n, k) problem; ``calibration`` is an optional
    :class:`repro.perf.calibration.CalibrationCache` whose measured data
    refines the analytic estimates.  Ties break by name for determinism.
    """
    if spec is None:
        from ..device import A100

        spec = A100
    if candidates is None:
        candidates = PREDICTABLE_ALGORITHMS
    from ..algos.registry import get_algorithm  # lazy: algos import perf

    predictions: list[TopKPrediction] = []
    for name in candidates:
        if get_algorithm(name).supports(n, k) is not None:
            continue
        time = predict_topk_time(name, n=n, k=k, batch=batch, spec=spec)
        source = "model"
        if calibration is not None:
            refined = calibration.refine(
                name, predicted=time, n=n, k=k, batch=batch, spec_name=spec.name
            )
            if refined != time:
                time, source = refined, "calibrated"
        predictions.append(TopKPrediction(algo=name, time=time, source=source))
    if not predictions:
        raise ValueError(f"no candidate algorithm supports n={n}, k={k}")
    return sorted(predictions, key=lambda p: (p.time, p.algo))
