"""Scaled execution: benchmark the paper's largest problems without 4 GiB arrays.

The paper's evaluation reaches N = 2^30 (4 GiB of float32 per problem,
x100 for batch 100).  A Python process cannot realistically materialise
and churn through that per benchmark point, so above a configurable cap
the driver executes the *same algorithm* on a proportionally scaled
problem — N and K shrunk by the same factor, data drawn from the same
distribution — while the simulated :class:`repro.device.Device` multiplies
every data-dependent quantity (bytes, FLOPs, dependent cycles, workspace)
back up by the scale factor.  Launch counts, PCIe setup latencies and host
synchronisations are intensive quantities and are *not* scaled.

Why this preserves the paper's observable shapes (DESIGN.md Sec. 2):

* radix/bucket/sample trajectories depend on the data distribution and the
  K/N ratio, both preserved exactly (including the adversarial shared-
  prefix property);
* queue-algorithm event counts scale linearly: E[inserts] ~ K ln(N/K), and
  K_s ln(N_s/K_s) = K_s ln(N/K), so counts scale by K_s/K = 1/scale — the
  same factor the device multiplies back;
* everything intensive (iteration counts, kernel launches, round trips)
  is identical by construction.

Correctness tests never use scaled mode; it exists purely for the
performance figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algos import TopKResult, UnsupportedProblem, get_algorithm
from ..datagen import generate
from ..device import Device, GPUSpec, A100

#: default cap on materialised elements per run (batch * n)
DEFAULT_EXACT_CAP = 1 << 20

#: smallest scaled problem we allow per row; below this, discreteness noise
#: (histogram counts of a few dozen elements) would dominate the trajectory
MIN_SCALED_N = 1 << 12


@dataclass(frozen=True)
class SimulatedRun:
    """One benchmark measurement on the simulated device."""

    algo: str
    distribution: str
    n: int
    k: int
    batch: int
    #: simulated wall-clock seconds
    time: float
    #: 'exact' for fully materialised runs, 'scaled' above the cap
    mode: str
    #: the device that accounted the run
    device: Device
    #: present for exact runs (used by integration tests), None when scaled
    result: TopKResult | None = None
    #: concrete algorithm an ``auto`` run dispatched to, None otherwise
    dispatch: str | None = None


def scale_factors(
    n: int, k: int, batch: int, cap: int
) -> tuple[int, int, float]:
    """Choose the scaled (n_s, k_s) and the device scale for a problem.

    Returns ``(n_s, k_s, scale)`` with ``scale = n / n_s`` and ``k_s``
    shrunk by the same ratio (clamped to [1, n_s]).
    """
    if n <= 0 or batch <= 0 or not 1 <= k <= n:
        raise ValueError(f"invalid problem: n={n}, k={k}, batch={batch}")
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    per_row_cap = max(MIN_SCALED_N, cap // batch)
    if n <= per_row_cap:
        return n, k, 1.0
    n_s = per_row_cap
    scale = n / n_s
    k_s = min(n_s, max(1, round(k / scale)))
    return n_s, k_s, scale


def simulate_topk(
    algo: str,
    *,
    distribution: str,
    n: int,
    k: int,
    batch: int = 1,
    spec: GPUSpec = A100,
    cap: int = DEFAULT_EXACT_CAP,
    seed: int = 0,
    adversarial_m: int = 20,
    largest: bool = False,
    data: np.ndarray | None = None,
    **algo_kwargs,
) -> SimulatedRun:
    """Run one benchmark point, choosing exact or scaled execution.

    ``data`` overrides generation for exact-mode runs (e.g. the ANN
    distance arrays of Fig. 13); it must match ``(batch, n)`` and forces
    exact mode.

    Raises :class:`repro.algos.UnsupportedProblem` when the algorithm
    cannot handle the *nominal* (n, k) — mirroring the gaps in the paper's
    figures.
    """
    algorithm = get_algorithm(algo, **algo_kwargs)
    if data is not None:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape != (batch, n):
            raise ValueError(
                f"provided data has shape {data.shape}, expected {(batch, n)}"
            )
        n_s, k_s, scale = n, k, 1.0
    else:
        n_s, k_s, scale = scale_factors(n, k, batch, cap)
        data = generate(
            distribution, n_s, batch=batch, seed=seed, adversarial_m=adversarial_m
        )
    device = Device(spec, scale=scale)
    result = algorithm.select(
        data,
        k_s,
        device=device,
        largest=largest,
        seed=seed,
        nominal_n=n,
        nominal_k=k,
    )
    mode = "exact" if scale == 1.0 else "scaled"
    return SimulatedRun(
        algo=algo,
        distribution=distribution,
        n=n,
        k=k,
        batch=batch,
        time=result.time,
        mode=mode,
        device=device,
        result=result if mode == "exact" else None,
        dispatch=getattr(algorithm, "last_choice", None),
    )
