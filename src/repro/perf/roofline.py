"""Roofline analysis of simulated kernels.

Table 3's "Speed of Light" story has a classical reading: plot each kernel
at (arithmetic intensity, achieved throughput) under the device's roofline
``min(peak_flops, intensity * peak_bandwidth)``.  This module computes the
points and renders a textual roofline — the analysis a performance engineer
would run on the paper's kernels to confirm AIR Top-K is memory-bound
(Sec. 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device import Device, GPUSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel under the roofline."""

    name: str
    #: FLOP per byte of device traffic
    intensity: float
    #: achieved FLOP/s over the kernel's simulated time
    achieved_flops: float
    #: the roofline's ceiling at this intensity
    ceiling_flops: float
    #: 'memory' left of the ridge, 'compute' right of it
    regime: str

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the ceiling at this intensity."""
        if self.ceiling_flops <= 0:
            return 0.0
        return min(1.0, self.achieved_flops / self.ceiling_flops)


def ridge_intensity(spec: GPUSpec) -> float:
    """The device balance point in FLOP/byte (peak compute over peak BW)."""
    return spec.peak_fp32 / spec.peak_bandwidth


def roofline_points(device: Device) -> list[RooflinePoint]:
    """Roofline coordinates of every kernel that did measurable work."""
    spec = device.spec
    ridge = ridge_intensity(spec)
    points: list[RooflinePoint] = []
    for stats in device.kernel_stats.values():
        if stats.time <= 0 or stats.bytes_total <= 0:
            continue
        intensity = stats.flops / stats.bytes_total
        ceiling = min(spec.peak_fp32, intensity * spec.peak_bandwidth)
        points.append(
            RooflinePoint(
                name=stats.name,
                intensity=intensity,
                achieved_flops=stats.flops / stats.time,
                ceiling_flops=ceiling,
                regime="memory" if intensity < ridge else "compute",
            )
        )
    return points


def render_roofline(device: Device, *, width: int = 64) -> str:
    """Text report: one row per kernel with its position under the roof."""
    points = roofline_points(device)
    if not points:
        return "(no kernels with measurable work)"
    spec = device.spec
    ridge = ridge_intensity(spec)
    lines = [
        f"device: {spec.name}  "
        f"(peak {spec.peak_fp32 / 1e12:.1f} TFLOP/s, "
        f"{spec.peak_bandwidth / 1e12:.2f} TB/s, "
        f"ridge at {ridge:.1f} FLOP/B)",
        f"{'kernel':<28} {'FLOP/B':>8} {'achieved':>12} {'ceiling':>12} "
        f"{'eff':>6}  regime",
    ]
    for p in sorted(points, key=lambda p: -p.achieved_flops):
        bar = "#" * max(1, round(p.efficiency * 20))
        lines.append(
            f"{p.name:<28} {p.intensity:>8.2f} "
            f"{p.achieved_flops / 1e12:>10.2f}T {p.ceiling_flops / 1e12:>10.2f}T "
            f"{p.efficiency * 100:>5.1f}%  {p.regime:<7} |{bar:<20}|"
        )
    return "\n".join(lines)
