"""Online adaptation: fold live drift residuals back into the dispatcher.

The static cost model (:func:`repro.perf.costmodel.rank_algorithms`)
dispatches on analytic predictions, optionally refined by offline
calibration.  PR 2's drift tracking records per-point
``log2(measured / predicted)`` residuals — this module closes the loop
(ROADMAP item 5) with two cooperating pieces:

* :class:`CorrectionStore` — windowed residuals accumulated per
  *regime* (algo, power-of-two n/k/batch buckets, GPU spec, dtype) fold
  into a multiplicative correction on top of the analytic prediction.
  The fold is controlled in the style of SNIPPETS.md's
  ``AdaptiveWeightStopper``: a minimum window before any fold,
  best-so-far residual tracking, and a multiplicative gain that grows
  while the model stays wrong (a device/distribution shift) and resets
  once a fold improves on the best seen (converged).  Every fold bumps
  a per-regime *epoch* counter — the serve plan cache keys plan entries
  on it, so a folded-in correction invalidates exactly the plans whose
  regime changed (docs/adaptive.md).

* :class:`AdaptiveDispatcher` — an epsilon-greedy bandit over the
  corrected ranking that *learns the fastest algorithm per regime*:
  exploitation scores each candidate by its exponentially-weighted
  observed mean when the regime has seen it, falling back to the
  corrected prediction; exploration is a pure seeded draw shaped
  exactly like :func:`repro.faults.injector.fault_draw` (sha256 over
  seed/site/regime/decision-index), so workers=1 == workers=N and
  replays are byte-identical.

Nothing here touches the ``lru_cache`` behind
:func:`~repro.perf.costmodel.predict_topk_time` — corrections compose
*outside* it, the same seam calibration uses.  Persistence is JSON
(schema ``repro.perf.corrections/v1``): a saved and reloaded store
reproduces identical dispatch decisions (pinned by
tests/test_adaptive.py).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA_ID = "repro.perf.corrections/v1"

CORRECTIONS_SCHEMA = {
    "type": "object",
    "required": ["schema", "min_window", "epoch", "folds", "corrections"],
    "properties": {
        "schema": {"const": SCHEMA_ID},
        "min_window": {"type": "integer"},
        "epoch": {"type": "integer"},
        "folds": {"type": "integer"},
        "corrections": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "algo", "n_bucket", "k_bucket", "batch_bucket",
                    "gpu", "dtype", "log2", "gain", "best",
                ],
                "properties": {
                    "algo": {"type": "string"},
                    "n_bucket": {"type": "integer"},
                    "k_bucket": {"type": "integer"},
                    "batch_bucket": {"type": "integer"},
                    "gpu": {"type": "string"},
                    "dtype": {"type": "string"},
                    "log2": {"type": "number"},
                    "gain": {"type": "number"},
                    "best": {"type": "number"},
                },
            },
        },
        "regime_epochs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "n_bucket", "k_bucket", "batch_bucket", "gpu",
                    "dtype", "epoch",
                ],
            },
        },
    },
}


def _bucket(value: int) -> int:
    """Round a positive size up to a power of two (regime bucketing)."""
    return 1 << max(0, int(value) - 1).bit_length()


def explore_draw(seed: int, site: str, *key: object) -> float:
    """The uniform [0, 1) draw behind one exploration decision.

    Pure and stateless — the same sha256 construction as
    :func:`repro.faults.injector.fault_draw`, under its own ``kind`` so
    exploration and fault streams can never collide.
    """
    text = ":".join([str(seed), "explore", site, *[str(part) for part in key]])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


@dataclass(frozen=True)
class Regime:
    """One cell of the adaptation table: where a correction applies."""

    n_bucket: int
    k_bucket: int
    batch_bucket: int
    spec_name: str
    dtype: str

    @classmethod
    def of(
        cls,
        *,
        n: int,
        k: int,
        batch: int,
        spec_name: str = "A100",
        dtype: str = "float32",
    ) -> "Regime":
        return cls(
            n_bucket=_bucket(n),
            k_bucket=_bucket(k),
            batch_bucket=_bucket(batch),
            spec_name=spec_name,
            dtype=str(dtype),
        )

    @property
    def parts(self) -> tuple:
        return (
            self.n_bucket,
            self.k_bucket,
            self.batch_bucket,
            self.spec_name,
            self.dtype,
        )


@dataclass
class _Cell:
    """Per-(regime, algo) fold state: the correction and its controller."""

    log2: float = 0.0
    #: pending window of residuals since the last fold
    window: list = field(default_factory=list)
    #: best (smallest) |window mean| any fold has achieved — the
    #: convergence reference of the multiplicative controller
    best: float = math.inf
    #: fraction of the window-mean residual folded in per fold
    gain: float = 0.0  # set from the store's base gain on first use


class CorrectionStore:
    """Windowed drift residuals -> per-regime multiplicative corrections.

    ``observe`` accumulates one ``log2(measured / corrected-prediction)``
    residual; once a (regime, algo) cell holds ``min_window`` of them the
    window *folds*: ``gain x mean`` is added to the cell's log2
    correction and the regime's epoch ticks.  The controller mirrors the
    AdaptiveWeightStopper shape — while folds fail to improve on the
    best |mean| seen, the gain grows multiplicatively (the model is
    persistently wrong: a shift; push harder), and a fold that improves
    on it resets the gain to base (converging: stabilise).
    """

    def __init__(
        self,
        *,
        min_window: int = 8,
        gain: float = 0.5,
        gain_grow: float = 1.5,
        gain_max: float = 1.0,
    ) -> None:
        if min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {min_window}")
        if not 0.0 < gain <= gain_max <= 1.0:
            raise ValueError(f"need 0 < gain <= gain_max <= 1, got {gain}, {gain_max}")
        self.min_window = int(min_window)
        self.base_gain = float(gain)
        self.gain_grow = float(gain_grow)
        self.gain_max = float(gain_max)
        self._cells: dict[tuple, _Cell] = {}
        self._regime_epochs: dict[tuple, int] = {}
        #: global epoch — total folds across every regime
        self.epoch = 0
        self.folds = 0
        self.observations = 0

    def __len__(self) -> int:
        return sum(1 for c in self._cells.values() if c.log2 != 0.0)

    def _cell(self, algo: str, regime: Regime) -> _Cell:
        key = (algo, *regime.parts)
        cell = self._cells.get(key)
        if cell is None:
            cell = _Cell(gain=self.base_gain)
            self._cells[key] = cell
        return cell

    # -- the feedback path ---------------------------------------------- #
    def observe(
        self,
        algo: str,
        *,
        n: int,
        k: int,
        batch: int,
        residual_log2: float,
        spec_name: str = "A100",
        dtype: str = "float32",
    ) -> bool:
        """Absorb one residual; returns True when it triggered a fold."""
        if not math.isfinite(residual_log2):
            return False
        regime = Regime.of(
            n=n, k=k, batch=batch, spec_name=spec_name, dtype=dtype
        )
        cell = self._cell(algo, regime)
        cell.window.append(float(residual_log2))
        self.observations += 1
        if len(cell.window) < self.min_window:
            return False
        mean = sum(cell.window) / len(cell.window)
        cell.window.clear()
        cell.log2 += cell.gain * mean
        if abs(mean) < cell.best:
            # improved on the best seen: converging — stabilise
            cell.best = abs(mean)
            cell.gain = self.base_gain
        else:
            # still as wrong as ever (a shift): fold harder next time
            cell.gain = min(self.gain_max, cell.gain * self.gain_grow)
        self.folds += 1
        self.epoch += 1
        rkey = regime.parts
        self._regime_epochs[rkey] = self._regime_epochs.get(rkey, 0) + 1
        return True

    # -- the query path -------------------------------------------------- #
    def correction_log2(
        self,
        algo: str,
        *,
        n: int,
        k: int,
        batch: int,
        spec_name: str = "A100",
        dtype: str = "float32",
    ) -> float:
        regime = Regime.of(
            n=n, k=k, batch=batch, spec_name=spec_name, dtype=dtype
        )
        cell = self._cells.get((algo, *regime.parts))
        return cell.log2 if cell is not None else 0.0

    def apply(
        self,
        algo: str,
        predicted: float,
        *,
        n: int,
        k: int,
        batch: int,
        spec_name: str = "A100",
        dtype: str = "float32",
    ) -> float:
        """The corrected prediction: ``predicted * 2**correction``."""
        c = self.correction_log2(
            algo, n=n, k=k, batch=batch, spec_name=spec_name, dtype=dtype
        )
        return predicted * (2.0 ** c) if c else predicted

    def regime_epoch(
        self,
        *,
        n: int,
        k: int,
        batch: int,
        spec_name: str = "A100",
        dtype: str = "float32",
    ) -> int:
        """Fold count of one regime — the plan-cache staleness key.

        Any fold for any algorithm in the regime bumps it, so cached
        dispatch plans keyed on it miss (and re-rank) exactly when their
        inputs changed; plans of untouched regimes keep hitting.
        """
        regime = Regime.of(
            n=n, k=k, batch=batch, spec_name=spec_name, dtype=dtype
        )
        return self._regime_epochs.get(regime.parts, 0)

    # -- persistence ------------------------------------------------------ #
    def to_payload(self) -> dict:
        corrections = [
            {
                "algo": algo,
                "n_bucket": nb,
                "k_bucket": kb,
                "batch_bucket": bb,
                "gpu": spec,
                "dtype": dtype,
                "log2": cell.log2,
                "gain": cell.gain,
                "best": cell.best if math.isfinite(cell.best) else -1.0,
            }
            for (algo, nb, kb, bb, spec, dtype), cell in sorted(
                self._cells.items()
            )
            if cell.log2 != 0.0 or len(cell.window)
        ]
        epochs = [
            {
                "n_bucket": nb,
                "k_bucket": kb,
                "batch_bucket": bb,
                "gpu": spec,
                "dtype": dtype,
                "epoch": epoch,
            }
            for (nb, kb, bb, spec, dtype), epoch in sorted(
                self._regime_epochs.items()
            )
        ]
        return {
            "schema": SCHEMA_ID,
            "min_window": self.min_window,
            "epoch": self.epoch,
            "folds": self.folds,
            "corrections": corrections,
            "regime_epochs": epochs,
        }

    def save(self, path) -> Path:
        """Validate and write the store as ``repro.perf.corrections/v1``.

        Pending (unfolded) windows are deliberately not persisted — only
        folded corrections affect dispatch, so a save/load round trip
        reproduces identical decisions.
        """
        from ..obs.schema import validate

        payload = self.to_payload()
        validate(payload, CORRECTIONS_SCHEMA)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "CorrectionStore":
        from ..obs.schema import validate

        payload = json.loads(Path(path).read_text())
        validate(payload, CORRECTIONS_SCHEMA)
        store = cls(min_window=payload["min_window"])
        store.epoch = int(payload["epoch"])
        store.folds = int(payload["folds"])
        for rec in payload["corrections"]:
            cell = _Cell(
                log2=float(rec["log2"]),
                best=float(rec["best"]) if rec["best"] >= 0 else math.inf,
                gain=float(rec["gain"]),
            )
            key = (
                rec["algo"],
                int(rec["n_bucket"]),
                int(rec["k_bucket"]),
                int(rec["batch_bucket"]),
                rec["gpu"],
                rec["dtype"],
            )
            store._cells[key] = cell
        for rec in payload.get("regime_epochs", []):
            key = (
                int(rec["n_bucket"]),
                int(rec["k_bucket"]),
                int(rec["batch_bucket"]),
                rec["gpu"],
                rec["dtype"],
            )
            store._regime_epochs[key] = int(rec["epoch"])
        return store


def corrected_ranking(
    predictions,
    store: CorrectionStore | None,
    *,
    n: int,
    k: int,
    batch: int,
    spec_name: str = "A100",
    dtype: str = "float32",
):
    """Re-rank cost-model predictions under a correction store.

    ``predictions`` is the output of
    :func:`repro.perf.costmodel.rank_algorithms`; entries whose regime
    carries a non-zero correction come back rescaled with source
    ``"adapted"``.  With no store (or no corrections) the input list is
    returned unchanged — the zero-adaptation fast path.
    """
    if store is None:
        return list(predictions)
    from .costmodel import TopKPrediction

    out = []
    changed = False
    for p in predictions:
        corrected = store.apply(
            p.algo, p.time, n=n, k=k, batch=batch,
            spec_name=spec_name, dtype=dtype,
        )
        if corrected != p.time:
            changed = True
            p = TopKPrediction(algo=p.algo, time=corrected, source="adapted")
        out.append(p)
    if not changed:
        return out
    return sorted(out, key=lambda p: (p.time, p.algo))


@dataclass(frozen=True)
class DispatchDecision:
    """One adaptive dispatch: what ran and why."""

    algo: str
    #: (algo, corrected predicted seconds) pairs, fastest first
    ranking: tuple
    #: True when the epsilon draw overrode the exploit choice
    explored: bool


class AdaptiveDispatcher:
    """Epsilon-greedy online learner over the corrected ranking.

    Exploitation scores each candidate by its exponentially-weighted
    mean of observed run times in the regime (``ema_alpha``), falling
    back to the corrected prediction for candidates the regime has not
    run yet; exploration picks a drawn candidate with probability
    ``epsilon``.  Exploration is *focused*: only arms whose current
    score sits within ``explore_factor`` x the best score are eligible
    — the regimes of the paper separate mismatched algorithms by two
    orders of magnitude, and a belief can be wrong by the model's
    typical error (~2x), not by 100x, so measuring a hopeless arm only
    buys linear regret.  Both the draw and the sub-draw selecting the
    explored arm come from :func:`explore_draw`, keyed on the
    dispatcher seed, a caller site, the regime and a monotone decision
    index — pure functions of the decision stream, so identical streams
    replay byte-identically regardless of worker count.
    """

    def __init__(
        self,
        *,
        corrections: CorrectionStore | None = None,
        epsilon: float = 0.1,
        ema_alpha: float = 0.4,
        explore_factor: float = 4.0,
        seed: int = 0,
        candidates=None,
        calibration=None,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {ema_alpha}")
        if explore_factor < 1.0:
            raise ValueError(f"explore_factor must be >= 1, got {explore_factor}")
        self.corrections = corrections if corrections is not None else CorrectionStore()
        self.epsilon = float(epsilon)
        self.ema_alpha = float(ema_alpha)
        self.explore_factor = float(explore_factor)
        self.seed = int(seed)
        self.candidates = tuple(candidates) if candidates is not None else None
        self.calibration = calibration
        #: (regime.parts, algo) -> (observation count, EMA of measured seconds)
        self._means: dict[tuple, tuple[int, float]] = {}
        self.decisions = 0
        self.explored = 0

    # -- deciding --------------------------------------------------------- #
    def choose(
        self,
        *,
        n: int,
        k: int,
        batch: int,
        spec=None,
        dtype: str = "float32",
        explore: bool = True,
        site: str = "perf.adaptive",
    ) -> DispatchDecision:
        """Rank, correct, and decide for one problem shape."""
        from .costmodel import rank_algorithms

        if spec is None:
            from ..device import A100

            spec = A100
        ranking = rank_algorithms(
            n=n,
            k=k,
            batch=batch,
            spec=spec,
            candidates=self.candidates,
            calibration=self.calibration,
        )
        ranking = corrected_ranking(
            ranking, self.corrections, n=n, k=k, batch=batch,
            spec_name=spec.name, dtype=dtype,
        )
        return self.decide(
            tuple((p.algo, p.time) for p in ranking),
            n=n, k=k, batch=batch, spec_name=spec.name, dtype=dtype,
            explore=explore, site=site,
        )

    def decide(
        self,
        ranking,
        *,
        n: int,
        k: int,
        batch: int,
        spec_name: str = "A100",
        dtype: str = "float32",
        explore: bool = True,
        site: str = "perf.adaptive",
    ) -> DispatchDecision:
        """The bandit step over an already-corrected ``(algo, time)`` list.

        The serve layer calls this with its cached plan's ranking so the
        (memoised) cost-model work is not repeated per batch.
        """
        ranking = tuple(ranking)
        if not ranking:
            raise ValueError("ranking must not be empty")
        regime = Regime.of(
            n=n, k=k, batch=batch, spec_name=spec_name, dtype=dtype
        )
        index = self.decisions
        self.decisions += 1
        # exploit: observed regime mean where available, corrected
        # prediction otherwise; ties break by algo name via the scan order
        best_algo, best_score = None, math.inf
        scores = []
        for algo, predicted in ranking:
            seen = self._means.get((regime.parts, algo))
            score = seen[1] if seen is not None else predicted
            scores.append((algo, score))
            if score < best_score:
                best_algo, best_score = algo, score
        chosen, explored = best_algo, False
        if explore and self.epsilon > 0.0:
            draw = explore_draw(self.seed, site, *regime.parts, index)
            if draw < self.epsilon:
                # focused arm pool: only candidates the current belief
                # places within explore_factor x the best are worth a
                # measurement; re-use the accepted draw as the selector
                pool = [
                    algo
                    for algo, score in scores
                    if score <= self.explore_factor * best_score
                ] or [best_algo]
                arm = int((draw / self.epsilon) * len(pool))
                arm = min(arm, len(pool) - 1)
                chosen = pool[arm]
                explored = chosen != best_algo
                if explored:
                    self.explored += 1
        return DispatchDecision(algo=chosen, ranking=ranking, explored=explored)

    # -- learning --------------------------------------------------------- #
    def observe(
        self,
        algo: str,
        *,
        n: int,
        k: int,
        batch: int,
        measured_s: float,
        spec=None,
        dtype: str = "float32",
    ) -> bool:
        """Feed one measured run back; returns True when a fold happened.

        The residual folded into the store is measured against the
        *currently corrected* prediction, so a converged correction sees
        zero-mean residuals and stops moving; the regime's EMA updates
        regardless.
        """
        if measured_s <= 0:
            return False
        from .costmodel import predict_topk_time

        if spec is None:
            from ..device import A100

            spec = A100
        regime = Regime.of(
            n=n, k=k, batch=batch, spec_name=spec.name, dtype=dtype
        )
        key = (regime.parts, algo)
        seen = self._means.get(key)
        if seen is None:
            self._means[key] = (1, float(measured_s))
        else:
            count, ema = seen
            self._means[key] = (
                count + 1,
                ema + self.ema_alpha * (float(measured_s) - ema),
            )
        try:
            predicted = predict_topk_time(algo, n=n, k=k, batch=batch, spec=spec)
        except KeyError:
            return False
        if self.calibration is not None:
            predicted = self.calibration.refine(
                algo, predicted=predicted, n=n, k=k, batch=batch,
                spec_name=spec.name,
            )
        corrected = self.corrections.apply(
            algo, predicted, n=n, k=k, batch=batch,
            spec_name=spec.name, dtype=dtype,
        )
        if corrected <= 0:
            return False
        return self.corrections.observe(
            algo,
            n=n,
            k=k,
            batch=batch,
            residual_log2=math.log2(measured_s / corrected),
            spec_name=spec.name,
            dtype=dtype,
        )
