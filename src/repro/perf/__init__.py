"""Performance model: cost pricing, SOL metrics, scaled execution.

Submodules are exposed lazily (PEP 562): the device layer imports
``repro.perf.costmodel`` while it is itself initialising, so this package
must not eagerly import modules that depend back on ``repro.device``.
"""

from .costmodel import KernelCost, KernelCostModel, LaunchShape
from . import calibration

__all__ = [
    "KernelCost",
    "KernelCostModel",
    "LaunchShape",
    "KernelSol",
    "sol_report",
    "DEFAULT_EXACT_CAP",
    "MIN_SCALED_N",
    "SimulatedRun",
    "scale_factors",
    "simulate_topk",
    "calibration",
    "RooflinePoint",
    "ridge_intensity",
    "roofline_points",
    "render_roofline",
    "AdaptiveDispatcher",
    "CorrectionStore",
    "DispatchDecision",
    "corrected_ranking",
]

_LAZY = {
    "AdaptiveDispatcher": "adaptive",
    "CorrectionStore": "adaptive",
    "DispatchDecision": "adaptive",
    "corrected_ranking": "adaptive",
    "RooflinePoint": "roofline",
    "ridge_intensity": "roofline",
    "roofline_points": "roofline",
    "render_roofline": "roofline",
    "KernelSol": "sol",
    "sol_report": "sol",
    "DEFAULT_EXACT_CAP": "scaled",
    "MIN_SCALED_N": "scaled",
    "SimulatedRun": "scaled",
    "scale_factors": "scaled",
    "simulate_topk": "scaled",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
