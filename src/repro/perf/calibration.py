"""Calibration constants for the cost model, with rationale.

Structural parameters (SM counts, bandwidths, clocks) come from datasheets
and live in :mod:`repro.device.spec`.  The constants here are behavioural:
per-element operation estimates and efficiency factors that a profiler would
measure on real kernels.  Each value is annotated with how it was chosen;
where the paper reports a number that pins the value down (e.g. Table 3's
SOL percentages, Table 2's speedup extremes), that is cited.

These constants shape *relative* performance.  The reproduction goal is the
paper's ordering, factors and crossovers — not the authors' absolute
microseconds (DESIGN.md Sec. 2).
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# FP32-equivalent operations per element, per kernel family.
#
# AIR's fused kernel does, per element: load, digit extract (shift+mask),
# shared-memory atomic histogram increment, and on the filtering path a
# comparison plus (rarely) a scatter.  The paper's Table 3 reports the first
# two fused-kernel calls at ~90% memory SOL and 31-45% compute SOL; with the
# A100's ~12.5 FLOP/byte balance point, ~0.35 * 12.5 * 4 bytes = ~18 ops/elem
# reproduces that compute share.  We split it across the passes involved.
# --------------------------------------------------------------------------
#: fused histogram+filter kernel (AIR Top-K)
FUSED_KERNEL_OPS_PER_ELEM = 18.0
#: standalone histogram kernel (baseline RadixSelect "CalculateOccurrence")
HISTOGRAM_OPS_PER_ELEM = 10.0
#: standalone filter/scatter kernel (baseline RadixSelect)
FILTER_OPS_PER_ELEM = 8.0
#: per-element cost of a radix-sort pass (rank + scatter bookkeeping)
SORT_PASS_OPS_PER_ELEM = 14.0
#: per-element cost of queue-based scanning (compare + ballot + position)
SHARED_QUEUE_OPS_PER_ELEM = 6.0
#: per-thread-queue variants additionally shuffle queue slots per element
THREAD_QUEUE_OPS_PER_ELEM = 10.0
#: the GridSelect thread-queue ablation shares GridSelect's load structure,
#: so its per-element overhead over the shared queue is only the private
#: queue bookkeeping (Fig. 11: up to 1.28x overall)
THREAD_QUEUE_OPS_PER_ELEM_GRID = 7.5
#: partition kernels of QuickSelect/BucketSelect/SampleSelect
PARTITION_OPS_PER_ELEM = 8.0
#: binary search into splitters (SampleSelect) per element
SPLITTER_SEARCH_OPS_PER_ELEM = 12.0
#: FP32-equivalent ops per bitonic comparator (compare + two selects)
OPS_PER_COMPARATOR = 3.0
#: comparators executed inside the Bitonic Top-K kernels run through
#: shared memory with paired loads/stores, bank-conflicted exchanges and a
#: block barrier per network stage; ~45 FP32-op equivalents each reproduce
#: the method's steep growth with K that the paper attributes to the
#: O(log^2 K) network (Fig. 6)
BITONIC_OPS_PER_COMPARATOR = 45.0

# --------------------------------------------------------------------------
# Warp efficiency: fraction of a streaming warp's memory throughput that a
# kernel family sustains.  Per-thread-queue kernels (Faiss WarpSelect /
# BlockSelect) interleave dependent queue bookkeeping between loads, so a
# warp keeps far fewer requests in flight.  The value 0.22 is calibrated so
# that single-block BlockSelect at N = 2^30 lands ~870x slower than the
# grid-wide GridSelect, the extreme the paper reports in Table 2
# (1.09-882.29x).  The shared-queue two-step insertion restores streaming
# behaviour (Sec. 4); its 0.92 (vs 1.0) reflects residual ballot overhead
# and is calibrated against Fig. 11's 1.28x shared-vs-thread-queue gap.
# --------------------------------------------------------------------------
WARP_EFFICIENCY_THREAD_QUEUE = 0.21
WARP_EFFICIENCY_SHARED_QUEUE = 0.92
#: the Fig. 11 ablation keeps GridSelect's streaming structure and only
#: swaps the queue discipline, so it retains most of the shared-queue
#: variant's memory efficiency; the residual loss is register pressure
#: from the private queues (calibrated to Fig. 11's up-to-1.28x gap)
WARP_EFFICIENCY_THREAD_QUEUE_GRID = 0.80

# Per-element work of the queue family grows with k: the maintained top-k
# structure spreads k/32 key+index pairs across the lanes, and every
# qualified insert and flush touches O(log^2 k) bitonic stages — the reason
# the paper gives for every partial-sorting curve climbing steeply with K
# (Sec. 5.1: "the complexity of the underlying bitonic sorting network they
# use is O(log^2 K)").  The linear-in-k factor with a knee at 24 is
# calibrated to two paper facts at once: the A100 crossover (GridSelect
# beats AIR Top-K only below K ~ 256 at large N, Fig. 12), and Table 2's
# batch-100 GridSelect-vs-BlockSelect range of 1.11-9.83 (min at large K
# where both are compute-bound, max at small K where BlockSelect's single
# block is bandwidth-starved).
QUEUE_K_OPS_KNEE = 24.0


def queue_k_ops_factor(k: int) -> float:
    """Per-element work multiplier of queue-based kernels at result size k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return max(1.0, float(k) / QUEUE_K_OPS_KNEE)

# --------------------------------------------------------------------------
# Serial critical path of queue kernels: every round (one element per lane)
# contains a threshold compare whose result gates queue bookkeeping, a
# dependency chain the compiler cannot overlap across rounds.
# --------------------------------------------------------------------------
#: per-problem coordination inside AIR's fused kernel (per-row histogram
#: zeroing, buffer offsets, last-block election) — invisible at batch 1,
#: a measurable floor at batch 100 (tempers the smallest-N batch-100
#: speedups towards the paper's 574x extreme)
AIR_PER_PROBLEM_CYCLES = 80.0
#: per-query overhead of the queue-select batch path: Faiss processes
#: batched queries in tiles, staging each query's structure and writing its
#: results; ~500 cycles per query keeps batched BlockSelect ~1.4x behind
#: batched AIR Top-K at tiny N (Table 2's batch-100 AIR-vs-SOTA floor of
#: 1.38-1.56)
QUEUE_PER_PROBLEM_CYCLES = 500.0
#: per-problem coordination of a fused batched merge level (the serving
#: coordinator's shard_merge tree): each problem's candidate segment needs
#: its own offsets and a per-problem write cursor inside the single fused
#: launch — the per-row floor that replaces per-row launch latency once
#: batched execution fuses the tree into one grid per level
MERGE_PER_PROBLEM_CYCLES = 60.0
#: fixed startup chain of a Faiss queue-select kernel: sentinel-
#: initialising the k-structure and per-thread queues in registers, plus
#: the library dispatch around the launch.  Dominates at tiny N.
QUEUE_KERNEL_FIXED_CYCLES = 20000.0
#: GridSelect's startup chain: the shared-memory queue and structure
#: initialise faster than Faiss's register walks, and there is no library
#: dispatch layer.  Calibrated so GridSelect stays competitive with AIR
#: Top-K at the small-N, K=10 points of Fig. 13.
GRID_KERNEL_FIXED_CYCLES = 2000.0
#: dependent cycles per processing round, per-thread-queue kernels
ROUND_CYCLES_THREAD_QUEUE = 8.0
#: per-kernel stage-barrier chain of the bitonic-network kernels (DrTopK
#: Bitonic Top-K): every network stage ends in a block-wide barrier
BITONIC_KERNEL_FIXED_CYCLES = 4500.0
#: dependent cycles per processing round, shared-queue kernels
ROUND_CYCLES_SHARED_QUEUE = 4.0

# A flush stalls its block: the queue is bitonic-sorted and merged into the
# maintained top-k before scanning resumes.  Each comparator executed per
# lane costs roughly a shared-memory access plus a block sync amortised over
# the stage; 12 cycles per lane-comparator is calibrated against the paper's
# K-crossover (GridSelect beats AIR Top-K only for K < 256 on A100, Sec. 5.1
# guideline 2 and Fig. 12), which is driven by this K-dependent flush cost.
FLUSH_CYCLES_PER_LANE_COMPARATOR = 8.0

# --------------------------------------------------------------------------
# Scattered candidate writes: the filtering step appends survivors with
# atomics, producing uncoalesced transactions.  DRAM serves them at roughly
# half streaming efficiency, so scattered bytes are charged double.  This is
# the traffic the adaptive strategy avoids; the factor is calibrated against
# Fig. 9's up-to-6.5x adaptive-vs-static gap under adversarial data.
# --------------------------------------------------------------------------
SCATTER_WRITE_PENALTY = 2.5
#: candidate-buffer appends go through a single global atomic counter; when
#: a large fraction of the input survives (the radix-adversarial case) the
#: contention serialises the writes well below scatter speed.  This is the
#: traffic class the adaptive strategy eliminates; the factor is calibrated
#: against Fig. 9's up-to-6.53x adaptive-vs-static gap at M = 20.
ATOMIC_SCATTER_PENALTY = 6.0

# --------------------------------------------------------------------------
# Host-side costs of the host-coordinated baselines (RadixSelect,
# QuickSelect, BucketSelect, SampleSelect): after each iteration the CPU
# scans a histogram / inspects counters to choose the next pivot.  ~2-4 us
# covers a 256-entry scan plus the library bookkeeping around it; measured
# host gaps in the paper's Fig. 8 timeline are of this magnitude
# (RadixSelect's white spaces).
# --------------------------------------------------------------------------
HOST_SCAN_SECONDS = 2.5e-6
HOST_PIVOT_SECONDS = 1.5e-6
#: DrTopK's RadixSelect allocates and frees its device workspaces around
#: every problem (cudaMalloc/cudaFree pairs cost tens of microseconds);
#: this per-problem constant is what keeps its batch-100 serialisation
#: penalty high even at moderate N (Table 2's 8-574x column).
HOST_ALLOC_SECONDS = 50e-6
#: DrTopK's RadixSelect host step does more than a scan — it reduces the
#: histogram on one CPU thread and reshuffles host-side bookkeeping between
#: iterations; the white gaps in the paper's Fig. 8 timeline are tens of us
#: wide at N = 2^23, which this constant reproduces.
HOST_RADIX_ITER_SECONDS = 18e-6

# --------------------------------------------------------------------------
# Queue/structure geometry (Faiss defaults and the paper's choices)
# --------------------------------------------------------------------------
#: Faiss thread-queue length
THREAD_QUEUE_LEN = 2
#: GridSelect shared queue capacity per warp (Sec. 4: "set to 32")
SHARED_QUEUE_LEN = 32
#: warps per block used by BlockSelect / GridSelect blocks
BLOCK_SELECT_WARPS = 4
#: items per thread assumed when sizing streaming grids
STREAM_ITEMS_PER_THREAD = 8


# --------------------------------------------------------------------------
# Measured-data refinement of the analytic predictor.
#
# The constants above fix the *model*; a CalibrationCache holds *measured*
# run times (from sweeps, or recorded explicitly) and corrects the model's
# systematic per-algorithm bias.  The correction is multiplicative in log
# space: for each algorithm the cache tracks the geometric mean of
# measured/predicted over its observations, and scales future predictions
# by that factor.  An exact (n, k, batch) hit returns the measurement
# itself.  This is the "optionally refined by calibration data" path of the
# ``auto`` dispatcher.
# --------------------------------------------------------------------------


class CalibrationCache:
    """Measured (algo, n, k, batch) -> time store refining predictions."""

    def __init__(self) -> None:
        #: (algo, spec_name, n, k, batch) -> measured seconds
        self._measurements: dict[tuple[str, str, int, int, int], float] = {}

    def __len__(self) -> int:
        return len(self._measurements)

    def observe(
        self,
        algo: str,
        *,
        n: int,
        k: int,
        batch: int,
        time: float,
        spec_name: str = "A100",
    ) -> None:
        """Record one measured run time."""
        if time <= 0:
            raise ValueError(f"measured time must be positive, got {time}")
        self._measurements[(algo, spec_name, int(n), int(k), int(batch))] = float(
            time
        )

    def observe_sweep(self, points, *, spec_name: str = "A100") -> int:
        """Record every timed point of a sweep; returns the count absorbed.

        ``points`` is an iterable of :class:`repro.bench.BenchPoint`-likes
        (anything with algo/n/k/batch/time attributes); untimed rows
        (unsupported, errored) are skipped.
        """
        absorbed = 0
        for p in points:
            if getattr(p, "time", None) is None:
                continue
            algo = p.algo
            # auto rows measure the dispatched concrete algorithm
            dispatch = getattr(p, "detail", "")
            if algo == "auto" and dispatch.startswith("dispatch="):
                algo = dispatch.split("=", 1)[1]
            self.observe(
                algo, n=p.n, k=p.k, batch=p.batch, time=p.time, spec_name=spec_name
            )
            absorbed += 1
        return absorbed

    def lookup(
        self, algo: str, *, n: int, k: int, batch: int, spec_name: str = "A100"
    ) -> float | None:
        """Exact measured time for a problem shape, or None."""
        return self._measurements.get((algo, spec_name, int(n), int(k), int(batch)))

    def bias(self, algo: str, *, spec_name: str = "A100") -> float | None:
        """Geomean of measured/predicted for ``algo``, or None if unseen."""
        from .costmodel import predict_topk_time  # lazy: costmodel imports us

        logs = []
        for (name, spec, n, k, batch), measured in self._measurements.items():
            if name != algo or spec != spec_name:
                continue
            try:
                predicted = predict_topk_time(algo, n=n, k=k, batch=batch)
            except KeyError:
                return None
            if predicted > 0:
                logs.append(math.log(measured / predicted))
        if not logs:
            return None
        return math.exp(sum(logs) / len(logs))

    def refine(
        self,
        algo: str,
        *,
        predicted: float,
        n: int,
        k: int,
        batch: int,
        spec_name: str = "A100",
    ) -> float:
        """Refined prediction: exact hit > bias-corrected > analytic."""
        exact = self.lookup(algo, n=n, k=k, batch=batch, spec_name=spec_name)
        if exact is not None:
            return exact
        bias = self.bias(algo, spec_name=spec_name)
        if bias is not None:
            return predicted * bias
        return predicted

    # ---- persistence ------------------------------------------------- #
    def save(self, path) -> None:
        """Write the cache as JSON (one record per measurement)."""
        import json
        from pathlib import Path

        records = [
            {"algo": a, "gpu": s, "n": n, "k": k, "batch": b, "time_s": t}
            for (a, s, n, k, b), t in sorted(self._measurements.items())
        ]
        Path(path).write_text(json.dumps(records, indent=1) + "\n")

    @classmethod
    def load(cls, path) -> "CalibrationCache":
        """Read a cache written by :meth:`save`."""
        import json
        from pathlib import Path

        cache = cls()
        for rec in json.loads(Path(path).read_text()):
            cache.observe(
                rec["algo"],
                n=rec["n"],
                k=rec["k"],
                batch=rec["batch"],
                time=rec["time_s"],
                spec_name=rec["gpu"],
            )
        return cache
