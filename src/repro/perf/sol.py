"""Speed-of-Light utilisation metrics (paper Table 3).

Nsight Compute's "GPU Speed Of Light Throughput" reports the achieved
fraction of peak memory and compute throughput per kernel.  The simulated
equivalent divides each kernel's counted traffic/operations by its
simulated time and the device peaks — the same definition, computed from
the same quantities the profiler derives them from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device import Device


@dataclass(frozen=True)
class KernelSol:
    """Per-kernel utilisation row, mirroring the paper's Table 3 columns."""

    name: str
    launches: int
    #: fraction of the run's total kernel time spent in this kernel
    time_fraction: float
    #: achieved bytes/s over peak bandwidth
    memory_sol: float
    #: achieved FLOP/s over peak FP32 throughput
    compute_sol: float

    def row(self) -> tuple[str, str, str, str]:
        """Formatted (name, time %, memory SOL, compute SOL)."""
        return (
            self.name,
            f"{self.time_fraction * 100:.2f}%",
            f"{self.memory_sol * 100:.2f}%",
            f"{self.compute_sol * 100:.2f}%",
        )


def sol_report(device: Device) -> list[KernelSol]:
    """Per-kernel SOL rows for a completed run, in launch order."""
    total_time = sum(s.time for s in device.kernel_stats.values())
    rows: list[KernelSol] = []
    for stats in device.kernel_stats.values():
        if stats.time <= 0:
            continue
        rows.append(
            KernelSol(
                name=stats.name,
                launches=stats.launches,
                time_fraction=stats.time / total_time if total_time else 0.0,
                memory_sol=min(
                    1.0, stats.bytes_total / stats.time / device.spec.peak_bandwidth
                ),
                compute_sol=min(
                    1.0, stats.flops / stats.time / device.spec.peak_fp32
                ),
            )
        )
    return rows
