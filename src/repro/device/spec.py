"""Hardware descriptions of the simulated GPUs.

The simulator prices work (bytes moved, FP32 operations, serial dependency
chains, kernel launches, PCIe round trips) against a :class:`GPUSpec`.  The
three presets correspond to the three boards used in the paper's evaluation
(Section 5.4): NVIDIA A100 SXM, H100 SXM and A10.  Published datasheet values
are used for structural parameters (SM count, bandwidth, clock); latency-type
constants that NVIDIA does not publish (kernel-launch latency, PCIe round-trip
latency) carry typical values measured in the literature and are documented in
:mod:`repro.perf.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU board.

    Parameters mirror what the paper's analysis actually depends on: device
    memory bandwidth (AIR Top-K is memory bound, Sec. 5.2.1), SM count and
    occupancy (the source of GridSelect's advantage over single-block
    BlockSelect, Sec. 5.3), and host-link characteristics (the overheads the
    iteration-fused design removes, Sec. 3.1).
    """

    name: str
    #: number of streaming multiprocessors
    sm_count: int
    #: peak device-memory bandwidth in bytes/second
    peak_bandwidth: float
    #: peak FP32 throughput in FLOP/second
    peak_fp32: float
    #: SM clock in Hz (used to price serial dependency chains)
    clock_hz: float
    #: shared memory capacity per SM in bytes
    shared_mem_per_sm: int = 164 * 1024
    #: 32-bit registers per SM
    registers_per_sm: int = 65536
    #: maximum resident threads per SM
    max_threads_per_sm: int = 2048
    #: maximum threads per block
    max_threads_per_block: int = 1024
    #: threads per warp
    warp_size: int = 32

    # -- latency-type constants (see repro.perf.calibration for rationale) --
    #: CPU-side cost of submitting one kernel launch, seconds
    kernel_launch_latency: float = 1.5e-6
    #: minimum device-side execution time of any kernel (scheduling tail)
    kernel_tail_latency: float = 1.3e-6
    #: cost of a host<->device synchronisation point, seconds
    sync_latency: float = 6.0e-6
    #: PCIe transfer setup latency (one direction), seconds
    pcie_latency: float = 12.0e-6
    #: effective PCIe bandwidth, bytes/second (Gen4 x16 for all presets)
    pcie_bandwidth: float = 22e9

    # -- efficiency/occupancy model ----------------------------------------
    #: fraction of peak bandwidth a fully occupied streaming kernel achieves
    mem_efficiency: float = 0.90
    #: resident warps per SM needed to saturate device-memory bandwidth
    warps_to_saturate_per_sm: float = 8.0
    #: fraction of peak FP32 a well-shaped compute kernel achieves
    compute_efficiency: float = 0.75
    #: round-trip device-memory latency in SM cycles (prices small,
    #: latency-bound transfers of under-occupied kernels)
    mem_latency_cycles: float = 450.0
    #: bytes one warp keeps in flight (outstanding requests * 128 B lines)
    outstanding_bytes_per_warp: float = 2048.0

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError(f"sm_count must be positive, got {self.sm_count}")
        if self.peak_bandwidth <= 0 or self.peak_fp32 <= 0:
            raise ValueError("peak_bandwidth and peak_fp32 must be positive")
        if self.warp_size <= 0 or self.max_threads_per_block % self.warp_size:
            raise ValueError("max_threads_per_block must be a warp multiple")

    # -- derived quantities -------------------------------------------------
    @property
    def saturation_warps(self) -> float:
        """Total resident warps that saturate device-memory bandwidth."""
        return self.sm_count * self.warps_to_saturate_per_sm

    @property
    def effective_bandwidth(self) -> float:
        """Streaming bandwidth of a fully occupied kernel, bytes/second."""
        return self.peak_bandwidth * self.mem_efficiency

    @property
    def effective_fp32(self) -> float:
        """FP32 throughput of a fully occupied compute kernel, FLOP/second."""
        return self.peak_fp32 * self.compute_efficiency

    def bandwidth_fraction(self, active_warps: float) -> float:
        """Fraction of effective bandwidth available to ``active_warps``.

        Bandwidth scales roughly linearly with resident warps until the
        saturation point (Little's law applied to outstanding memory
        requests); beyond saturation additional warps do not help.  This is
        the mechanism behind the paper's observation that single-block
        BlockSelect uses 1 of 108 SMs (Sec. 5.3).
        """
        if active_warps <= 0:
            return 0.0
        return min(1.0, active_warps / self.saturation_warps)

    def compute_fraction(self, active_warps: float) -> float:
        """Fraction of effective FP32 throughput available to ``active_warps``.

        Compute saturates when every SM has at least ~4 warps to hide ALU
        latency; the constant 4 is far below the occupancy limit of 64 warps
        per SM because arithmetic pipelines are easier to fill than the
        memory system.
        """
        if active_warps <= 0:
            return 0.0
        return min(1.0, active_warps / (self.sm_count * 4.0))

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy of the spec with the given fields replaced."""
        return replace(self, **kwargs)


#: NVIDIA A100 SXM4 80GB — the paper's primary evaluation board.
A100 = GPUSpec(
    name="A100",
    sm_count=108,
    peak_bandwidth=1.555e12,
    peak_fp32=19.5e12,
    clock_hz=1.41e9,
    shared_mem_per_sm=164 * 1024,
)

#: NVIDIA H100 SXM5 — used in Sec. 5.4; ~2.15x the memory bandwidth of A100.
H100 = GPUSpec(
    name="H100",
    sm_count=132,
    peak_bandwidth=3.35e12,
    peak_fp32=66.9e12,
    clock_hz=1.98e9,
    shared_mem_per_sm=228 * 1024,
)

#: NVIDIA A10 — the inference board in Sec. 5.4; 0.6 TB/s memory bandwidth.
A10 = GPUSpec(
    name="A10",
    sm_count=72,
    peak_bandwidth=0.6e12,
    peak_fp32=31.2e12,
    clock_hz=1.695e9,
    shared_mem_per_sm=100 * 1024,
)

#: NVIDIA V100 SXM2 — the previous datacenter generation; not part of the
#: paper's evaluation but useful for what-if projections.
V100 = GPUSpec(
    name="V100",
    sm_count=80,
    peak_bandwidth=0.9e12,
    peak_fp32=15.7e12,
    clock_hz=1.53e9,
    shared_mem_per_sm=96 * 1024,
)

#: All preset boards, keyed by name (the paper evaluates A100, H100, A10).
PRESETS: dict[str, GPUSpec] = {
    spec.name: spec for spec in (A100, H100, A10, V100)
}


def get_spec(name: str) -> GPUSpec:
    """Look up a preset GPU spec by (case-insensitive) name."""
    key = name.upper()
    if key not in PRESETS:
        raise KeyError(
            f"unknown GPU preset {name!r}; available: {sorted(PRESETS)}"
        )
    return PRESETS[key]
