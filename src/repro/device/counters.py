"""Work accounting for simulated kernels.

Every kernel launch records the quantities the cost model prices and the
quantities the paper's Table 3 reports (per-kernel time share and "Speed of
Light" utilisation percentages).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelStats:
    """Aggregated statistics for all launches of one kernel name."""

    name: str
    launches: int = 0
    #: bytes read from device memory across all launches
    bytes_read: float = 0.0
    #: bytes written to device memory across all launches
    bytes_written: float = 0.0
    #: FP32-equivalent operations executed
    flops: float = 0.0
    #: total simulated execution time, seconds
    time: float = 0.0

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def merge_launch(
        self,
        *,
        bytes_read: float,
        bytes_written: float,
        flops: float,
        time: float,
    ) -> None:
        self.launches += 1
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.flops += flops
        self.time += time


@dataclass
class DeviceCounters:
    """Machine-wide counters for one simulated run."""

    kernel_launches: int = 0
    #: device-memory traffic, bytes
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    #: FP32-equivalent operations
    flops: float = 0.0
    #: host<->device transfers
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    #: explicit host/device synchronisation points
    syncs: int = 0
    #: peak extra device memory allocated beyond input/output, bytes
    peak_workspace_bytes: float = 0.0
    _current_workspace: float = field(default=0.0, repr=False)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def pcie_bytes(self) -> float:
        return self.h2d_bytes + self.d2h_bytes

    @property
    def pcie_transfers(self) -> int:
        return self.h2d_transfers + self.d2h_transfers

    def allocate_workspace(self, nbytes: float) -> None:
        """Track a device-memory workspace allocation.

        The adaptive strategy of AIR Top-K bounds the candidate buffer at
        ``N/alpha`` elements (Sec. 3.2); this counter lets tests assert that
        bound.
        """
        if nbytes < 0:
            raise ValueError("workspace size must be non-negative")
        self._current_workspace += nbytes
        self.peak_workspace_bytes = max(
            self.peak_workspace_bytes, self._current_workspace
        )

    def free_workspace(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("workspace size must be non-negative")
        self._current_workspace = max(0.0, self._current_workspace - nbytes)

    def merge(self, other: "DeviceCounters") -> None:
        """Accumulate another run's counters into this one.

        Traffic and launch totals add; ``peak_workspace_bytes`` takes the
        max, since the runs never share an allocator.
        """
        self.kernel_launches += other.kernel_launches
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.flops += other.flops
        self.h2d_transfers += other.h2d_transfers
        self.d2h_transfers += other.d2h_transfers
        self.h2d_bytes += other.h2d_bytes
        self.d2h_bytes += other.d2h_bytes
        self.syncs += other.syncs
        self.peak_workspace_bytes = max(
            self.peak_workspace_bytes, other.peak_workspace_bytes
        )


def aggregate_counters(points) -> DeviceCounters:
    """Sum the per-point :class:`DeviceCounters` of a sweep.

    ``points`` is any iterable of objects with an optional ``counters``
    attribute (e.g. :class:`repro.bench.BenchPoint`); points without one
    (failures, unsupported combinations) contribute nothing.  Used by run
    manifests and the ``workers=1 == workers=N`` invariant test.
    """
    total = DeviceCounters()
    for point in points:
        counters = getattr(point, "counters", None)
        if counters is not None:
            total.merge(counters)
    return total
