"""Grid-configuration helpers shared by all simulated kernels.

These mirror the sizing rules a CUDA implementation would use: enough blocks
to cover the input with a fixed items-per-thread, clamped to a multiple of
what the device can keep resident.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import GPUSpec


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class Occupancy:
    """Residency of a kernel configuration on one SM."""

    blocks_per_sm: int
    limited_by: str


def occupancy(
    spec: GPUSpec,
    *,
    block_threads: int,
    shared_mem_per_block: int = 0,
    registers_per_thread: int = 32,
) -> Occupancy:
    """How many blocks of this configuration fit on one SM, and why.

    Register pressure is the limit the paper calls out for WarpSelect's
    per-thread queues (Sec. 4); the shared-queue design trades registers for
    a small shared-memory footprint.
    """
    if block_threads <= 0 or block_threads > spec.max_threads_per_block:
        raise ValueError(
            f"block_threads must be in [1, {spec.max_threads_per_block}], "
            f"got {block_threads}"
        )
    if shared_mem_per_block < 0 or registers_per_thread <= 0:
        raise ValueError("invalid resource request")

    by_threads = spec.max_threads_per_sm // block_threads
    limits = {"threads": by_threads}
    if shared_mem_per_block > 0:
        limits["shared_mem"] = spec.shared_mem_per_sm // shared_mem_per_block
    limits["registers"] = spec.registers_per_sm // (
        registers_per_thread * block_threads
    )
    limiter = min(limits, key=lambda k: limits[k])
    return Occupancy(blocks_per_sm=max(0, limits[limiter]), limited_by=limiter)


def streaming_grid(
    spec: GPUSpec,
    n: int,
    *,
    block_threads: int = 256,
    items_per_thread: int = 8,
    max_waves: int = 32,
) -> int:
    """Number of blocks a streaming kernel launches over ``n`` items.

    Covers the input at ``items_per_thread`` granularity but never launches
    more than ``max_waves`` full waves of the device — large inputs are
    grid-stride looped, exactly as the RAFT implementation does.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return 1
    blocks_needed = ceil_div(n, block_threads * items_per_thread)
    resident = occupancy(spec, block_threads=block_threads).blocks_per_sm
    cap = max(1, spec.sm_count * max(1, resident) * max_waves)
    return max(1, min(blocks_needed, cap))
