"""Simulated GPU execution model (the substrate replacing real CUDA boards).

See DESIGN.md section 2 for why this substitution preserves the paper's
observable behaviour.
"""

from .spec import GPUSpec, A100, H100, A10, V100, PRESETS, get_spec
from .counters import DeviceCounters, KernelStats, aggregate_counters
from .timeline import Timeline, TraceEvent, STREAMS
from .device import Device
from .launch import Occupancy, occupancy, streaming_grid, ceil_div, next_pow2
from .tracing import chrome_trace, timeline_spans, write_chrome_trace

__all__ = [
    "GPUSpec",
    "A100",
    "H100",
    "A10",
    "V100",
    "PRESETS",
    "get_spec",
    "Device",
    "DeviceCounters",
    "KernelStats",
    "Timeline",
    "TraceEvent",
    "STREAMS",
    "Occupancy",
    "occupancy",
    "streaming_grid",
    "ceil_div",
    "next_pow2",
    "aggregate_counters",
    "chrome_trace",
    "timeline_spans",
    "write_chrome_trace",
]
