"""Chrome-trace export of simulated timelines.

The paper's Fig. 8 is a profiler screenshot; the closest runnable artifact
is a `chrome://tracing` / Perfetto file.  This module converts a
:class:`repro.device.Timeline` into the Trace Event Format (the
``traceEvents`` JSON consumed by chrome://tracing, Perfetto and speedscope),
with one track per simulated stream.
"""

from __future__ import annotations

import json
from pathlib import Path

from .device import Device
from .timeline import STREAMS, Timeline

#: display order and human names of the tracks
_TRACK_NAMES = {
    "gpu": "GPU stream",
    "cpu": "Host thread",
    "pcie_h2d": "PCIe H2D",
    "pcie_d2h": "PCIe D2H",
}


def chrome_trace(timeline: Timeline, *, device: Device | None = None) -> dict:
    """Build a Trace-Event-Format dict from a timeline.

    Durations are emitted in microseconds (the format's native unit).
    When a ``device`` is given, its per-kernel counters are attached as
    event ``args`` so the trace viewer shows bytes/FLOPs on hover.
    """
    events: list[dict] = []
    for tid, stream in enumerate(STREAMS):
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": _TRACK_NAMES.get(stream, stream)},
            }
        )
        for event in timeline.stream_events(stream):
            entry = {
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "name": event.name,
                "ts": event.start * 1e6,
                "dur": event.duration * 1e6,
                "cat": stream,
            }
            args = dict(event.args) if event.args else {}
            if device is not None and event.name in device.kernel_stats:
                stats = device.kernel_stats[event.name]
                args.update(
                    launches=stats.launches,
                    bytes_read=stats.bytes_read,
                    bytes_written=stats.bytes_written,
                    flops=stats.flops,
                )
            if args:
                entry["args"] = args
            events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    device: Device, path: str | Path
) -> Path:
    """Write a device's full trace as chrome://tracing JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace(device.timeline, device=device)
    path.write_text(json.dumps(payload, indent=1))
    return path


def timeline_spans(
    timeline: Timeline,
    *,
    lane_prefix: str,
    base_us: float = 0.0,
    device: Device | None = None,
):
    """Re-base a simulated timeline onto the host wall clock as obs spans.

    Simulated event times start at 0 for every run; shifting them by
    ``base_us`` — the wall-clock start of the host span that executed the
    point — lets one merged Trace-Event file show each point's simulated
    GPU/CPU/PCIe streams in the gap its host worker actually occupied.
    Lanes are ``"<lane_prefix>/<stream>"`` so the exporter renders the
    point as its own process with one thread per stream.
    """
    from ..obs.spans import SpanEvent

    spans = []
    for event in timeline.events:
        args = dict(event.args) if event.args else {}
        if device is not None and event.name in device.kernel_stats:
            stats = device.kernel_stats[event.name]
            args.setdefault("bytes_read", stats.bytes_read)
            args.setdefault("bytes_written", stats.bytes_written)
            args.setdefault("flops", stats.flops)
        spans.append(
            SpanEvent(
                name=event.name,
                cat=f"sim.{event.stream}",
                ts_us=base_us + event.start * 1e6,
                dur_us=event.duration * 1e6,
                lane=f"{lane_prefix}/{event.stream}",
                args=args,
            )
        )
    return spans
