"""Execution trace of a simulated run.

The timeline is the substrate for reproducing the paper's Fig. 8, which
contrasts the kernel/transfer timeline of host-coordinated RadixSelect
(gaps from synchronisation, PCIe copies, CPU processing) with the tight
back-to-back kernels of the iteration-fused AIR Top-K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

#: Streams a trace event can belong to.
STREAMS = ("gpu", "cpu", "pcie_h2d", "pcie_d2h")


@dataclass(frozen=True)
class TraceEvent:
    """One interval of activity on a stream of the simulated machine."""

    name: str
    stream: str
    start: float
    end: float
    #: optional behavioural annotations (pass survivors, queue stats, ...)
    #: surfaced as hover args in chrome-trace/Perfetto exports
    args: dict | None = None

    def __post_init__(self) -> None:
        if self.stream not in STREAMS:
            raise ValueError(f"unknown stream {self.stream!r}")
        if self.end < self.start:
            raise ValueError(
                f"event {self.name!r} ends before it starts "
                f"({self.end} < {self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Ordered collection of :class:`TraceEvent` produced by a run."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(
        self,
        name: str,
        stream: str,
        start: float,
        end: float,
        *,
        args: dict | None = None,
    ) -> TraceEvent:
        event = TraceEvent(name=name, stream=stream, start=start, end=end, args=args)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def stream_events(self, stream: str) -> list[TraceEvent]:
        """Events on one stream, in start order."""
        if stream not in STREAMS:
            raise ValueError(f"unknown stream {stream!r}")
        return sorted(
            (e for e in self._events if e.stream == stream),
            key=lambda e: (e.start, e.end),
        )

    def busy_time(self, stream: str) -> float:
        """Total occupied time on a stream (events never overlap per stream)."""
        return sum(e.duration for e in self.stream_events(stream))

    def idle_gaps(self, stream: str, *, min_gap: float = 0.0) -> list[tuple[float, float]]:
        """Gaps between consecutive events on a stream.

        For RadixSelect these gaps are the white spaces the paper points at
        in Fig. 8; for AIR Top-K they are (near) empty.
        """
        events = self.stream_events(stream)
        gaps: list[tuple[float, float]] = []
        for prev, nxt in zip(events, events[1:]):
            if nxt.start - prev.end > min_gap:
                gaps.append((prev.end, nxt.start))
        return gaps

    @property
    def span(self) -> float:
        """Wall-clock extent of the whole trace."""
        if not self._events:
            return 0.0
        return max(e.end for e in self._events) - min(e.start for e in self._events)

    def render(self, *, width: int = 78, streams: Iterable[str] = STREAMS) -> str:
        """ASCII rendering of the trace (one row per stream).

        This is the textual stand-in for the paper's Fig. 8 screenshot of the
        profiler timeline.
        """
        if not self._events:
            return "(empty timeline)"
        t0 = min(e.start for e in self._events)
        t1 = max(e.end for e in self._events)
        span = max(t1 - t0, 1e-12)
        lines = []
        for stream in streams:
            events = self.stream_events(stream)
            if not events:
                continue
            row = [" "] * width
            for event in events:
                lo = int((event.start - t0) / span * (width - 1))
                hi = max(lo + 1, int((event.end - t0) / span * (width - 1)) + 1)
                mark = event.name[0].upper() if event.name else "#"
                for i in range(lo, min(hi, width)):
                    row[i] = mark
            lines.append(f"{stream:>9} |{''.join(row)}|")
        legend = sorted({f"{e.name[0].upper()}={e.name}" for e in self._events})
        lines.append("legend: " + ", ".join(legend))
        lines.append(f"span: {span * 1e6:.2f} us")
        return "\n".join(lines)
