"""The simulated machine: one GPU, one host thread, one PCIe link.

A :class:`Device` instance is the handle every algorithm runs against.  It
owns the work counters, the trace timeline and two time cursors:

* ``cpu_time`` — when the host thread is next free.  Kernel submission,
  host-side processing of intermediate data (as host-coordinated
  RadixSelect does) and synchronisation advance it.
* ``gpu_time`` — when the GPU stream is next free.  Kernels execute in
  submission order and back-to-back when the host keeps the stream fed,
  which is exactly the behaviour AIR Top-K's iteration-fused design buys
  (paper Fig. 8).

Scaled execution: benchmarks at the paper's largest sizes (N = 2^30 is
4 GiB of float32) execute the algorithm on a proportionally reduced problem
and register work with ``scale > 1``, so counters and kernel pricing reflect
the nominal size while the Python process only touches the reduced data.
Launch-count-type overheads (submission latency, PCIe setup, sync) are
intensive quantities and are never scaled.
"""

from __future__ import annotations

from .counters import DeviceCounters, KernelStats
from .spec import GPUSpec, A100
from .timeline import Timeline
from ..perf.costmodel import KernelCostModel, LaunchShape


class Device:
    """A simulated GPU attached to a host over PCIe."""

    def __init__(self, spec: GPUSpec = A100, *, scale: float = 1.0) -> None:
        if scale < 1.0:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.spec = spec
        self.scale = scale
        self.cost_model = KernelCostModel(spec)
        self.counters = DeviceCounters()
        self.timeline = Timeline()
        self.kernel_stats: dict[str, KernelStats] = {}
        self.cpu_time = 0.0
        self.gpu_time = 0.0

    # ------------------------------------------------------------------ #
    # time accounting
    # ------------------------------------------------------------------ #
    @property
    def elapsed(self) -> float:
        """Simulated wall-clock time since the run began, seconds."""
        return max(self.cpu_time, self.gpu_time)

    def launch_kernel(
        self,
        name: str,
        *,
        grid_blocks: int,
        block_threads: int,
        bytes_read: float = 0.0,
        bytes_written: float = 0.0,
        flops: float = 0.0,
        dependent_cycles: float = 0.0,
        warp_efficiency: float = 1.0,
        scalable: bool = True,
        fixed_bytes_read: float = 0.0,
        fixed_bytes_written: float = 0.0,
        fixed_flops: float = 0.0,
        fixed_dependent_cycles: float = 0.0,
        span_args: dict | None = None,
    ) -> float:
        """Submit and execute one kernel; returns its device-side duration.

        ``scalable=True`` quantities are multiplied by the device's data
        scale (see module docstring); pass ``scalable=False`` for kernels
        whose work does not grow with N.  The ``fixed_*`` quantities are
        never scaled — use them for work that is constant in N even inside
        an otherwise data-proportional kernel (e.g. the 2^b-entry histogram
        writes and block scan fused into AIR's iteration kernel).
        ``span_args`` attaches behavioural annotations to the timeline
        event (shown as hover args in trace exports).
        """
        s = self.scale if scalable else 1.0
        bytes_read = bytes_read * s + fixed_bytes_read
        bytes_written = bytes_written * s + fixed_bytes_written
        flops = flops * s + fixed_flops
        dependent_cycles = dependent_cycles * s + fixed_dependent_cycles

        shape = LaunchShape(grid_blocks=grid_blocks, block_threads=block_threads)
        cost = self.cost_model.price(
            shape,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            flops=flops,
            dependent_cycles=dependent_cycles,
            warp_efficiency=warp_efficiency,
        )

        # host submits the launch, then the stream runs it in order
        self.cpu_time += self.spec.kernel_launch_latency
        start = max(self.gpu_time, self.cpu_time)
        end = start + cost.duration
        self.gpu_time = end
        self.timeline.record(name, "gpu", start, end, args=span_args)

        self.counters.kernel_launches += 1
        self.counters.bytes_read += bytes_read
        self.counters.bytes_written += bytes_written
        self.counters.flops += flops
        stats = self.kernel_stats.setdefault(name, KernelStats(name=name))
        stats.merge_launch(
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            flops=flops,
            time=cost.duration,
        )
        return cost.duration

    def memcpy_d2h(self, name: str, nbytes: float, *, scalable: bool = False) -> float:
        """Blocking device-to-host copy (how the baselines fetch histograms)."""
        return self._memcpy(name, nbytes, "pcie_d2h", scalable)

    def memcpy_h2d(self, name: str, nbytes: float, *, scalable: bool = False) -> float:
        """Blocking host-to-device copy."""
        return self._memcpy(name, nbytes, "pcie_h2d", scalable)

    def _memcpy(self, name: str, nbytes: float, stream: str, scalable: bool) -> float:
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        nbytes *= self.scale if scalable else 1.0
        duration = self.cost_model.pcie_time(nbytes)
        # a blocking copy waits for the stream to drain, then occupies both
        # the link and the host thread
        start = max(self.cpu_time, self.gpu_time)
        end = start + duration
        self.cpu_time = end
        self.gpu_time = end
        self.timeline.record(name, stream, start, end)
        if stream == "pcie_d2h":
            self.counters.d2h_transfers += 1
            self.counters.d2h_bytes += nbytes
        else:
            self.counters.h2d_transfers += 1
            self.counters.h2d_bytes += nbytes
        return duration

    def host_compute(self, name: str, seconds: float) -> float:
        """Host-side processing (e.g. the CPU scan in baseline RadixSelect)."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        start = self.cpu_time
        self.cpu_time = start + seconds
        self.timeline.record(name, "cpu", start, self.cpu_time)
        return seconds

    def synchronize(self, name: str = "sync") -> None:
        """Host waits for the GPU stream to drain."""
        start = self.cpu_time
        self.cpu_time = max(self.cpu_time, self.gpu_time) + self.spec.sync_latency
        self.counters.syncs += 1
        self.timeline.record(name, "cpu", start, self.cpu_time)

    # ------------------------------------------------------------------ #
    # workspace accounting (scaled: buffers grow with the data)
    # ------------------------------------------------------------------ #
    def allocate_workspace(self, nbytes: float) -> None:
        self.counters.allocate_workspace(nbytes * self.scale)

    def free_workspace(self, nbytes: float) -> None:
        self.counters.free_workspace(nbytes * self.scale)
