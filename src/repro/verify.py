"""Correctness checking of top-k outputs.

The output contract (paper Sec. 2.1): a value list V and index list I of
length k with ``L[I[i]] == V[i]`` and every selected value no worse than
every non-selected value.  Ties at the k-th value may be broken
arbitrarily, so verification compares multisets, not index sets.

Comparison happens in the monotone key space of
:func:`repro.primitives.encode`, which fixes one total order for the edge
cases: ``-0.0 == 0.0`` and NaN sorts after every number in both selection
directions (NaNs are only selected when k forces it).
"""

from __future__ import annotations

import numpy as np

from .primitives import priority_keys


def oracle_topk_values(
    data: np.ndarray, k: int, *, largest: bool = False
) -> np.ndarray:
    """Reference top-k values (sorted best-first) via full key sort.

    Implements the library's NaN policy (never preferred); for NaN-free
    data this equals a plain ``np.partition`` oracle.
    """
    data = np.asarray(data)
    squeeze = data.ndim == 1
    if squeeze:
        data = data[None, :]
    if not 1 <= k <= data.shape[1]:
        raise ValueError(f"k={k} outside [1, {data.shape[1]}]")
    keys = priority_keys(np.ascontiguousarray(data), largest=largest)
    order = np.argsort(keys, axis=1, kind="stable")[:, :k]
    out = np.take_along_axis(data, order, axis=1)
    return out[0] if squeeze else out


def check_topk(
    data: np.ndarray,
    values: np.ndarray,
    indices: np.ndarray,
    *,
    largest: bool = False,
) -> None:
    """Raise AssertionError unless (values, indices) is a valid top-k output.

    Checks, per problem row:

    * shape agreement between values and indices,
    * index validity: in range, unique, and ``data[i, indices] == values``
      (bit-wise, NaNs included),
    * key-multiset equality with a full-sort oracle (ties broken freely).
    """
    data = np.asarray(data)
    values = np.asarray(values)
    indices = np.asarray(indices)
    squeeze = data.ndim == 1
    if squeeze:
        data = data[None, :]
        values = values[None, :]
        indices = indices[None, :]
    if values.shape != indices.shape or values.ndim != 2:
        raise AssertionError(
            f"values {values.shape} and indices {indices.shape} must match"
        )
    batch, k = values.shape
    if data.shape[0] != batch:
        raise AssertionError(
            f"batch mismatch: data has {data.shape[0]} rows, output {batch}"
        )
    n = data.shape[1]
    if np.any(indices < 0) or np.any(indices >= n):
        raise AssertionError("indices out of range")
    sorted_idx = np.sort(indices, axis=1)
    if np.any(sorted_idx[:, 1:] == sorted_idx[:, :-1]):
        raise AssertionError("duplicate indices within a row")
    gathered = np.take_along_axis(data, indices, axis=1)
    same = (gathered == values) | _both_nan(gathered, values)
    if not same.all():
        raise AssertionError("data[indices] != values")

    keys = priority_keys(np.ascontiguousarray(data), largest=largest)
    got_keys = priority_keys(np.ascontiguousarray(values), largest=largest)
    expect = np.sort(keys, axis=1)[:, :k]
    got = np.sort(got_keys, axis=1)
    if not np.array_equal(got, expect):
        bad = int(np.nonzero((got != expect).any(axis=1))[0][0])
        raise AssertionError(
            f"row {bad}: selected multiset differs from oracle "
            f"(first mismatch at position "
            f"{int(np.nonzero(got[bad] != expect[bad])[0][0])})"
        )


def _both_nan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.dtype.kind != "f":
        return np.zeros(a.shape, dtype=bool)
    return np.isnan(a) & np.isnan(b)
