"""repro — reproduction of "Parallel Top-K Algorithms on GPU: A
Comprehensive Study and New Methods" (Zhang, Li, Naruse, Wang — SC '23).

The package implements the paper's two contributions, **AIR Top-K** and
**GridSelect**, plus the eight baseline GPU top-k algorithms it benchmarks
(Table 1), all running on a simulated GPU execution model (see DESIGN.md
for the substitution rationale).

Quick start::

    import numpy as np
    from repro import topk

    data = np.random.default_rng(0).standard_normal(1 << 20).astype(np.float32)
    result = topk(data, k=100)              # auto-dispatched, simulated A100
    result.values                           # 100 smallest values, best first
    result.indices                          # their positions in `data`
    result.time                             # simulated seconds

For serving many concurrent queries (micro-batching, sharding, caching,
backpressure) see :mod:`repro.serve`; for deterministic fault injection
and the recovery policies the serving layer is hardened with, see
:mod:`repro.faults` and docs/faults.md.  :mod:`repro.cluster` replicates
the serving node N ways behind a router (placement, R-way replication,
quorum dispatch, node-fault chaos) while keeping cluster answers
byte-identical to single-shot ``topk()`` — see docs/cluster.md.

v2.1 adds an approximate tier (docs/approximate.md): ``topk(...,
mode="approx")`` or ``topk(..., min_recall=0.95)`` opt into the
partition-based approximate methods, dispatched by the quality-aware
planner in :mod:`repro.approx`.  Results carry ``exact`` and
``recall_bound`` so callers can always tell what they got.
"""

from __future__ import annotations

from .algos import (
    AlgorithmInfo,
    TopKAlgorithm,
    TopKResult,
    UnsupportedProblem,
    algorithm_names,
    available_algorithms,
    get_algorithm,
)
from .api import select_k, topk
from .approx import QualityPlan, choose_plan, expected_recall, recall_floor
from .core import AIRTopK, GridSelect, GridSelectStream
from .device import A10, A100, H100, Device, GPUSpec, get_spec
from .verify import check_topk, oracle_topk_values

__version__ = "2.1.0"

__all__ = [
    "topk",
    "select_k",
    "QualityPlan",
    "choose_plan",
    "expected_recall",
    "recall_floor",
    "AlgorithmInfo",
    "TopKAlgorithm",
    "TopKResult",
    "UnsupportedProblem",
    "algorithm_names",
    "available_algorithms",
    "get_algorithm",
    "AIRTopK",
    "GridSelect",
    "GridSelectStream",
    "Device",
    "GPUSpec",
    "A100",
    "H100",
    "A10",
    "get_spec",
    "check_topk",
    "oracle_topk_values",
]
