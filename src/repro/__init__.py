"""repro — reproduction of "Parallel Top-K Algorithms on GPU: A
Comprehensive Study and New Methods" (Zhang, Li, Naruse, Wang — SC '23).

The package implements the paper's two contributions, **AIR Top-K** and
**GridSelect**, plus the eight baseline GPU top-k algorithms it benchmarks
(Table 1), all running on a simulated GPU execution model (see DESIGN.md
for the substitution rationale).

Quick start::

    import numpy as np
    from repro import topk

    data = np.random.default_rng(0).standard_normal(1 << 20).astype(np.float32)
    result = topk(data, k=100)              # AIR Top-K on a simulated A100
    result.values                           # 100 smallest values, best first
    result.indices                          # their positions in `data`
    result.time                             # simulated seconds
"""

from __future__ import annotations

import numpy as np

from .algos import (
    TopKAlgorithm,
    TopKResult,
    UnsupportedProblem,
    available_algorithms,
    get_algorithm,
)
from .core import AIRTopK, GridSelect, GridSelectStream
from .device import A10, A100, H100, Device, GPUSpec, get_spec
from .verify import check_topk, oracle_topk_values

__version__ = "1.0.0"

__all__ = [
    "topk",
    "select_k",
    "TopKAlgorithm",
    "TopKResult",
    "UnsupportedProblem",
    "available_algorithms",
    "get_algorithm",
    "AIRTopK",
    "GridSelect",
    "GridSelectStream",
    "Device",
    "GPUSpec",
    "A100",
    "H100",
    "A10",
    "get_spec",
    "check_topk",
    "oracle_topk_values",
]


def topk(
    data: np.ndarray,
    k: int,
    *,
    algo: str = "air_topk",
    largest: bool = False,
    spec: GPUSpec = A100,
    device: Device | None = None,
    seed: int = 0,
    **algo_kwargs,
) -> TopKResult:
    """Find the k smallest (or largest) elements of each problem row.

    Parameters
    ----------
    data:
        ``(n,)`` or ``(batch, n)`` array.  float32 is the paper's benchmark
        dtype; float16/float64 and all 16/32/64-bit integer keys are also
        supported (the radix pass count follows the key width).
    k:
        number of results per problem, ``1 <= k <= n``.
    algo:
        registry name — one of :func:`available_algorithms`.  Defaults to
        the paper's primary contribution, AIR Top-K.
    largest:
        select the largest elements instead of the smallest.
    spec / device:
        simulated GPU to run on (A100 by default), or an existing
        :class:`Device` to account the run against.
    algo_kwargs:
        forwarded to the algorithm constructor (e.g. ``adaptive=False``).

    Returns
    -------
    TopKResult with ``values`` and ``indices`` sorted best-first, and the
    simulated ``device`` carrying the run's time, counters and trace.
    """
    algorithm = get_algorithm(algo, **algo_kwargs)
    return algorithm.select(
        data, k, device=device, spec=spec, largest=largest, seed=seed
    )


def select_k(
    data: np.ndarray,
    k: int,
    *,
    select_min: bool = True,
    algo: str = "air_topk",
    **kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """RAFT-style convenience wrapper: ``(values, indices)`` best-first.

    Mirrors ``raft::matrix::select_k`` (the production home of AIR Top-K):
    row-wise selection over a ``(batch, n)`` matrix with a ``select_min``
    direction flag, returning plain arrays instead of a result object.
    """
    result = topk(data, k, algo=algo, largest=not select_min, **kwargs)
    return result.values, result.indices
