"""AIR Top-K — Adaptive and Iteration-fused Radix Top-K (paper Sec. 3).

The algorithm is the paper's Algorithm 1, with the three ingredients that
distinguish it from host-coordinated RadixSelect:

**Iteration-fused design (Sec. 3.1).**  The filtering of iteration *p-1*
and the histogram of iteration *p* execute in one kernel; the prefix sum
and target-digit search run in the last surviving thread block of that same
kernel.  With 11-bit digits a 32-bit key needs only 3 fused kernels plus
one final filter — four launches in total, no PCIe traffic, no host
synchronisation.  The host enqueues all launches up front; every decision
(target digit, candidate counts, buffering) lives in device memory.

Pipeline structure (0-based pass index ``p``):

* kernel ``p`` reads the candidate set *through boundary p-2* — from the
  candidate buffer written by kernel ``p-1``, or by rescanning the original
  input when buffering was skipped;
* it writes the winners *at boundary p-1* (digit below the previous target)
  to the output — the previous target digit only became known at the end of
  kernel ``p-1``, which is why the filter lags the histogram by one kernel;
* it histograms digit ``p`` of the survivors and, in its last surviving
  block, scans the histogram and publishes ``target_p``;
* it stores the survivors (candidates through boundary ``p-1``) to the
  buffer only when the adaptive strategy says so.

**Adaptive buffering (Sec. 3.2).**  Writing candidates pays off only when
few survive: the kernel stores them only when ``C < N / alpha`` (``C`` is
the survivor count, known from the previous histogram) and otherwise the
next kernel re-reads the original input, re-deriving candidacy from the
accumulated target prefix.  This bounds the candidate buffer at
``N / alpha`` elements and eliminates buffer traffic entirely under
radix-adversarial distributions.

**Early stopping (Sec. 3.3).**  When the updated ``K`` equals the updated
candidate count, every remaining candidate is a result; the next kernel
degenerates to a gather and the remaining launches exit immediately.

Implementation note: where Algorithm 1's pseudo-code compares only the
previous iteration's digit when reloading from the original input, the
production RAFT kernel compares the full processed-bit prefix against the
accumulated target prefix (``kth_value_bits``); we implement the RAFT
semantics, which is the correct one when an early digit repeats later in
the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algos.base import RunContext, TopKAlgorithm
from ..device import streaming_grid
from ..obs.metrics import get_metrics, metrics_enabled
from ..obs.spans import tracing_enabled
from ..perf import calibration as cal
from ..primitives import (
    block_scan_ops,
    digit_histogram,
    digit_layout,
    find_target_bucket,
    inclusive_scan,
)


@dataclass
class _RowState:
    """Per-problem state carried across fused iterations (device-resident)."""

    #: results still to be found among the current candidates
    k_cand: int
    #: current candidate count (histogram[target] of the last pass)
    count: int
    #: accumulated target prefix over processed digits (RAFT kth_value_bits)
    prefix: int = 0
    #: number of passes folded into ``prefix``
    passes_done: int = 0
    #: target digit chosen by each completed pass
    targets: list[int] = field(default_factory=list)
    #: buffered candidates through boundary ``passes_done - 2`` (the input
    #: of the upcoming kernel), or None when it must rescan the input
    buf_keys: np.ndarray | None = None
    buf_idx: np.ndarray | None = None
    #: all remaining candidates are results; only a gather is left
    done: bool = False
    gathered: bool = False
    out_keys: list = field(default_factory=list)
    out_idx: list = field(default_factory=list)


@dataclass(frozen=True)
class PassRecord:
    """One fused pass of one problem row, as the debug trace reports it.

    Exposes the quantities the paper's Sec. 3 reasons about: how many
    candidates entered the pass, which digit was chosen, how many survive,
    how many results remain to be found among them, and whether the
    adaptive strategy stored the candidate buffer.
    """

    row: int
    pass_index: int
    candidates_in: int
    target_digit: int
    candidates_out: int
    k_remaining: int
    buffered: bool
    early_stopped: bool


@dataclass
class _KernelTraffic:
    """Work aggregated over the batch for one fused-kernel launch."""

    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    elements: float = 0.0


class AIRTopK(TopKAlgorithm):
    """Adaptive and Iteration-fused Radix Top-K (this paper; in RAPIDS RAFT)."""

    name = "air_topk"
    library = "RAFT"
    category = "partition-based"
    max_k = None
    batched_execution = True  # one launch set covers the whole batch

    def __init__(
        self,
        *,
        alpha: float = 128.0,
        adaptive: bool = True,
        early_stop: bool = True,
        digit_bits: int = 11,
        fuse_last_filter: bool = False,
    ) -> None:
        """``adaptive=False`` and ``early_stop=False`` are the ablations of
        the paper's Fig. 9 and Fig. 10.  ``alpha`` is the buffering
        threshold (the paper uses 128; 4 is the theoretical lower bound —
        buffering costs 4C accesses against N reads, Sec. 3.2).

        ``fuse_last_filter=True`` folds the final filtering kernel into the
        last fused kernel — the variant Sec. 3.1 mentions and rejects: the
        in-kernel filter phase (after a device-wide sync) needs the final
        candidate list materialised, which forces the buffer write the
        adaptive strategy would skip under adversarial distributions.  The
        paper's adopted configuration is False."""
        if alpha < 4:
            raise ValueError(
                f"alpha below 4 makes buffering strictly unprofitable "
                f"(4C accesses vs N reads, Sec. 3.2); got {alpha}"
            )
        self.alpha = float(alpha)
        self.adaptive = adaptive
        self.early_stop = early_stop
        self.fuse_last_filter = fuse_last_filter
        self.digit_bits = digit_bits
        # 32-bit keys are the paper's configuration; wider keys get the
        # same digit width over proportionally more passes (see passes_for)
        self.passes = digit_layout(32, digit_bits)
        #: per-pass trace of the most recent run (list of PassRecord)
        self.last_trace: list[PassRecord] = []

    def _pass_telemetry(self, pass_index: int) -> dict | None:
        """Behavioural telemetry for one fused launch, when enabled.

        Feeds the metrics stream (pass/buffer/early-stop counters) and
        returns ``span_args`` for the launch's timeline event; returns
        None — without touching ``last_trace`` — when telemetry is off, so
        plain runs pay only two flag checks per launch.
        """
        traced = tracing_enabled()
        metered = metrics_enabled()
        if not (traced or metered):
            return None
        records = [r for r in self.last_trace if r.pass_index == pass_index]
        buffered = sum(1 for r in records if r.buffered)
        stopped = sum(1 for r in records if r.early_stopped)
        if metered:
            registry = get_metrics()
            registry.counter("air.passes", algo=self.name).inc(len(records))
            registry.counter("air.buffer_writes", algo=self.name).inc(buffered)
            registry.counter("air.buffer_skips", algo=self.name).inc(
                len(records) - buffered
            )
            registry.counter("air.early_stops", algo=self.name).inc(stopped)
        if not traced:
            return None
        return {
            "rows": len(records),
            "candidates_in": sum(r.candidates_in for r in records),
            "candidates_out": sum(r.candidates_out for r in records),
            "buffered_rows": buffered,
            "early_stopped_rows": stopped,
        }

    def passes_for(self, dtype) -> list:
        """MSB-first digit passes matching the key width of ``dtype``."""
        key_width = np.dtype(dtype).itemsize * 8
        if key_width == 32:
            return self.passes
        return digit_layout(key_width, self.digit_bits)

    # ------------------------------------------------------------------ #
    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        device = ctx.device
        self.passes = self.passes_for(ctx.keys.dtype)
        self.last_trace = []
        states = [_RowState(k_cand=ctx.k, count=n) for _ in range(batch)]
        num_buckets = self.passes[0].num_buckets

        # the host enqueues every kernel up front; nothing below synchronises
        # the host sizes every grid from the only quantity it knows — the
        # nominal input size; candidate counts live in device memory, so
        # later kernels launch the same grid and surplus blocks exit early
        grid = streaming_grid(
            device.spec,
            ctx.nominal_n * batch,
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )
        pending: _KernelTraffic | None = None
        for dpass in self.passes:
            traffic = _KernelTraffic()
            for row in range(batch):
                self._fused_iteration(
                    states[row], ctx.keys[row], dpass, traffic, row=row
                )
            if self.fuse_last_filter and dpass.index == len(self.passes) - 1:
                pending = traffic  # launched below, merged with the filter
                continue
            device.launch_kernel(
                f"iteration_fused_kernel({dpass.index + 1})",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=traffic.bytes_read,
                bytes_written=traffic.bytes_written,
                flops=traffic.flops,
                # histogram privatisation writes plus the fused block scan
                # and target-digit search: constant in N, never scaled
                fixed_bytes_written=batch * num_buckets * 4.0,
                fixed_flops=batch * block_scan_ops(num_buckets),
                fixed_dependent_cycles=batch * cal.AIR_PER_PROBLEM_CYCLES,
                span_args=self._pass_telemetry(dpass.index),
            )

        traffic = _KernelTraffic()
        out_keys = np.empty((batch, ctx.k), dtype=ctx.keys.dtype)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            rk, ri = self._last_filter(ctx, states[row], ctx.keys[row], traffic)
            out_keys[row] = rk
            out_idx[row] = ri
        if pending is not None:
            device.launch_kernel(
                f"iteration_fused_kernel({len(self.passes)})+last_filter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=pending.bytes_read + traffic.bytes_read,
                bytes_written=pending.bytes_written + traffic.bytes_written,
                flops=pending.flops + traffic.flops,
                fixed_bytes_written=batch * num_buckets * 4.0,
                fixed_flops=batch * block_scan_ops(num_buckets),
                fixed_dependent_cycles=batch * cal.AIR_PER_PROBLEM_CYCLES,
                span_args=self._pass_telemetry(len(self.passes) - 1),
            )
        else:
            device.launch_kernel(
                "last_filter_kernel",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=traffic.bytes_read,
                bytes_written=traffic.bytes_written,
                flops=traffic.flops,
                fixed_dependent_cycles=batch * cal.AIR_PER_PROBLEM_CYCLES,
            )
        # two candidate buffers (double buffering), each bounded by N/alpha
        # when the adaptive strategy is on (Sec. 3.2), by N otherwise
        bound = max(1.0, n / self.alpha) if self.adaptive else float(n)
        device.allocate_workspace(batch * 2 * 8.0 * bound)
        return out_keys, out_idx

    # ------------------------------------------------------------------ #
    # loading: candidates through boundary (passes_done - 2), winners split
    # ------------------------------------------------------------------ #
    def _load_and_filter(
        self, state: _RowState, row_keys: np.ndarray, traffic: _KernelTraffic
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read this kernel's input and apply the lagged filter.

        Returns the candidates through boundary ``passes_done - 1`` (i.e.
        survivors of the previous pass's target digit) after writing the
        winners at that boundary to the output.  Accounts read traffic for
        either the buffer (8 B per element) or an input rescan (4 B per
        element over all of N).
        """
        p = state.passes_done
        if p == 0:
            n = row_keys.shape[0]
            traffic.bytes_read += 4.0 * n
            traffic.elements += n
            return row_keys, np.arange(n, dtype=np.int64)

        prev = self.passes[p - 1]
        prev_target = state.targets[-1]
        if state.buf_keys is not None:
            cand_keys, cand_idx = state.buf_keys, state.buf_idx
            traffic.bytes_read += 8.0 * cand_keys.shape[0]
            traffic.elements += cand_keys.shape[0]
            traffic.flops += cal.FILTER_OPS_PER_ELEM * cand_keys.shape[0]
            prev_digits = prev.extract(cand_keys)
            win = prev_digits < prev_target
            keep = prev_digits == prev_target
        else:
            n = row_keys.shape[0]
            traffic.bytes_read += 4.0 * n
            traffic.elements += n
            # every loaded element pays the fused filter's prefix test
            traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * n
            # full-prefix candidacy (RAFT kth_value_bits semantics)
            kt = row_keys.dtype.type
            shifted = row_keys >> kt(prev.shift)
            keep = shifted == kt(state.prefix)
            if p == 1:
                win = shifted < kt(state.prefix)
            else:
                prev2 = self.passes[p - 2]
                prefix2 = state.prefix >> prev.width
                match2 = (row_keys >> kt(prev2.shift)) == kt(prefix2)
                win = match2 & (shifted < kt(state.prefix))
            cand_keys = row_keys
            cand_idx = np.arange(n, dtype=np.int64)

        n_win = int(win.sum())
        if n_win:
            state.out_keys.append(cand_keys[win])
            state.out_idx.append(cand_idx[win])
            traffic.bytes_written += cal.SCATTER_WRITE_PENALTY * 8.0 * n_win
        return cand_keys[keep], cand_idx[keep]

    # ------------------------------------------------------------------ #
    def _fused_iteration(
        self,
        state: _RowState,
        row_keys: np.ndarray,
        dpass,
        traffic: _KernelTraffic,
        row: int = -1,
    ) -> None:
        """One fused filter+histogram iteration for one problem row."""
        if state.done:
            self._gather_if_pending(state, row_keys, traffic)
            return

        cand_keys, cand_idx = self._load_and_filter(state, row_keys, traffic)
        if cand_keys.shape[0] != state.count:
            raise AssertionError(
                f"candidate bookkeeping drifted: have {cand_keys.shape[0]}, "
                f"histogram said {state.count}"
            )

        digits = dpass.extract(cand_keys)
        hist = digit_histogram(digits, dpass.num_buckets)
        traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * cand_keys.shape[0]
        psum = inclusive_scan(hist)
        target = int(find_target_bucket(psum, state.k_cand))
        below = int(psum[target - 1]) if target > 0 else 0

        # adaptive buffering: store the survivors (this kernel's candidate
        # set) only when they are few enough to be worth the scatter.  The
        # first kernel never buffers: its candidate set is the whole input
        # (no filtering has happened yet), so even the classic pipeline only
        # starts writing buffers from the second kernel's fused filter.
        n = row_keys.shape[0]
        final_pass = dpass.index == len(self.passes) - 1
        use_buffer = state.passes_done > 0 and (
            (not self.adaptive)
            or (state.count < n / self.alpha)
            # the fused final filter reads the candidate list after its
            # internal sync; it must exist, whatever the adaptive rule says
            or (self.fuse_last_filter and final_pass)
        )
        if use_buffer:
            state.buf_keys = cand_keys
            state.buf_idx = cand_idx
            traffic.bytes_written += (
                cal.ATOMIC_SCATTER_PENALTY * 8.0 * cand_keys.shape[0]
            )
        else:
            state.buf_keys = None
            state.buf_idx = None

        candidates_in = int(cand_keys.shape[0])
        state.targets.append(target)
        state.prefix = (state.prefix << dpass.width) | target
        state.passes_done += 1
        state.k_cand -= below
        state.count = int(hist[target])
        if self.early_stop and state.k_cand == state.count:
            state.done = True
        self.last_trace.append(
            PassRecord(
                row=row,
                pass_index=dpass.index,
                candidates_in=candidates_in,
                target_digit=target,
                candidates_out=state.count,
                k_remaining=state.k_cand,
                buffered=use_buffer,
                early_stopped=state.done,
            )
        )

    # ------------------------------------------------------------------ #
    def _survivors(
        self, state: _RowState, row_keys: np.ndarray, traffic: _KernelTraffic
    ) -> tuple[np.ndarray, np.ndarray]:
        """Current candidates (through boundary ``passes_done - 1``)."""
        cand_keys, cand_idx = self._load_and_filter(state, row_keys, traffic)
        return cand_keys, cand_idx

    def _gather_if_pending(
        self, state: _RowState, row_keys: np.ndarray, traffic: _KernelTraffic
    ) -> None:
        """Early-stopped row: the next kernel degenerates to one gather."""
        if state.gathered:
            return
        cand_keys, cand_idx = self._survivors(state, row_keys, traffic)
        if cand_keys.shape[0] != state.k_cand:
            raise AssertionError(
                f"early stop expected {state.k_cand} survivors, "
                f"got {cand_keys.shape[0]}"
            )
        state.out_keys.append(cand_keys)
        state.out_idx.append(cand_idx)
        traffic.bytes_written += 8.0 * cand_keys.shape[0]
        state.gathered = True

    def _last_filter(
        self,
        ctx: RunContext,
        state: _RowState,
        row_keys: np.ndarray,
        traffic: _KernelTraffic,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Final filtering kernel (line 5 of Algorithm 1)."""
        if state.done:
            self._gather_if_pending(state, row_keys, traffic)
        else:
            cand_keys, cand_idx = self._survivors(state, row_keys, traffic)
            # after the final pass every survivor shares the complete key:
            # they are exact ties, any k_cand of them are valid results
            state.out_keys.append(cand_keys[: state.k_cand])
            state.out_idx.append(cand_idx[: state.k_cand])
            traffic.bytes_written += 8.0 * state.k_cand
            traffic.flops += cal.FILTER_OPS_PER_ELEM * cand_keys.shape[0]
        keys = np.concatenate(state.out_keys)
        idx = np.concatenate(state.out_idx)
        if keys.shape[0] != ctx.k:
            raise AssertionError(
                f"AIR Top-K produced {keys.shape[0]} results, expected {ctx.k}"
            )
        return keys, idx
