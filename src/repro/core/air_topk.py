"""AIR Top-K — Adaptive and Iteration-fused Radix Top-K (paper Sec. 3).

The algorithm is the paper's Algorithm 1, with the three ingredients that
distinguish it from host-coordinated RadixSelect:

**Iteration-fused design (Sec. 3.1).**  The filtering of iteration *p-1*
and the histogram of iteration *p* execute in one kernel; the prefix sum
and target-digit search run in the last surviving thread block of that same
kernel.  With 11-bit digits a 32-bit key needs only 3 fused kernels plus
one final filter — four launches in total, no PCIe traffic, no host
synchronisation.  The host enqueues all launches up front; every decision
(target digit, candidate counts, buffering) lives in device memory.

Pipeline structure (0-based pass index ``p``):

* kernel ``p`` reads the candidate set *through boundary p-2* — from the
  candidate buffer written by kernel ``p-1``, or by rescanning the original
  input when buffering was skipped;
* it writes the winners *at boundary p-1* (digit below the previous target)
  to the output — the previous target digit only became known at the end of
  kernel ``p-1``, which is why the filter lags the histogram by one kernel;
* it histograms digit ``p`` of the survivors and, in its last surviving
  block, scans the histogram and publishes ``target_p``;
* it stores the survivors (candidates through boundary ``p-1``) to the
  buffer only when the adaptive strategy says so.

**Adaptive buffering (Sec. 3.2).**  Writing candidates pays off only when
few survive: the kernel stores them only when ``C < N / alpha`` (``C`` is
the survivor count, known from the previous histogram) and otherwise the
next kernel re-reads the original input, re-deriving candidacy from the
accumulated target prefix.  This bounds the candidate buffer at
``N / alpha`` elements and eliminates buffer traffic entirely under
radix-adversarial distributions.

**Early stopping (Sec. 3.3).**  When the updated ``K`` equals the updated
candidate count, every remaining candidate is a result; the next kernel
degenerates to a gather and the remaining launches exit immediately.

Implementation note: where Algorithm 1's pseudo-code compares only the
previous iteration's digit when reloading from the original input, the
production RAFT kernel compares the full processed-bit prefix against the
accumulated target prefix (``kth_value_bits``); we implement the RAFT
semantics, which is the correct one when an early digit repeats later in
the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algos.base import RunContext, TopKAlgorithm
from ..device import streaming_grid
from ..obs.metrics import get_metrics, metrics_enabled
from ..obs.spans import tracing_enabled
from ..perf import calibration as cal
from ..primitives import (
    batched_digit_histogram,
    block_scan_ops,
    digit_histogram,
    digit_layout,
    find_target_bucket,
    flat_histogram,
    head_mask,
    inclusive_scan,
)


@dataclass
class _RowState:
    """Per-problem state carried across fused iterations (device-resident)."""

    #: results still to be found among the current candidates
    k_cand: int
    #: current candidate count (histogram[target] of the last pass)
    count: int
    #: accumulated target prefix over processed digits (RAFT kth_value_bits)
    prefix: int = 0
    #: number of passes folded into ``prefix``
    passes_done: int = 0
    #: target digit chosen by each completed pass
    targets: list[int] = field(default_factory=list)
    #: buffered candidates through boundary ``passes_done - 2`` (the input
    #: of the upcoming kernel), or None when it must rescan the input
    buf_keys: np.ndarray | None = None
    buf_idx: np.ndarray | None = None
    #: all remaining candidates are results; only a gather is left
    done: bool = False
    gathered: bool = False
    out_keys: list = field(default_factory=list)
    out_idx: list = field(default_factory=list)


@dataclass(frozen=True)
class PassRecord:
    """One fused pass of one problem row, as the debug trace reports it.

    Exposes the quantities the paper's Sec. 3 reasons about: how many
    candidates entered the pass, which digit was chosen, how many survive,
    how many results remain to be found among them, and whether the
    adaptive strategy stored the candidate buffer.
    """

    row: int
    pass_index: int
    candidates_in: int
    target_digit: int
    candidates_out: int
    k_remaining: int
    buffered: bool
    early_stopped: bool


@dataclass
class _KernelTraffic:
    """Work aggregated over the batch for one fused-kernel launch."""

    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    elements: float = 0.0


class AIRTopK(TopKAlgorithm):
    """Adaptive and Iteration-fused Radix Top-K (this paper; in RAPIDS RAFT)."""

    name = "air_topk"
    library = "RAFT"
    category = "partition-based"
    max_k = None
    batched_execution = True  # one launch set covers the whole batch

    def __init__(
        self,
        *,
        alpha: float = 128.0,
        adaptive: bool = True,
        early_stop: bool = True,
        digit_bits: int = 11,
        fuse_last_filter: bool = False,
        fused: bool = True,
    ) -> None:
        """``adaptive=False`` and ``early_stop=False`` are the ablations of
        the paper's Fig. 9 and Fig. 10.  ``alpha`` is the buffering
        threshold (the paper uses 128; 4 is the theoretical lower bound —
        buffering costs 4C accesses against N reads, Sec. 3.2).

        ``fuse_last_filter=True`` folds the final filtering kernel into the
        last fused kernel — the variant Sec. 3.1 mentions and rejects: the
        in-kernel filter phase (after a device-wide sync) needs the final
        candidate list materialised, which forces the buffer write the
        adaptive strategy would skip under adversarial distributions.  The
        paper's adopted configuration is False.

        ``fused=True`` (the default) executes the whole batch through
        vectorised multi-row passes — the emulation analogue of the fused
        launches the simulated device already charges for.  ``fused=False``
        keeps the per-row reference loop; both produce byte-identical
        outputs, traces and device accounting (pinned by the batched
        differential suite), differing only in host wall-clock."""
        if alpha < 4:
            raise ValueError(
                f"alpha below 4 makes buffering strictly unprofitable "
                f"(4C accesses vs N reads, Sec. 3.2); got {alpha}"
            )
        self.alpha = float(alpha)
        self.adaptive = adaptive
        self.early_stop = early_stop
        self.fuse_last_filter = fuse_last_filter
        self.fused = fused
        self.digit_bits = digit_bits
        # 32-bit keys are the paper's configuration; wider keys get the
        # same digit width over proportionally more passes (see passes_for)
        self.passes = digit_layout(32, digit_bits)
        #: per-pass trace of the most recent run (list of PassRecord)
        self.last_trace: list[PassRecord] = []

    def _pass_telemetry(self, pass_index: int) -> dict | None:
        """Behavioural telemetry for one fused launch, when enabled.

        Feeds the metrics stream (pass/buffer/early-stop counters) and
        returns ``span_args`` for the launch's timeline event; returns
        None — without touching ``last_trace`` — when telemetry is off, so
        plain runs pay only two flag checks per launch.
        """
        traced = tracing_enabled()
        metered = metrics_enabled()
        if not (traced or metered):
            return None
        records = [r for r in self.last_trace if r.pass_index == pass_index]
        buffered = sum(1 for r in records if r.buffered)
        stopped = sum(1 for r in records if r.early_stopped)
        if metered:
            registry = get_metrics()
            registry.counter("air.passes", algo=self.name).inc(len(records))
            registry.counter("air.buffer_writes", algo=self.name).inc(buffered)
            registry.counter("air.buffer_skips", algo=self.name).inc(
                len(records) - buffered
            )
            registry.counter("air.early_stops", algo=self.name).inc(stopped)
        if not traced:
            return None
        return {
            "rows": len(records),
            "candidates_in": sum(r.candidates_in for r in records),
            "candidates_out": sum(r.candidates_out for r in records),
            "buffered_rows": buffered,
            "early_stopped_rows": stopped,
        }

    def passes_for(self, dtype) -> list:
        """MSB-first digit passes matching the key width of ``dtype``."""
        key_width = np.dtype(dtype).itemsize * 8
        if key_width == 32:
            return self.passes
        return digit_layout(key_width, self.digit_bits)

    # ------------------------------------------------------------------ #
    # launch emission — shared by the fused and per-row execution paths so
    # both charge byte-identical launch parameters
    # ------------------------------------------------------------------ #
    def _launch_pass(
        self, device, grid: int, batch: int, num_buckets: int,
        index: int, traffic: _KernelTraffic,
    ) -> None:
        device.launch_kernel(
            f"iteration_fused_kernel({index + 1})",
            grid_blocks=grid,
            block_threads=256,
            bytes_read=traffic.bytes_read,
            bytes_written=traffic.bytes_written,
            flops=traffic.flops,
            # histogram privatisation writes plus the fused block scan
            # and target-digit search: constant in N, never scaled
            fixed_bytes_written=batch * num_buckets * 4.0,
            fixed_flops=batch * block_scan_ops(num_buckets),
            fixed_dependent_cycles=batch * cal.AIR_PER_PROBLEM_CYCLES,
            span_args=self._pass_telemetry(index),
        )

    def _launch_final(
        self, device, grid: int, batch: int, num_buckets: int,
        traffic: _KernelTraffic, pending: _KernelTraffic | None,
    ) -> None:
        if pending is not None:
            device.launch_kernel(
                f"iteration_fused_kernel({len(self.passes)})+last_filter",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=pending.bytes_read + traffic.bytes_read,
                bytes_written=pending.bytes_written + traffic.bytes_written,
                flops=pending.flops + traffic.flops,
                fixed_bytes_written=batch * num_buckets * 4.0,
                fixed_flops=batch * block_scan_ops(num_buckets),
                fixed_dependent_cycles=batch * cal.AIR_PER_PROBLEM_CYCLES,
                span_args=self._pass_telemetry(len(self.passes) - 1),
            )
        else:
            device.launch_kernel(
                "last_filter_kernel",
                grid_blocks=grid,
                block_threads=256,
                bytes_read=traffic.bytes_read,
                bytes_written=traffic.bytes_written,
                flops=traffic.flops,
                fixed_dependent_cycles=batch * cal.AIR_PER_PROBLEM_CYCLES,
            )

    # ------------------------------------------------------------------ #
    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        self.passes = self.passes_for(ctx.keys.dtype)
        self.last_trace = []
        if self.fused:
            return self._run_fused(ctx)
        return self._run_rows(ctx)

    def _run_rows(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        """Per-row reference execution (the pre-fusion loop)."""
        batch, n = ctx.keys.shape
        device = ctx.device
        states = [_RowState(k_cand=ctx.k, count=n) for _ in range(batch)]
        num_buckets = self.passes[0].num_buckets

        # the host enqueues every kernel up front; nothing below synchronises
        # the host sizes every grid from the only quantity it knows — the
        # nominal input size; candidate counts live in device memory, so
        # later kernels launch the same grid and surplus blocks exit early
        grid = streaming_grid(
            device.spec,
            ctx.nominal_n * batch,
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )
        pending: _KernelTraffic | None = None
        for dpass in self.passes:
            traffic = _KernelTraffic()
            for row in range(batch):
                self._fused_iteration(
                    states[row], ctx.keys[row], dpass, traffic, row=row
                )
            if self.fuse_last_filter and dpass.index == len(self.passes) - 1:
                pending = traffic  # launched below, merged with the filter
                continue
            self._launch_pass(
                device, grid, batch, num_buckets, dpass.index, traffic
            )

        traffic = _KernelTraffic()
        out_keys = np.empty((batch, ctx.k), dtype=ctx.keys.dtype)
        out_idx = np.empty((batch, ctx.k), dtype=np.int64)
        for row in range(batch):
            rk, ri = self._last_filter(ctx, states[row], ctx.keys[row], traffic)
            out_keys[row] = rk
            out_idx[row] = ri
        self._launch_final(device, grid, batch, num_buckets, traffic, pending)
        # two candidate buffers (double buffering), each bounded by N/alpha
        # when the adaptive strategy is on (Sec. 3.2), by N otherwise
        bound = max(1.0, n / self.alpha) if self.adaptive else float(n)
        device.allocate_workspace(batch * 2 * 8.0 * bound)
        return out_keys, out_idx

    # ------------------------------------------------------------------ #
    # fused multi-row execution: the whole batch advances through each
    # pass in vectorised slab/flat operations instead of a per-row loop
    # ------------------------------------------------------------------ #
    def _run_fused(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised batched execution, byte-identical to `_run_rows`.

        Per-row state becomes state *vectors*; the candidate sets of all
        buffered rows live in one flat row-major array (``buf_rows`` /
        ``buf_keys`` / ``buf_idx``), and rescanning rows are processed as a
        2-d slab of the input.  Every traffic term is an integer-valued
        float, so the fused sums equal the per-row sums exactly and the
        simulated launch costs — and therefore times — are bit-identical.
        """
        batch, n = ctx.keys.shape
        device = ctx.device
        keys2d = ctx.keys
        kt = keys2d.dtype.type
        num_buckets = self.passes[0].num_buckets
        num_passes = len(self.passes)

        # per-row state vectors (device-resident in the modelled kernels)
        k_cand = np.full(batch, ctx.k, dtype=np.int64)
        count = np.full(batch, n, dtype=np.int64)
        prefix = np.zeros(batch, dtype=np.uint64)
        prev_target = np.zeros(batch, dtype=np.int64)
        is_buffered = np.zeros(batch, dtype=bool)
        done = np.zeros(batch, dtype=bool)
        gathered = np.zeros(batch, dtype=bool)
        # flat row-major candidate buffer of the buffered rows
        buf_rows = np.empty(0, dtype=np.int64)
        buf_keys = np.empty(0, dtype=keys2d.dtype)
        buf_idx = np.empty(0, dtype=np.int64)
        # output chunks, chronological; each chunk is row-major internally,
        # so one stable sort at the end restores every row's append order
        out_rows: list[np.ndarray] = []
        out_keys_parts: list[np.ndarray] = []
        out_idx_parts: list[np.ndarray] = []

        def load_and_filter(
            pass_index: int, traffic: _KernelTraffic
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Vectorised lagged filter over every not-yet-gathered row.

            Returns the row-major flat survivors through boundary
            ``pass_index - 1`` after appending that boundary's winners to
            the output chunks (exactly `_load_and_filter`, all rows at
            once).
            """
            nonlocal buf_rows, buf_keys, buf_idx
            prev = self.passes[pass_index - 1]
            parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
            n_win = 0
            if buf_rows.size:
                traffic.bytes_read += 8.0 * buf_rows.size
                traffic.elements += buf_rows.size
                traffic.flops += cal.FILTER_OPS_PER_ELEM * buf_rows.size
                prev_digits = prev.extract(buf_keys)
                target_b = prev_target[buf_rows].astype(prev_digits.dtype)
                win = prev_digits < target_b
                keep = prev_digits == target_b
                if win.any():
                    out_rows.append(buf_rows[win])
                    out_keys_parts.append(buf_keys[win])
                    out_idx_parts.append(buf_idx[win])
                    n_win += int(win.sum())
                parts.append((buf_rows[keep], buf_keys[keep], buf_idx[keep]))
            rescan = np.flatnonzero(~gathered & ~is_buffered)
            if rescan.size:
                # every row rescanning (the common pass-1 state) needs no
                # row-subset copy of the input slab
                slab = keys2d if rescan.size == batch else keys2d[rescan]
                traffic.bytes_read += 4.0 * n * rescan.size
                traffic.elements += n * rescan.size
                # every loaded element pays the fused filter's prefix test
                traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * n * rescan.size
                # full-prefix candidacy (RAFT kth_value_bits semantics)
                shifted = slab >> kt(prev.shift)
                pfx = prefix[rescan].astype(keys2d.dtype)[:, None]
                keep2 = shifted == pfx
                if pass_index == 1:
                    win2 = shifted < pfx
                else:
                    prev2 = self.passes[pass_index - 2]
                    pfx2 = (prefix[rescan] >> np.uint64(prev.width)).astype(
                        keys2d.dtype
                    )[:, None]
                    match2 = (slab >> kt(prev2.shift)) == pfx2
                    win2 = match2 & (shifted < pfx)
                win_r, win_c = np.nonzero(win2)
                if win_r.size:
                    out_rows.append(rescan[win_r])
                    out_keys_parts.append(slab[win_r, win_c])
                    out_idx_parts.append(win_c.astype(np.int64))
                    n_win += win_r.size
                keep_r, keep_c = np.nonzero(keep2)
                parts.append(
                    (rescan[keep_r], slab[keep_r, keep_c], keep_c.astype(np.int64))
                )
            traffic.bytes_written += cal.SCATTER_WRITE_PENALTY * 8.0 * n_win
            if not parts:
                return (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=keys2d.dtype),
                    np.empty(0, dtype=np.int64),
                )
            s_rows = np.concatenate([p[0] for p in parts])
            s_keys = np.concatenate([p[1] for p in parts])
            s_idx = np.concatenate([p[2] for p in parts])
            if len(parts) > 1:
                # each row lives in exactly one part, so a stable sort by
                # row id restores global row-major order without touching
                # any row's internal candidate order
                order = np.argsort(s_rows, kind="stable")
                s_rows, s_keys, s_idx = s_rows[order], s_keys[order], s_idx[order]
            return s_rows, s_keys, s_idx

        def gather_pending(
            s_rows: np.ndarray,
            s_keys: np.ndarray,
            s_idx: np.ndarray,
            traffic: _KernelTraffic,
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Early-stopped rows: the kernel degenerates to one gather."""
            pend = np.flatnonzero(done & ~gathered)
            if not pend.size:
                return s_rows, s_keys, s_idx
            seg = np.bincount(s_rows, minlength=batch)
            mismatched = np.flatnonzero(seg[pend] != k_cand[pend])
            if mismatched.size:
                row = int(pend[mismatched[0]])
                raise AssertionError(
                    f"early stop expected {int(k_cand[row])} survivors, "
                    f"got {int(seg[row])}"
                )
            sel = (done & ~gathered)[s_rows]
            if sel.any():
                out_rows.append(s_rows[sel])
                out_keys_parts.append(s_keys[sel])
                out_idx_parts.append(s_idx[sel])
                traffic.bytes_written += 8.0 * int(sel.sum())
            gathered[pend] = True
            return s_rows[~sel], s_keys[~sel], s_idx[~sel]

        def fused_pass(dpass, traffic: _KernelTraffic) -> None:
            nonlocal buf_rows, buf_keys, buf_idx
            p = dpass.index
            if p == 0:
                # first pass: every row's candidate set is its whole input
                active = np.arange(batch, dtype=np.int64)
                traffic.bytes_read += 4.0 * n * batch
                traffic.elements += n * batch
                traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * n * batch
                digits2 = dpass.extract(keys2d)
                hist2 = batched_digit_histogram(digits2, dpass.num_buckets)
            else:
                s_rows, s_keys, s_idx = load_and_filter(p, traffic)
                s_rows, s_keys, s_idx = gather_pending(
                    s_rows, s_keys, s_idx, traffic
                )
                active = np.flatnonzero(~done)
                if not active.size:
                    # every row is done (and now gathered): drop the buffer
                    # so later passes read nothing, like the per-row loop
                    buf_rows = np.empty(0, dtype=np.int64)
                    buf_keys = np.empty(0, dtype=keys2d.dtype)
                    buf_idx = np.empty(0, dtype=np.int64)
                    is_buffered[:] = False
                    return
                seg = np.bincount(s_rows, minlength=batch)
                drifted = np.flatnonzero(seg[active] != count[active])
                if drifted.size:
                    row = int(active[drifted[0]])
                    raise AssertionError(
                        f"candidate bookkeeping drifted: have {int(seg[row])}, "
                        f"histogram said {int(count[row])}"
                    )
                local = np.searchsorted(active, s_rows)
                digits = dpass.extract(s_keys)
                traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * s_keys.size
                hist2 = flat_histogram(
                    local, digits, active.size, dpass.num_buckets
                )
            psum2 = inclusive_scan(hist2, axis=1)
            target = np.asarray(
                find_target_bucket(psum2, k_cand[active]), dtype=np.int64
            )
            below = np.where(
                target > 0,
                np.take_along_axis(
                    psum2, np.maximum(target - 1, 0)[:, None], axis=1
                )[:, 0],
                0,
            )
            cand_in = count[active].copy()

            # adaptive buffering, vectorised over the active rows; pass 0
            # never buffers (its candidate set is the whole input)
            final_pass = p == num_passes - 1
            if p == 0:
                use_buffer = np.zeros(batch, dtype=bool)
            else:
                if not self.adaptive:
                    ub = np.ones(active.size, dtype=bool)
                else:
                    ub = count[active] < n / self.alpha
                    if self.fuse_last_filter and final_pass:
                        # the fused final filter reads the candidate list
                        # after its internal sync; it must exist
                        ub[:] = True
                use_buffer = np.zeros(batch, dtype=bool)
                use_buffer[active] = ub
                traffic.bytes_written += cal.ATOMIC_SCATTER_PENALTY * 8.0 * float(
                    count[active][ub].sum()
                )
                bsel = use_buffer[s_rows]
                buf_rows = s_rows[bsel]
                buf_keys = s_keys[bsel]
                buf_idx = s_idx[bsel]
            is_buffered[:] = use_buffer

            prev_target[active] = target
            prefix[active] = (prefix[active] << np.uint64(dpass.width)) | target.astype(
                np.uint64
            )
            k_cand[active] -= below
            new_count = np.take_along_axis(hist2, target[:, None], axis=1)[:, 0]
            count[active] = new_count
            stopped = np.zeros(active.size, dtype=bool)
            if self.early_stop:
                stopped = k_cand[active] == new_count
                done[active[stopped]] = True
            buffered_now = use_buffer[active]
            for i in range(active.size):
                self.last_trace.append(
                    PassRecord(
                        row=int(active[i]),
                        pass_index=p,
                        candidates_in=int(cand_in[i]),
                        target_digit=int(target[i]),
                        candidates_out=int(new_count[i]),
                        k_remaining=int(k_cand[active[i]]),
                        buffered=bool(buffered_now[i]),
                        early_stopped=bool(stopped[i]),
                    )
                )

        def last_filter_fused(traffic: _KernelTraffic) -> None:
            """Final filtering kernel (line 5 of Algorithm 1), all rows."""
            s_rows, s_keys, s_idx = load_and_filter(num_passes, traffic)
            s_rows, s_keys, s_idx = gather_pending(s_rows, s_keys, s_idx, traffic)
            live = np.flatnonzero(~done)
            if not live.size:
                return
            # after the final pass every survivor shares the complete key:
            # they are exact ties, any k_cand of them are valid results
            seg = np.bincount(s_rows, minlength=batch)
            mask = head_mask(seg, np.minimum(k_cand, seg))
            out_rows.append(s_rows[mask])
            out_keys_parts.append(s_keys[mask])
            out_idx_parts.append(s_idx[mask])
            traffic.bytes_written += 8.0 * float(k_cand[live].sum())
            traffic.flops += cal.FILTER_OPS_PER_ELEM * s_keys.size

        grid = streaming_grid(
            device.spec,
            ctx.nominal_n * batch,
            items_per_thread=cal.STREAM_ITEMS_PER_THREAD,
        )
        pending: _KernelTraffic | None = None
        for dpass in self.passes:
            traffic = _KernelTraffic()
            fused_pass(dpass, traffic)
            if self.fuse_last_filter and dpass.index == num_passes - 1:
                pending = traffic  # launched below, merged with the filter
                continue
            self._launch_pass(
                device, grid, batch, num_buckets, dpass.index, traffic
            )

        traffic = _KernelTraffic()
        last_filter_fused(traffic)
        self._launch_final(device, grid, batch, num_buckets, traffic, pending)

        all_rows = (
            np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
        )
        totals = np.bincount(all_rows, minlength=batch)
        short = np.flatnonzero(totals != ctx.k)
        if short.size:
            raise AssertionError(
                f"AIR Top-K produced {int(totals[short[0]])} results, "
                f"expected {ctx.k}"
            )
        order = np.argsort(all_rows, kind="stable")
        out_k = np.concatenate(out_keys_parts)[order].reshape(batch, ctx.k)
        out_i = np.concatenate(out_idx_parts)[order].reshape(batch, ctx.k)
        # two candidate buffers (double buffering), each bounded by N/alpha
        # when the adaptive strategy is on (Sec. 3.2), by N otherwise
        bound = max(1.0, n / self.alpha) if self.adaptive else float(n)
        device.allocate_workspace(batch * 2 * 8.0 * bound)
        return out_k, out_i

    # ------------------------------------------------------------------ #
    # loading: candidates through boundary (passes_done - 2), winners split
    # ------------------------------------------------------------------ #
    def _load_and_filter(
        self, state: _RowState, row_keys: np.ndarray, traffic: _KernelTraffic
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read this kernel's input and apply the lagged filter.

        Returns the candidates through boundary ``passes_done - 1`` (i.e.
        survivors of the previous pass's target digit) after writing the
        winners at that boundary to the output.  Accounts read traffic for
        either the buffer (8 B per element) or an input rescan (4 B per
        element over all of N).
        """
        p = state.passes_done
        if p == 0:
            n = row_keys.shape[0]
            traffic.bytes_read += 4.0 * n
            traffic.elements += n
            return row_keys, np.arange(n, dtype=np.int64)

        prev = self.passes[p - 1]
        prev_target = state.targets[-1]
        if state.buf_keys is not None:
            cand_keys, cand_idx = state.buf_keys, state.buf_idx
            traffic.bytes_read += 8.0 * cand_keys.shape[0]
            traffic.elements += cand_keys.shape[0]
            traffic.flops += cal.FILTER_OPS_PER_ELEM * cand_keys.shape[0]
            prev_digits = prev.extract(cand_keys)
            win = prev_digits < prev_target
            keep = prev_digits == prev_target
        else:
            n = row_keys.shape[0]
            traffic.bytes_read += 4.0 * n
            traffic.elements += n
            # every loaded element pays the fused filter's prefix test
            traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * n
            # full-prefix candidacy (RAFT kth_value_bits semantics)
            kt = row_keys.dtype.type
            shifted = row_keys >> kt(prev.shift)
            keep = shifted == kt(state.prefix)
            if p == 1:
                win = shifted < kt(state.prefix)
            else:
                prev2 = self.passes[p - 2]
                prefix2 = state.prefix >> prev.width
                match2 = (row_keys >> kt(prev2.shift)) == kt(prefix2)
                win = match2 & (shifted < kt(state.prefix))
            cand_keys = row_keys
            cand_idx = np.arange(n, dtype=np.int64)

        n_win = int(win.sum())
        if n_win:
            state.out_keys.append(cand_keys[win])
            state.out_idx.append(cand_idx[win])
            traffic.bytes_written += cal.SCATTER_WRITE_PENALTY * 8.0 * n_win
        return cand_keys[keep], cand_idx[keep]

    # ------------------------------------------------------------------ #
    def _fused_iteration(
        self,
        state: _RowState,
        row_keys: np.ndarray,
        dpass,
        traffic: _KernelTraffic,
        row: int = -1,
    ) -> None:
        """One fused filter+histogram iteration for one problem row."""
        if state.done:
            self._gather_if_pending(state, row_keys, traffic)
            return

        cand_keys, cand_idx = self._load_and_filter(state, row_keys, traffic)
        if cand_keys.shape[0] != state.count:
            raise AssertionError(
                f"candidate bookkeeping drifted: have {cand_keys.shape[0]}, "
                f"histogram said {state.count}"
            )

        digits = dpass.extract(cand_keys)
        hist = digit_histogram(digits, dpass.num_buckets)
        traffic.flops += cal.FUSED_KERNEL_OPS_PER_ELEM * cand_keys.shape[0]
        psum = inclusive_scan(hist)
        target = int(find_target_bucket(psum, state.k_cand))
        below = int(psum[target - 1]) if target > 0 else 0

        # adaptive buffering: store the survivors (this kernel's candidate
        # set) only when they are few enough to be worth the scatter.  The
        # first kernel never buffers: its candidate set is the whole input
        # (no filtering has happened yet), so even the classic pipeline only
        # starts writing buffers from the second kernel's fused filter.
        n = row_keys.shape[0]
        final_pass = dpass.index == len(self.passes) - 1
        use_buffer = state.passes_done > 0 and (
            (not self.adaptive)
            or (state.count < n / self.alpha)
            # the fused final filter reads the candidate list after its
            # internal sync; it must exist, whatever the adaptive rule says
            or (self.fuse_last_filter and final_pass)
        )
        if use_buffer:
            state.buf_keys = cand_keys
            state.buf_idx = cand_idx
            traffic.bytes_written += (
                cal.ATOMIC_SCATTER_PENALTY * 8.0 * cand_keys.shape[0]
            )
        else:
            state.buf_keys = None
            state.buf_idx = None

        candidates_in = int(cand_keys.shape[0])
        state.targets.append(target)
        state.prefix = (state.prefix << dpass.width) | target
        state.passes_done += 1
        state.k_cand -= below
        state.count = int(hist[target])
        if self.early_stop and state.k_cand == state.count:
            state.done = True
        self.last_trace.append(
            PassRecord(
                row=row,
                pass_index=dpass.index,
                candidates_in=candidates_in,
                target_digit=target,
                candidates_out=state.count,
                k_remaining=state.k_cand,
                buffered=use_buffer,
                early_stopped=state.done,
            )
        )

    # ------------------------------------------------------------------ #
    def _survivors(
        self, state: _RowState, row_keys: np.ndarray, traffic: _KernelTraffic
    ) -> tuple[np.ndarray, np.ndarray]:
        """Current candidates (through boundary ``passes_done - 1``)."""
        cand_keys, cand_idx = self._load_and_filter(state, row_keys, traffic)
        return cand_keys, cand_idx

    def _gather_if_pending(
        self, state: _RowState, row_keys: np.ndarray, traffic: _KernelTraffic
    ) -> None:
        """Early-stopped row: the next kernel degenerates to one gather."""
        if state.gathered:
            return
        cand_keys, cand_idx = self._survivors(state, row_keys, traffic)
        if cand_keys.shape[0] != state.k_cand:
            raise AssertionError(
                f"early stop expected {state.k_cand} survivors, "
                f"got {cand_keys.shape[0]}"
            )
        state.out_keys.append(cand_keys)
        state.out_idx.append(cand_idx)
        traffic.bytes_written += 8.0 * cand_keys.shape[0]
        state.gathered = True

    def _last_filter(
        self,
        ctx: RunContext,
        state: _RowState,
        row_keys: np.ndarray,
        traffic: _KernelTraffic,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Final filtering kernel (line 5 of Algorithm 1)."""
        if state.done:
            self._gather_if_pending(state, row_keys, traffic)
        else:
            cand_keys, cand_idx = self._survivors(state, row_keys, traffic)
            # after the final pass every survivor shares the complete key:
            # they are exact ties, any k_cand of them are valid results
            state.out_keys.append(cand_keys[: state.k_cand])
            state.out_idx.append(cand_idx[: state.k_cand])
            traffic.bytes_written += 8.0 * state.k_cand
            traffic.flops += cal.FILTER_OPS_PER_ELEM * cand_keys.shape[0]
        keys = np.concatenate(state.out_keys)
        idx = np.concatenate(state.out_idx)
        if keys.shape[0] != ctx.k:
            raise AssertionError(
                f"AIR Top-K produced {keys.shape[0]} results, expected {ctx.k}"
            )
        return keys, idx
