"""GridSelect — shared-queue, multi-block queue select (paper Sec. 4).

GridSelect improves Faiss' WarpSelect/BlockSelect on three axes:

* **Shared queue.**  The 32 per-thread register queues become one
  shared-memory queue of capacity 32 per warp.  Register pressure drops
  and, crucially, a flush (bitonic sort + merge into the maintained top-k)
  happens only when the *total* number of qualified candidates fills the
  queue — not as soon as one unlucky thread's private queue fills.
* **Parallel two-step insertion (Fig. 5).**  Lanes compute unique storing
  positions with a warp ballot; positions below the capacity insert
  immediately, the rest insert after the flush, shifted down by the
  capacity.  Insertion stays fully parallel.
* **Multiple thread blocks.**  A grid of blocks covers the input, each
  block keeping its own top-k over a contiguous slice; a final kernel
  merges the per-block results.  This is what lets GridSelect use all of a
  GPU's SMs where BlockSelect uses one — the source of the up-to-882x
  speedup in Table 2.

Like WarpSelect, GridSelect processes data on-the-fly (it maintains the
top-k of everything seen so far); see :class:`GridSelectStream`.
"""

from __future__ import annotations

import numpy as np

from ..algos.base import RunContext, TopKAlgorithm
from ..algos.queue_common import (
    QueueStats,
    SENTINEL,
    emulate_queue_select,
    slice_rows,
)
from ..device import Device, GPUSpec, A100, ceil_div, next_pow2
from ..obs.metrics import get_metrics, metrics_enabled
from ..obs.spans import tracing_enabled
from ..perf import calibration as cal
from ..primitives import comparator_count_sort


class GridSelect(TopKAlgorithm):
    """Multi-block shared-queue k-selection (this paper)."""

    name = "grid_select"
    library = "this paper"
    category = "partial sorting"
    max_k = 2048
    on_the_fly = True
    batched_execution = True

    #: threads per block (4 warps, matching BlockSelect's block shape)
    block_threads = 32 * cal.BLOCK_SELECT_WARPS

    def __init__(self, *, queue: str = "shared") -> None:
        """``queue='thread'`` is the per-thread-queue ablation of Fig. 11."""
        if queue not in ("shared", "thread"):
            raise ValueError(f"queue must be 'shared' or 'thread', got {queue!r}")
        self.queue = queue

    def num_blocks(self, spec, nominal_n: int) -> int:
        """Blocks per problem: enough to cover N, capped at 2 waves."""
        per_thread = cal.STREAM_ITEMS_PER_THREAD * 16
        needed = ceil_div(nominal_n, self.block_threads * per_thread)
        return max(1, min(needed, 2 * spec.sm_count))

    def _run(self, ctx: RunContext) -> tuple[np.ndarray, np.ndarray]:
        batch, n = ctx.keys.shape
        device = ctx.device
        blocks = self.num_blocks(device.spec, ctx.nominal_n)

        slices, offsets = slice_rows(ctx.keys, blocks)
        # real elements per slice: trailing slices of a row may be padded
        per = slices.shape[1]
        starts = np.tile(np.arange(blocks, dtype=np.int64) * per, batch)
        lengths = np.clip(n - starts, 0, per)
        if self.queue == "shared":
            result = emulate_queue_select(
                slices,
                ctx.k,
                lanes=self.block_threads,
                mode="shared",
                queue_len=cal.SHARED_QUEUE_LEN,
                valid_lengths=lengths,
            )
        else:
            result = emulate_queue_select(
                slices,
                ctx.k,
                lanes=self.block_threads,
                mode="thread",
                queue_len=cal.THREAD_QUEUE_LEN,
                valid_lengths=lengths,
            )
        # local slice positions -> original row positions
        block_idx = np.where(
            result.indices >= 0, result.indices + offsets[:, None], -1
        )
        block_keys = result.keys.reshape(batch, blocks * ctx.k)
        block_idx = block_idx.reshape(batch, blocks * ctx.k)

        self._account_main(ctx, result.stats, blocks)

        # final merge kernel: one block per problem reduces the per-block
        # top-k candidates to the global top-k; with a single block the
        # block result already is the answer and the kernel is skipped
        # validity-secondary sort: per-block padding (idx -1) carries the
        # sentinel key, which a real element's key can equal on integer data
        order = np.lexsort((block_idx < 0, block_keys))[:, : ctx.k]
        out_keys = np.take_along_axis(block_keys, order, axis=1)
        out_idx = np.take_along_axis(block_idx, order, axis=1)
        if blocks > 1:
            merge_elems = batch * blocks * ctx.k
            device.launch_kernel(
                "GridSelectMerge",
                grid_blocks=batch,
                block_threads=self.block_threads,
                bytes_read=8.0 * merge_elems,
                bytes_written=8.0 * batch * ctx.k,
                flops=cal.OPS_PER_COMPARATOR
                * batch
                * comparator_count_sort(next_pow2(max(2, blocks * ctx.k))),
            )
        return out_keys, out_idx

    def _account_main(self, ctx: RunContext, stats: QueueStats, blocks: int) -> None:
        batch, n = ctx.keys.shape
        device = ctx.device
        slice_len = -(-n // blocks)
        rounds_per_block = -(-slice_len // self.block_threads)
        total_slices = batch * blocks
        flushes_per_block = stats.flushes / total_slices
        flush_comps = stats.merge_comparators / max(1, stats.flushes)
        if self.queue == "shared":
            round_cycles = cal.ROUND_CYCLES_SHARED_QUEUE
            elem_ops = cal.SHARED_QUEUE_OPS_PER_ELEM
            warp_eff = cal.WARP_EFFICIENCY_SHARED_QUEUE
        else:
            round_cycles = cal.ROUND_CYCLES_THREAD_QUEUE
            elem_ops = cal.THREAD_QUEUE_OPS_PER_ELEM_GRID
            warp_eff = cal.WARP_EFFICIENCY_THREAD_QUEUE_GRID
        span_args = None
        if tracing_enabled():
            span_args = {
                "queue": self.queue,
                "rounds": stats.rounds,
                "inserts": stats.inserts,
                "flushes": stats.flushes,
                "merge_comparators": stats.merge_comparators,
            }
        if metrics_enabled():
            registry = get_metrics()
            registry.counter("gridselect.flushes", queue=self.queue).inc(
                stats.flushes
            )
            registry.counter("gridselect.inserts", queue=self.queue).inc(
                stats.inserts
            )
        dependent_cycles = (
            rounds_per_block * round_cycles
            + flushes_per_block
            * (flush_comps / self.block_threads)
            * cal.FLUSH_CYCLES_PER_LANE_COMPARATOR
        )
        device.launch_kernel(
            "GridSelectKernel",
            grid_blocks=total_slices,
            block_threads=self.block_threads,
            bytes_read=4.0 * batch * n,
            bytes_written=8.0 * total_slices * ctx.k,
            flops=(
                elem_ops * cal.queue_k_ops_factor(ctx.nominal_k) * batch * n
                + cal.OPS_PER_COMPARATOR * stats.merge_comparators
            ),
            dependent_cycles=dependent_cycles,
            fixed_dependent_cycles=cal.GRID_KERNEL_FIXED_CYCLES
            + batch * cal.QUEUE_PER_PROBLEM_CYCLES,
            warp_efficiency=warp_eff,
            span_args=span_args,
        )


class GridSelectStream:
    """On-the-fly GridSelect: feed chunks as they arrive, read top-k anytime.

    WarpSelect's signature capability — kept by GridSelect (Sec. 4) — is
    consuming a stream without materialising it: the structure always holds
    the top-k of everything pushed so far.  Useful when the scored elements
    are produced incrementally (e.g. distance computations fused with
    selection in ANN search).
    """

    def __init__(
        self,
        k: int,
        *,
        device: Device | None = None,
        spec: GPUSpec = A100,
        largest: bool = False,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > GridSelect.max_k:
            raise ValueError(f"GridSelect supports k <= {GridSelect.max_k}")
        self.k = k
        self.largest = largest
        self.device = device if device is not None else Device(spec)
        self._seen = 0
        self._keys = np.full(k, SENTINEL, dtype=np.uint32)
        self._idx = np.full(k, -1, dtype=np.int64)
        self._queue_fill = 0
        self._flushes = 0
        self._inserts = 0

    @property
    def count_seen(self) -> int:
        """Total elements pushed so far."""
        return self._seen

    def push(self, chunk: np.ndarray) -> None:
        """Consume one chunk of values."""
        from ..primitives import priority_keys  # local: avoids cycle at import

        chunk = np.asarray(chunk)
        if chunk.ndim != 1:
            raise ValueError(f"push expects a 1-d chunk, got shape {chunk.shape}")
        if chunk.size == 0:
            return
        keys = priority_keys(np.ascontiguousarray(chunk), largest=self.largest)
        threshold = self._keys[-1]
        mask = keys < threshold
        qualified = int(mask.sum())
        self._inserts += qualified
        total = self._queue_fill + qualified
        self._flushes += total // cal.SHARED_QUEUE_LEN
        self._queue_fill = total % cal.SHARED_QUEUE_LEN

        if qualified:
            cand_keys = keys[mask]
            cand_idx = np.nonzero(mask)[0].astype(np.int64) + self._seen
            merged_keys = np.concatenate([self._keys, cand_keys])
            merged_idx = np.concatenate([self._idx, cand_idx])
            order = np.argsort(merged_keys, kind="stable")[: self.k]
            self._keys = merged_keys[order]
            self._idx = merged_idx[order]

        n = chunk.shape[0]
        span_args = None
        if tracing_enabled():
            span_args = {"chunk": n, "qualified": qualified, "seen": self._seen}
        if metrics_enabled():
            registry = get_metrics()
            registry.counter("gridselect.stream_chunks").inc()
            registry.counter("gridselect.stream_qualified").inc(qualified)
        blocks = GridSelect().num_blocks(self.device.spec, max(n, 1))
        self.device.launch_kernel(
            "GridSelectStreamChunk",
            grid_blocks=blocks,
            block_threads=GridSelect.block_threads,
            bytes_read=4.0 * n,
            bytes_written=8.0 * qualified,
            flops=cal.SHARED_QUEUE_OPS_PER_ELEM * n,
            warp_efficiency=cal.WARP_EFFICIENCY_SHARED_QUEUE,
            span_args=span_args,
        )
        self._seen += n

    def topk(self) -> tuple[np.ndarray, np.ndarray]:
        """Current top-k ``(values, indices)`` over everything pushed so far,
        best first.  Raises if fewer than k elements were pushed.
        """
        from ..primitives import decode, invert

        if self._seen < self.k:
            raise ValueError(
                f"only {self._seen} elements pushed, need at least k={self.k}"
            )
        keys = self._keys
        if self.largest:
            keys = invert(keys)
        return decode(keys, np.float32), self._idx.copy()
