"""The paper's contributions: AIR Top-K and GridSelect."""

from .air_topk import AIRTopK, PassRecord
from .grid_select import GridSelect, GridSelectStream

__all__ = ["AIRTopK", "PassRecord", "GridSelect", "GridSelectStream"]
