"""Unified telemetry: span tracing, metrics, manifests and drift tracking.

The package has four coordinated pieces (see docs/observability.md):

* :mod:`.spans` — wall-clock span tracer with per-worker buffers; host
  execution (engine, pool workers, retries) and re-based simulated device
  timelines share one Trace-Event-Format file (:mod:`.export`);
* :mod:`.metrics` — labelled counters/gauges/histograms fed by the
  algorithms, runner and engine, merged across workers, dumped as
  ``metrics.json``;
* :mod:`.manifest` — ``manifest.json`` provenance next to every sweep or
  suite CSV (config, seed, grid shape, status tallies, versions,
  aggregate device counters);
* :mod:`.drift` — predicted-vs-simulated cost-model residuals, recorded
  live into metrics and reported by ``repro-topk drift``.

Everything is a strict no-op unless a session is installed; plain runs
pay nothing (pinned by tests/test_obs.py).
"""

from __future__ import annotations

from contextlib import contextmanager

from .drift import (
    DriftSummary,
    PointDrift,
    drift_report,
    point_drift,
    record_point_drift,
)
from .export import chrome_trace, write_trace
from .manifest import build_manifest, counters_payload, versions, write_manifest
from .metrics import (
    MetricsRegistry,
    count,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_enabled,
    metrics_session,
)
from .schema import (
    MANIFEST_SCHEMA,
    METRICS_SCHEMA,
    SERVE_REPORT_SCHEMA,
    SLO_SPEC_SCHEMA,
    TRACE_EVENT_SCHEMA,
    SchemaError,
    validate,
    validate_manifest,
    validate_metrics,
    validate_serve_report,
    validate_slo_spec,
    validate_trace,
)
from .serve import (
    DEFAULT_SLOS,
    ServeTelemetry,
    SLOSpec,
    build_serve_report,
    evaluate_slos,
    histogram_quantile,
    load_slo_specs,
    render_serve_report,
    write_serve_report,
)
from .spans import (
    DEFAULT_LANE,
    NULL_SPAN,
    SpanEvent,
    SpanTracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    trace_session,
    tracing_enabled,
)


@contextmanager
def local_session(*, trace: bool = False, metrics: bool = False, lane: str = DEFAULT_LANE):
    """Install fresh tracer/registry for one worker's chunk of work.

    Pool workers call this instead of :func:`trace_session` /
    :func:`metrics_session` directly so fork-copied parent buffers are
    never appended to (events would be duplicated on merge).  Yields
    ``(tracer | None, registry | None)``; the worker ships both back with
    its chunk result and the engine merges them into the parent session.
    """
    from . import metrics as _metrics
    from . import spans as _spans

    prev_tracer = _spans._ACTIVE
    prev_registry = _metrics._ACTIVE
    tracer = enable_tracing(SpanTracer(default_lane=lane)) if trace else None
    if not trace:
        disable_tracing()
    registry = enable_metrics(MetricsRegistry()) if metrics else None
    if not metrics:
        disable_metrics()
    try:
        yield tracer, registry
    finally:
        _spans._ACTIVE = prev_tracer
        _metrics._ACTIVE = prev_registry


__all__ = [
    "DEFAULT_LANE",
    "DEFAULT_SLOS",
    "DriftSummary",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "PointDrift",
    "SERVE_REPORT_SCHEMA",
    "SLOSpec",
    "SLO_SPEC_SCHEMA",
    "SchemaError",
    "ServeTelemetry",
    "SpanEvent",
    "SpanTracer",
    "TRACE_EVENT_SCHEMA",
    "build_manifest",
    "build_serve_report",
    "chrome_trace",
    "count",
    "counters_payload",
    "disable_metrics",
    "disable_tracing",
    "drift_report",
    "enable_metrics",
    "enable_tracing",
    "evaluate_slos",
    "get_metrics",
    "get_tracer",
    "histogram_quantile",
    "load_slo_specs",
    "local_session",
    "metrics_enabled",
    "metrics_session",
    "point_drift",
    "record_point_drift",
    "render_serve_report",
    "span",
    "trace_session",
    "tracing_enabled",
    "validate",
    "validate_manifest",
    "validate_metrics",
    "validate_serve_report",
    "validate_slo_spec",
    "validate_trace",
    "versions",
    "write_manifest",
    "write_serve_report",
    "write_trace",
]
