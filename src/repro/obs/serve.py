"""Serving observability: request tracing, windowed telemetry, SLOs.

The serving stack (docs/serving.md) runs on a **virtual clock**, so its
telemetry lives in a different time domain than the wall-clock span
tracer of :mod:`.spans`.  This module is the bridge — ``repro.obs.serve``
gives the :class:`~repro.serve.service.TopKService` three coordinated
capabilities (docs/serving-observability.md):

* **request-scoped tracing** — :class:`ServeTelemetry` buffers a
  virtual-time span tree per request (admission → queued → batch →
  shard → merge → finish, with retry/hedge/fault/breaker annotations)
  plus node-level batch lanes, and re-bases them onto the wall clock
  (:meth:`ServeTelemetry.spans`) exactly the way simulated device
  timelines are re-based, so one ``--trace`` file opens in Perfetto with
  per-request lanes alongside the device streams;
* **windowed time-series metrics** — outcomes, queue-depth samples,
  batch occupancy, cache lookups and fault/recovery events are folded
  into fixed ``window_s`` buckets of virtual time as they happen
  (bounded memory: one :class:`~repro.obs.metrics.Histogram` per window,
  never raw sample lists), producing per-window p50/p95/p99 latency,
  availability, queue depth, occupancy, cache hit rate and
  fault/retry/hedge counts;
* **SLO tracking** — declarative :class:`SLOSpec` targets (availability
  and latency-threshold SLOs), evaluated per window into error-budget
  burn rates and an overall verdict, rendered by
  ``repro-topk serve-report`` and gating ``serve-bench --slo`` exit
  status.

Everything here is deterministic in virtual time: the same request trace
produces a byte-identical ``serve_report/v1`` artifact whatever the host
worker count (pinned by tests/test_serve_obs.py).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import Histogram
from .schema import validate_serve_report, validate_slo_spec
from .spans import SpanEvent

#: fine geometric latency grid (16 buckets per decade, 1 us .. 10 s) —
#: shared by the per-window histograms and the capped-sample overall
#: percentile fallback, so quantile estimates stay within ~7.5% of the
#: raw-sample answer
LATENCY_EDGES = tuple(10.0 ** (-6.0 + i / 16.0) for i in range(113))

#: the windowed latency quantiles every report carries
WINDOW_QUANTILES = (50.0, 95.0, 99.0)

#: serve-trace lane naming: the per-request process and the node process
REQUEST_PROCESS = "serve:req"
NODE_PROCESS = "serve:node"

SLO_KINDS = ("availability", "latency", "recall")


# --------------------------------------------------------------------------- #
# histogram quantiles
# --------------------------------------------------------------------------- #
def histogram_quantile(hist: Histogram, q: float) -> float | None:
    """The q-th percentile estimated from a fixed-bound histogram.

    Linear interpolation inside the bucket containing the target rank,
    with the first/last bucket edges clamped to the observed min/max so
    single-sample and narrow distributions stay exact.  Returns None for
    an empty histogram.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"quantile q must be in [0, 100], got {q}")
    if hist.count == 0:
        return None
    rank = (q / 100.0) * hist.count
    cum = 0
    bounds = hist.bounds
    for i, n in enumerate(hist.counts):
        if n == 0:
            continue
        lo = bounds[i - 1] if i > 0 else hist.min
        hi = bounds[i] if i < len(bounds) else hist.max
        lo = max(lo, hist.min)
        hi = min(hi, hist.max)
        if hi < lo:
            lo = hi = hist.min if i == 0 else hist.max
        if cum + n >= rank:
            frac = (rank - cum) / n if n else 0.0
            return lo + frac * (hi - lo)
        cum += n
    return hist.max


def histogram_count_below(hist: Histogram, threshold: float) -> float:
    """Estimated number of observations ``<= threshold``.

    Exact at bucket edges, linearly interpolated inside the bucket the
    threshold falls in — the deterministic good-event count latency SLOs
    are evaluated from.
    """
    if hist.count == 0:
        return 0.0
    if threshold >= hist.max:
        return float(hist.count)
    if threshold < hist.min:
        return 0.0
    cum = 0.0
    bounds = hist.bounds
    for i, n in enumerate(hist.counts):
        if n == 0:
            continue
        lo = max(bounds[i - 1] if i > 0 else hist.min, hist.min)
        hi = min(bounds[i] if i < len(bounds) else hist.max, hist.max)
        if threshold >= hi:
            cum += n
            continue
        if threshold > lo and hi > lo:
            cum += n * (threshold - lo) / (hi - lo)
        break
    return min(cum, float(hist.count))


# --------------------------------------------------------------------------- #
# windowed accumulation
# --------------------------------------------------------------------------- #
@dataclass
class WindowAccum:
    """Everything observed inside one virtual-time window."""

    index: int
    served: int = 0
    degraded: int = 0
    shed: int = 0
    timeout: int = 0
    failed: int = 0
    #: latency histogram of answered requests finishing in this window
    latency: Histogram = field(
        default_factory=lambda: Histogram(bounds=LATENCY_EDGES)
    )
    queue_depth_sum: float = 0.0
    queue_depth_samples: int = 0
    queue_depth_max: float = 0.0
    occupancy_sum: float = 0.0
    occupancy_samples: int = 0
    occupancy_max: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    faults: int = 0
    retries: int = 0
    hedges: int = 0
    breaker: int = 0
    #: answered outcomes served by the approximate tier (exact=False)
    approx: int = 0
    #: outcomes that carried a ``min_recall`` target, and how many of
    #: them were served by a plan meeting it — the "recall" SLO's
    #: good/total events
    recall_requests: int = 0
    recall_met: int = 0
    #: online-adaptation activity (docs/adaptive.md): batches fed back
    #: into the learner, correction folds triggered, exploration picks
    adapt_observations: int = 0
    adapt_folds: int = 0
    adapt_explored: int = 0

    @property
    def requests(self) -> int:
        return self.served + self.degraded + self.shed + self.timeout + self.failed

    @property
    def answered(self) -> int:
        return self.served + self.degraded

    @property
    def bad(self) -> int:
        return self.shed + self.timeout + self.failed


class ServeTelemetry:
    """Per-run collector of the serving layer's virtual-time telemetry.

    The :class:`~repro.serve.service.TopKService` owns one instance and
    feeds it from every seam of the event loop; span buffering only
    happens when ``trace=True`` (the service passes
    :func:`repro.obs.tracing_enabled` at construction), so a run without
    a tracing session records no span events (pinned by
    tests/test_serve_obs.py).  Window accumulation is always on — it
    backs both the ``serve_report`` artifact and the capped-latency
    percentile fallback — and is bounded: one histogram per window, no
    raw sample lists.
    """

    def __init__(self, *, window_s: float = 0.25, trace: bool = False) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self.trace = bool(trace)
        self.windows: dict[int, WindowAccum] = {}
        #: overall latency histogram of every answered request (the
        #: percentile source once the raw sample list hits its cap)
        self.latency_hist = Histogram(bounds=LATENCY_EDGES)
        self._spans: list[tuple] = []
        self.fault_kinds: dict[str, int] = {}

    # -- window feed ----------------------------------------------------- #
    def window(self, t_s: float) -> WindowAccum:
        index = max(0, int(t_s / self.window_s))
        accum = self.windows.get(index)
        if accum is None:
            accum = WindowAccum(index=index)
            self.windows[index] = accum
        return accum

    def on_outcome(
        self,
        status: str,
        finish_s: float,
        latency_s: float | None,
        *,
        exact: bool = True,
        recall_target: bool = False,
        recall_met: bool = True,
    ) -> None:
        accum = self.window(finish_s)
        setattr(accum, status, getattr(accum, status) + 1)
        if status in ("served", "degraded") and not exact:
            accum.approx += 1
        if recall_target:
            accum.recall_requests += 1
            if recall_met:
                accum.recall_met += 1
        if latency_s is not None:
            accum.latency.observe(latency_s)
            self.latency_hist.observe(latency_s)

    def on_queue_depth(self, t_s: float, depth: int) -> None:
        accum = self.window(t_s)
        accum.queue_depth_sum += depth
        accum.queue_depth_samples += 1
        accum.queue_depth_max = max(accum.queue_depth_max, depth)

    def on_batch(self, t_s: float, size: int) -> None:
        accum = self.window(t_s)
        accum.occupancy_sum += size
        accum.occupancy_samples += 1
        accum.occupancy_max = max(accum.occupancy_max, size)

    def on_cache_lookup(self, t_s: float, hit: bool) -> None:
        accum = self.window(t_s)
        if hit:
            accum.cache_hits += 1
        else:
            accum.cache_misses += 1

    def on_fault(self, t_s: float, kind: str, count: int = 1) -> None:
        self.window(t_s).faults += count
        self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + count

    def on_retry(self, t_s: float, count: int = 1) -> None:
        self.window(t_s).retries += count

    def on_hedge(self, t_s: float, count: int = 1) -> None:
        self.window(t_s).hedges += count

    def on_breaker(self, t_s: float, count: int = 1) -> None:
        self.window(t_s).breaker += count

    def on_adaptation(
        self,
        t_s: float,
        *,
        observations: int = 0,
        folds: int = 0,
        explored: int = 0,
    ) -> None:
        accum = self.window(t_s)
        accum.adapt_observations += observations
        accum.adapt_folds += folds
        accum.adapt_explored += explored

    # -- virtual-time spans ---------------------------------------------- #
    @staticmethod
    def request_lane(rid: int) -> str:
        """Per-request trace lane (one Perfetto track per request)."""
        return f"{REQUEST_PROCESS}/r{rid:05d}"

    @staticmethod
    def node_lane(track: str) -> str:
        """Node-level trace lane (device, cache, ...)."""
        return f"{NODE_PROCESS}/{track}"

    def emit(
        self,
        name: str,
        *,
        cat: str,
        lane: str,
        ts_s: float,
        dur_s: float = 0.0,
        **args,
    ) -> None:
        """Buffer one virtual-time span; no-op unless tracing is on."""
        if self.trace:
            self._spans.append((name, cat, lane, ts_s, dur_s, args))

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, base_us: float = 0.0) -> list[SpanEvent]:
        """The buffered request/node spans as wall-clock SpanEvents.

        ``base_us`` is the wall-clock moment virtual time 0 maps to
        (callers pass the start of their enclosing host span, the same
        re-basing convention as :func:`repro.device.timeline_spans`), so
        the serve lanes line up with the host lanes in one trace file.
        """
        return [
            SpanEvent(
                name=name,
                cat=cat,
                ts_us=base_us + ts_s * 1e6,
                dur_us=max(0.0, dur_s * 1e6),
                lane=lane,
                args=dict(args),
            )
            for name, cat, lane, ts_s, dur_s, args in self._spans
        ]

    def traced_requests(self) -> set[int]:
        """rids that have a root ``request`` span in the buffer."""
        return {
            args["rid"]
            for name, _cat, _lane, _ts, _dur, args in self._spans
            if name == "request" and "rid" in args
        }


# --------------------------------------------------------------------------- #
# SLO specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    ``kind="availability"``: the fraction of requests answered (served or
    degraded) must reach ``target``.  ``kind="latency"``: the fraction of
    requests answered within ``threshold_s`` must reach ``target``
    (shed/timeout/failed requests count against it).  ``kind="recall"``:
    among requests that carried a ``min_recall`` target, the fraction
    answered by a plan meeting it must reach ``target`` — threshold-free,
    and vacuously satisfied in windows with no recall-targeted traffic.
    ``target`` is an open fraction in (0, 1) so the error budget
    ``1 - target`` is never zero and burn rates stay finite.
    """

    name: str
    kind: str
    target: float
    threshold_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency":
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError(
                    f"latency SLOs need a positive threshold_s, got {self.threshold_s}"
                )

    def to_payload(self) -> dict:
        payload = {"name": self.name, "kind": self.kind, "target": self.target}
        if self.threshold_s is not None:
            payload["threshold_s"] = self.threshold_s
        return payload


#: the serve-bench defaults: three nines of answering, 50 ms p99-ish bound
DEFAULT_SLOS = (
    SLOSpec(name="availability-99", kind="availability", target=0.99),
    SLOSpec(name="latency-50ms-99", kind="latency", target=0.99, threshold_s=0.05),
)


def load_slo_specs(path) -> tuple[SLOSpec, ...]:
    """Parse a ``repro.obs.slo/v1`` JSON file into :class:`SLOSpec` s."""
    payload = json.loads(Path(path).read_text())
    validate_slo_spec(payload)
    return tuple(
        SLOSpec(
            name=entry["name"],
            kind=entry["kind"],
            target=entry["target"],
            threshold_s=entry.get("threshold_s"),
        )
        for entry in payload["slos"]
    )


def _good_bad(accum: WindowAccum, slo: SLOSpec) -> tuple[float, float]:
    """(good, bad) event counts of one window under one SLO.

    Availability and latency SLOs count every request; the recall SLO
    counts only requests that carried a ``min_recall`` target, so the
    two populations (and their totals) differ.
    """
    if slo.kind == "recall":
        good = float(accum.recall_met)
        return good, float(accum.recall_requests) - good
    total = accum.requests
    if slo.kind == "availability":
        good = float(accum.answered)
    else:
        good = histogram_count_below(accum.latency, slo.threshold_s)
    return good, total - good


def evaluate_slos(
    accums: list[WindowAccum], slos: tuple[SLOSpec, ...]
) -> list[dict]:
    """Per-SLO verdicts with per-window error-budget burn rates.

    The burn rate of a window is its bad-event fraction over the error
    budget ``1 - target`` — 1.0 means the budget is being consumed
    exactly at the sustainable rate, above it the SLO is being burned
    down.  ``budget_consumed`` is the run-total equivalent; ``violated``
    is the overall verdict (run-wide SLI below target).
    """
    results = []
    for slo in slos:
        burn_rates: list[float] = []
        violating: list[int] = []
        good_total = 0.0
        total = 0
        budget = 1.0 - slo.target
        for accum in accums:
            good, bad = _good_bad(accum, slo)
            count = good + bad
            if count <= 0:
                burn_rates.append(0.0)
                continue
            good_total += good
            total += count
            burn_rates.append((bad / count) / budget)
            if good / count < slo.target:
                violating.append(accum.index)
        sli = good_total / total if total else 1.0
        entry = slo.to_payload()
        entry.update(
            {
                "threshold_s": slo.threshold_s,
                "sli": sli,
                "violated": bool(total) and sli < slo.target,
                "good": good_total,
                "bad": total - good_total,
                "budget_consumed": ((total - good_total) / (budget * total))
                if total
                else 0.0,
                "max_burn_rate": max(burn_rates, default=0.0),
                "burn_rates": burn_rates,
                "violating_windows": violating,
            }
        )
        results.append(entry)
    return results


# --------------------------------------------------------------------------- #
# the serve-report artifact
# --------------------------------------------------------------------------- #
def _window_payload(accum: WindowAccum, window_s: float) -> dict:
    requests = accum.requests
    lookups = accum.cache_hits + accum.cache_misses
    quantile_fields = {
        f"latency_p{q:g}_s": histogram_quantile(accum.latency, q)
        for q in WINDOW_QUANTILES
    }
    return {
        "index": accum.index,
        "start_s": accum.index * window_s,
        "end_s": (accum.index + 1) * window_s,
        "requests": requests,
        "served": accum.served,
        "degraded": accum.degraded,
        "shed": accum.shed,
        "timeout": accum.timeout,
        "failed": accum.failed,
        "availability": accum.answered / requests if requests else 1.0,
        **quantile_fields,
        "queue_depth_mean": (
            accum.queue_depth_sum / accum.queue_depth_samples
            if accum.queue_depth_samples
            else 0.0
        ),
        "queue_depth_max": accum.queue_depth_max,
        "batch_occupancy_mean": (
            accum.occupancy_sum / accum.occupancy_samples
            if accum.occupancy_samples
            else 0.0
        ),
        "batch_occupancy_max": accum.occupancy_max,
        "cache_hit_rate": accum.cache_hits / lookups if lookups else None,
        "cache_lookups": lookups,
        "faults": accum.faults,
        "retries": accum.retries,
        "hedges": accum.hedges,
        "breaker": accum.breaker,
        "approx": accum.approx,
        "recall_requests": accum.recall_requests,
        "recall_met": accum.recall_met,
        "adapt_observations": accum.adapt_observations,
        "adapt_folds": accum.adapt_folds,
        "adapt_explored": accum.adapt_explored,
    }


def dense_windows(telemetry: ServeTelemetry) -> list[WindowAccum]:
    """Every window from 0 through the last observed one, gaps filled."""
    if not telemetry.windows:
        return []
    last = max(telemetry.windows)
    return [
        telemetry.windows.get(i) or WindowAccum(index=i)
        for i in range(last + 1)
    ]


def build_serve_report(
    telemetry: ServeTelemetry,
    stats,
    *,
    config: dict | None = None,
    slos: tuple[SLOSpec, ...] = DEFAULT_SLOS,
) -> dict:
    """Assemble (and schema-validate) one ``repro.obs.serve_report/v1``.

    ``stats`` is the finished run's :class:`~repro.serve.service.ServeStats`;
    ``config`` is an arbitrary JSON-able echo of the load/service knobs
    that produced it.  Everything in the payload derives from virtual
    time, so the same request trace yields a byte-identical report
    whatever the host worker count.
    """
    accums = dense_windows(telemetry)
    latency = stats.latency_percentiles(WINDOW_QUANTILES)
    totals = {
        "requests": stats.total,
        "served": stats.served,
        "degraded": stats.degraded,
        "shed": stats.shed,
        "timeout": stats.timeout,
        "failed": stats.failed,
        "availability": stats.availability,
        "batches": stats.batches,
        "mean_occupancy": stats.mean_occupancy,
        "capacity_rps": stats.capacity_rps,
        "busy_s": stats.busy_s,
        "makespan_s": stats.makespan_s,
        "latency_samples": stats.answered,
        "latency_truncated": stats.latency_truncated,
        **{
            f"latency_p{q:g}_s": latency.get(q)
            for q in WINDOW_QUANTILES
        },
        "faults": dict(stats.faults),
        "retries": stats.retries,
        "hedges": stats.hedges,
        "breaker_trips": stats.breaker_trips,
        "approx_served": stats.approx_served,
        "recall_violations": stats.recall_violations,
        "adapt_observations": stats.adapt_observations,
        "adapt_folds": stats.adapt_folds,
        "adapt_explored": stats.adapt_explored,
    }
    slo_results = evaluate_slos(accums, slos)
    report = {
        "schema": "repro.obs.serve_report/v1",
        "config": dict(config or {}),
        "window_s": telemetry.window_s,
        "windows": [_window_payload(a, telemetry.window_s) for a in accums],
        "totals": totals,
        "slos": slo_results,
        "violations": [r["name"] for r in slo_results if r["violated"]],
    }
    validate_serve_report(report)
    return report


def write_serve_report(report: dict, path) -> Path:
    """Validate and write a serve report JSON; returns the path."""
    validate_serve_report(report)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1) + "\n")
    return path


# --------------------------------------------------------------------------- #
# the text health dashboard
# --------------------------------------------------------------------------- #
def _fmt_ms(value) -> str:
    return "-" if value is None else f"{value * 1e3:.3f}ms"


def render_serve_report(report: dict) -> str:
    """The ``repro-topk serve-report`` dashboard: sparklined windowed
    series plus one verdict line per SLO."""
    from ..bench.ascii_plot import sparkline

    windows = report["windows"]
    totals = report["totals"]
    lines = [
        f"serve report: {totals['requests']} requests over "
        f"{totals['makespan_s']:.3f}s virtual "
        f"({len(windows)} windows x {report['window_s']:g}s)",
        f"  outcomes: served={totals['served']} degraded={totals['degraded']} "
        f"shed={totals['shed']} timeout={totals['timeout']} "
        f"failed={totals['failed']}  "
        f"availability={totals['availability'] * 100:.2f}%",
        "  latency: "
        + "  ".join(
            f"p{q:g}={_fmt_ms(totals[f'latency_p{q:g}_s'])}"
            for q in WINDOW_QUANTILES
        )
        + ("  (histogram-backed)" if totals.get("latency_truncated") else ""),
        f"  throughput: {totals['capacity_rps']:,.0f} req/s capacity, "
        f"{totals['batches']} batches, "
        f"mean occupancy {totals['mean_occupancy']:.1f}",
    ]
    if totals.get("faults"):
        fired = " ".join(
            f"{kind}={count}" for kind, count in sorted(totals["faults"].items())
        )
        lines.append(
            f"  faults: {fired}  retries={totals['retries']} "
            f"hedges={totals['hedges']} breaker_trips={totals['breaker_trips']}"
        )
    if totals.get("approx_served") or totals.get("recall_violations"):
        lines.append(
            f"  quality: approx_served={totals['approx_served']} "
            f"recall_violations={totals['recall_violations']}"
        )
    if totals.get("adapt_observations"):
        lines.append(
            f"  adaptation: observations={totals['adapt_observations']} "
            f"folds={totals['adapt_folds']} explored={totals['adapt_explored']}"
        )

    def series(key) -> list:
        return [w[key] for w in windows]

    def spark_row(label: str, values, fmt) -> str:
        present = [v for v in values if v is not None]
        if not present:
            return f"  {label:<14} (no samples)"
        lo, hi = min(present), max(present)
        return (
            f"  {label:<14} [{sparkline(values)}]  "
            f"min={fmt(lo)} max={fmt(hi)}"
        )

    lines.append("windowed series:")
    lines.append(
        spark_row("p99 latency", series("latency_p99_s"), _fmt_ms)
    )
    lines.append(
        spark_row(
            "availability",
            series("availability"),
            lambda v: f"{v * 100:.1f}%",
        )
    )
    lines.append(
        spark_row("queue depth", series("queue_depth_mean"), lambda v: f"{v:.1f}")
    )
    lines.append(
        spark_row(
            "occupancy", series("batch_occupancy_mean"), lambda v: f"{v:.1f}"
        )
    )
    lines.append(
        spark_row(
            "cache hit rate",
            series("cache_hit_rate"),
            lambda v: f"{v * 100:.0f}%",
        )
    )
    if any(w["faults"] or w["retries"] or w["hedges"] for w in windows):
        lines.append(spark_row("faults", series("faults"), lambda v: f"{v:g}"))
        lines.append(spark_row("retries", series("retries"), lambda v: f"{v:g}"))
    lines.append("SLOs:")
    for slo in report["slos"]:
        verdict = "VIOLATED" if slo["violated"] else "ok"
        threshold = (
            f" within {slo['threshold_s'] * 1e3:g}ms"
            if slo.get("threshold_s") is not None
            else ""
        )
        lines.append(
            f"  [{verdict:>8}] {slo['name']}: sli {slo['sli'] * 100:.2f}% vs "
            f"target {slo['target'] * 100:g}%{threshold}  "
            f"budget consumed {slo['budget_consumed'] * 100:.0f}%  "
            f"max burn {slo['max_burn_rate']:.2f}x"
        )
        if slo["violating_windows"]:
            burn = spark_row(
                "burn rate", slo["burn_rates"], lambda v: f"{v:.2f}x"
            )
            lines.append(f"  {burn.strip()}")
            lines.append(
                f"    violating windows: "
                f"{', '.join(str(i) for i in slo['violating_windows'])}"
            )
    if report["violations"]:
        lines.append(
            f"SLO VIOLATIONS: {', '.join(report['violations'])}"
        )
    else:
        lines.append("all SLOs met")
    return "\n".join(lines)
