"""Merged Trace-Event-Format export of host spans + simulated timelines.

One file, two clock faces: host spans carry wall-clock timestamps (the
engine, the pool workers, retries, timeouts); simulated device events are
re-based so each point's GPU/CPU/PCIe streams start at the wall-clock
moment its host span began (see ``repro.bench.runner.run_point``).  The
result loads in Perfetto / chrome://tracing with:

* a ``host`` process whose threads are the main process and each pool
  worker (``ProgressEvent``-level work becomes visible as lanes);
* one process per traced point, whose threads are the simulated streams
  (``gpu``, ``cpu``, ``pcie_h2d``, ``pcie_d2h``) — the same tracks
  :func:`repro.device.chrome_trace` renders for a single run.

Lane convention: ``"<process label>/<track label>"``.  Process labels map
to ``pid``, full lanes to ``tid``; both get name-metadata events so the
viewer shows readable names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .schema import validate_trace
from .spans import SpanEvent


def _split_lane(lane: str) -> tuple[str, str]:
    process, _, track = lane.partition("/")
    return process or "host", track or "main"


def chrome_trace(events: Iterable[SpanEvent]) -> dict:
    """Build a Trace-Event-Format dict from merged span events.

    Timestamps are normalised so the earliest span starts at 0; lanes are
    assigned stable ``pid``/``tid`` ids in first-seen order, with
    ``process_name``/``thread_name`` metadata carrying the labels.
    """
    events = list(events)
    t0 = min((e.ts_us for e in events), default=0.0)
    pids: dict[str, int] = {}
    tids: dict[str, int] = {}
    out: list[dict] = []
    for event in events:
        process, track = _split_lane(event.lane)
        if process not in pids:
            pids[process] = len(pids)
            out.append(
                {
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        if event.lane not in tids:
            tids[event.lane] = len(tids)
            out.append(
                {
                    "ph": "M",
                    "pid": pids[process],
                    "tid": tids[event.lane],
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        entry = {
            "ph": "X",
            "pid": pids[process],
            "tid": tids[event.lane],
            "name": event.name,
            "cat": event.cat,
            "ts": max(0.0, event.ts_us - t0),
            "dur": max(0.0, event.dur_us),
        }
        if event.args:
            entry["args"] = dict(event.args)
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_trace(events: Iterable[SpanEvent], path) -> Path:
    """Validate and write the merged trace JSON; returns the path."""
    payload = chrome_trace(events)
    validate_trace(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, default=str))
    return path
