"""Cost-model drift tracking: predicted vs simulated time, per point.

The ``auto`` dispatcher is only as good as the analytic predictions of
``repro.perf.costmodel`` (optionally refined by a
:class:`repro.perf.calibration.CalibrationCache`).  This module makes
their quality observable:

* during a sweep with metrics enabled, every measured point's
  ``log2(simulated / predicted)`` residual is recorded into the metrics
  stream (histogram ``costmodel.log2_ratio`` labelled by algorithm) — see
  :func:`record_point_drift`, called by the execution engine;
* after the fact, ``repro-topk drift <sweep.csv>`` rebuilds per-point
  residuals from any sweep CSV and summarises them per algorithm
  (:func:`drift_report`), with a calibrated column when a cache is given
  so the effect of calibration on bias is visible.

A geomean ratio of 1.0 means the model is unbiased for that algorithm; a
widening rmse is drift the `CalibrationCache` should absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


def _predictable_algo(point) -> str | None:
    """The concrete algorithm to predict for a point, or None to skip."""
    from ..perf.costmodel import PREDICTABLE_ALGORITHMS

    algo = point.algo
    detail = getattr(point, "detail", "")
    if algo == "auto" and detail.startswith("dispatch="):
        algo = detail.split("=", 1)[1]
    return algo if algo in PREDICTABLE_ALGORITHMS else None


@dataclass(frozen=True)
class PointDrift:
    """One measured point against its analytic (and calibrated) prediction."""

    algo: str
    distribution: str
    n: int
    k: int
    batch: int
    measured: float
    predicted: float
    #: prediction refined by the calibration cache (== predicted without one)
    calibrated: float

    @property
    def ratio(self) -> float:
        return self.measured / self.predicted

    @property
    def log2_ratio(self) -> float:
        return math.log2(self.ratio)


def point_drift(
    points: Iterable, *, spec=None, calibration=None
) -> list[PointDrift]:
    """Per-point residuals for every measured, predictable point."""
    from ..perf.costmodel import predict_topk_time

    if spec is None:
        from ..device import A100

        spec = A100
    out: list[PointDrift] = []
    for p in points:
        if getattr(p, "time", None) is None or p.status != "ok":
            continue
        algo = _predictable_algo(p)
        if algo is None:
            continue
        predicted = predict_topk_time(algo, n=p.n, k=p.k, batch=p.batch, spec=spec)
        calibrated = predicted
        if calibration is not None:
            calibrated = calibration.refine(
                algo,
                predicted=predicted,
                n=p.n,
                k=p.k,
                batch=p.batch,
                spec_name=spec.name,
            )
        out.append(
            PointDrift(
                algo=algo,
                distribution=p.distribution,
                n=p.n,
                k=p.k,
                batch=p.batch,
                measured=p.time,
                predicted=predicted,
                calibrated=calibrated,
            )
        )
    return out


@dataclass(frozen=True)
class DriftSummary:
    """Residual statistics of one algorithm over a sweep."""

    algo: str
    points: int
    #: geomean of measured/predicted (1.0 = unbiased model)
    geomean_ratio: float
    min_ratio: float
    max_ratio: float
    #: rms of log2(measured/predicted) — spread the bias cannot explain
    rmse_log2: float
    #: geomean of measured/calibrated (how much a cache would fix)
    calibrated_geomean: float


def summarise(drifts: list[PointDrift]) -> list[DriftSummary]:
    """Per-algorithm summary rows, sorted by |log2 geomean| descending."""
    by_algo: dict[str, list[PointDrift]] = {}
    for d in drifts:
        by_algo.setdefault(d.algo, []).append(d)
    rows = []
    for algo, ds in by_algo.items():
        logs = [d.log2_ratio for d in ds]
        cal_logs = [math.log2(d.measured / d.calibrated) for d in ds]
        mean_log = sum(logs) / len(logs)
        rows.append(
            DriftSummary(
                algo=algo,
                points=len(ds),
                geomean_ratio=2.0 ** mean_log,
                min_ratio=2.0 ** min(logs),
                max_ratio=2.0 ** max(logs),
                rmse_log2=math.sqrt(sum(l * l for l in logs) / len(logs)),
                calibrated_geomean=2.0 ** (sum(cal_logs) / len(cal_logs)),
            )
        )
    return sorted(rows, key=lambda r: -abs(math.log2(r.geomean_ratio)))


def drift_report(
    points: Iterable, *, spec=None, calibration=None
) -> list[DriftSummary]:
    """End-to-end: residuals of a sweep's points, summarised per algorithm."""
    return summarise(point_drift(points, spec=spec, calibration=calibration))


def record_point_drift(registry, point, *, spec=None) -> None:
    """Log one finished point's residual into the metrics stream.

    Called by the execution engine for every ``ok`` point when metrics
    are enabled; emits histogram ``costmodel.log2_ratio{algo=...}`` and
    counter ``costmodel.points{algo=...}``.
    """
    if getattr(point, "time", None) is None or point.status != "ok":
        return
    algo = _predictable_algo(point)
    if algo is None:
        return
    from ..perf.costmodel import predict_topk_time

    if spec is None:
        from ..device import A100

        spec = A100
    predicted = predict_topk_time(algo, n=point.n, k=point.k, batch=point.batch, spec=spec)
    if predicted <= 0 or point.time <= 0:
        return
    registry.counter("costmodel.points", algo=algo).inc()
    registry.histogram("costmodel.log2_ratio", algo=algo).observe(
        math.log2(point.time / predicted)
    )
