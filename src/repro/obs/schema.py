"""Schemas for the telemetry artifacts, with a dependency-free validator.

``manifest.json`` and ``metrics.json`` are consumed by tooling (CI, the
``repro-topk inspect`` command, downstream analysis), so their layout is
pinned here and checked on every write.  The validator implements the
small JSON-Schema subset the artifacts need — ``type``, ``required``,
``properties``, ``items``, ``enum``, ``const`` — rather than pulling in a
``jsonschema`` dependency the environment may not have.  A ``type`` may
be a single name or a list of names (a union — how nullable fields like
the cluster snapshot's per-cell latencies are expressed).
"""

from __future__ import annotations

from typing import Any

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """A payload does not match its schema; ``errors`` lists every miss."""

    def __init__(self, errors: list[str]):
        self.errors = errors
        super().__init__("; ".join(errors))


def _type_ok(value: Any, expected: str) -> bool:
    if not isinstance(value, _TYPES[expected]):
        return False
    if expected in ("number", "integer") and isinstance(value, bool):
        return False
    return True


def _check(value: Any, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        # a list of type names is a union (e.g. ["number", "null"] for
        # nullable fields), matching JSON Schema's semantics
        options = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, option) for option in options):
            label = "|".join(options)
            errors.append(f"{path}: expected {label}, got {type(value).__name__}")
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                _check(value[name], sub, f"{path}.{name}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{i}]", errors)


def validate(payload: Any, schema: dict) -> None:
    """Raise :class:`SchemaError` (listing every violation) on mismatch."""
    errors: list[str] = []
    _check(payload, schema, "$", errors)
    if errors:
        raise SchemaError(errors)


_LABELLED_VALUE = {
    "type": "object",
    "required": ["name", "labels", "value"],
    "properties": {
        "name": {"type": "string"},
        "labels": {"type": "object"},
        "value": {"type": "number"},
    },
}

METRICS_SCHEMA = {
    "type": "object",
    "required": ["schema", "counters", "gauges", "histograms"],
    "properties": {
        "schema": {"const": "repro.obs.metrics/v1"},
        "counters": {"type": "array", "items": _LABELLED_VALUE},
        "gauges": {"type": "array", "items": _LABELLED_VALUE},
        "histograms": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "labels", "count", "sum", "buckets"],
                "properties": {
                    "name": {"type": "string"},
                    "labels": {"type": "object"},
                    "count": {"type": "integer"},
                    "sum": {"type": "number"},
                    "min": {"type": "number"},
                    "max": {"type": "number"},
                    "buckets": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["le", "count"],
                            "properties": {"count": {"type": "integer"}},
                        },
                    },
                },
            },
        },
    },
}

MANIFEST_SCHEMA = {
    "type": "object",
    "required": [
        "schema",
        "command",
        "config",
        "seed",
        "grid",
        "status",
        "wall_time_s",
        "versions",
        "device_counters",
    ],
    "properties": {
        "schema": {"const": "repro.obs.manifest/v1"},
        "command": {"type": "string"},
        "config": {"type": "object"},
        "seed": {"type": "integer"},
        "grid": {
            "type": "object",
            "required": ["total_points"],
            "properties": {"total_points": {"type": "integer"}},
        },
        "status": {"type": "object"},
        "wall_time_s": {"type": "number"},
        "versions": {
            "type": "object",
            "required": ["repro", "python", "numpy"],
            "properties": {
                "repro": {"type": "string"},
                "python": {"type": "string"},
                "numpy": {"type": "string"},
            },
        },
        "device_counters": {
            "type": "object",
            "required": ["kernel_launches", "bytes_read", "bytes_written", "flops"],
            "properties": {
                "kernel_launches": {"type": "integer"},
                "bytes_read": {"type": "number"},
                "bytes_written": {"type": "number"},
                "flops": {"type": "number"},
            },
        },
        "artifacts": {"type": "object"},
    },
}

#: minimal Trace-Event-Format contract: what Perfetto/chrome://tracing
#: need from every duration ("X") and metadata ("M") event we emit
TRACE_EVENT_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"enum": ["X", "M", "I"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": {"type": "string"},
                },
            },
        }
    },
}


#: declarative SLO spec files loaded by ``serve-bench --slo``
SLO_SPEC_SCHEMA = {
    "type": "object",
    "required": ["schema", "slos"],
    "properties": {
        "schema": {"const": "repro.obs.slo/v1"},
        "slos": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "kind", "target"],
                "properties": {
                    "name": {"type": "string"},
                    "kind": {"enum": ["availability", "latency", "recall"]},
                    "target": {"type": "number"},
                    "threshold_s": {"type": "number"},
                },
            },
        },
    },
}

#: one window of the serve report's time series.  The latency quantiles
#: and cache hit rate are required but deliberately untyped: they are
#: null for windows with no samples/lookups
_SERVE_WINDOW_SCHEMA = {
    "type": "object",
    "required": [
        "index",
        "start_s",
        "end_s",
        "requests",
        "served",
        "degraded",
        "shed",
        "timeout",
        "failed",
        "availability",
        "latency_p50_s",
        "latency_p95_s",
        "latency_p99_s",
        "queue_depth_mean",
        "queue_depth_max",
        "batch_occupancy_mean",
        "batch_occupancy_max",
        "cache_hit_rate",
        "cache_lookups",
        "faults",
        "retries",
        "hedges",
        "breaker",
    ],
    "properties": {
        "index": {"type": "integer"},
        "start_s": {"type": "number"},
        "end_s": {"type": "number"},
        "requests": {"type": "integer"},
        "served": {"type": "integer"},
        "degraded": {"type": "integer"},
        "shed": {"type": "integer"},
        "timeout": {"type": "integer"},
        "failed": {"type": "integer"},
        "availability": {"type": "number"},
        "queue_depth_mean": {"type": "number"},
        "queue_depth_max": {"type": "number"},
        "batch_occupancy_mean": {"type": "number"},
        "batch_occupancy_max": {"type": "number"},
        "cache_lookups": {"type": "integer"},
        "faults": {"type": "integer"},
        "retries": {"type": "integer"},
        "hedges": {"type": "integer"},
        "breaker": {"type": "integer"},
        "approx": {"type": "integer"},
        "recall_requests": {"type": "integer"},
        "recall_met": {"type": "integer"},
        "adapt_observations": {"type": "integer"},
        "adapt_folds": {"type": "integer"},
        "adapt_explored": {"type": "integer"},
    },
}

SERVE_REPORT_SCHEMA = {
    "type": "object",
    "required": [
        "schema",
        "config",
        "window_s",
        "windows",
        "totals",
        "slos",
        "violations",
    ],
    "properties": {
        "schema": {"const": "repro.obs.serve_report/v1"},
        "config": {"type": "object"},
        "window_s": {"type": "number"},
        "windows": {"type": "array", "items": _SERVE_WINDOW_SCHEMA},
        "totals": {
            "type": "object",
            "required": [
                "requests",
                "served",
                "degraded",
                "shed",
                "timeout",
                "failed",
                "availability",
                "batches",
                "mean_occupancy",
                "capacity_rps",
                "makespan_s",
                "latency_p50_s",
                "latency_p95_s",
                "latency_p99_s",
                "latency_truncated",
            ],
            "properties": {
                "requests": {"type": "integer"},
                "served": {"type": "integer"},
                "degraded": {"type": "integer"},
                "shed": {"type": "integer"},
                "timeout": {"type": "integer"},
                "failed": {"type": "integer"},
                "availability": {"type": "number"},
                "batches": {"type": "integer"},
                "mean_occupancy": {"type": "number"},
                "capacity_rps": {"type": "number"},
                "makespan_s": {"type": "number"},
                "latency_truncated": {"type": "boolean"},
                "faults": {"type": "object"},
                "approx_served": {"type": "integer"},
                "recall_violations": {"type": "integer"},
                "adapt_observations": {"type": "integer"},
                "adapt_folds": {"type": "integer"},
                "adapt_explored": {"type": "integer"},
            },
        },
        "slos": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "name",
                    "kind",
                    "target",
                    "sli",
                    "violated",
                    "budget_consumed",
                    "max_burn_rate",
                    "burn_rates",
                    "violating_windows",
                ],
                "properties": {
                    "name": {"type": "string"},
                    "kind": {"enum": ["availability", "latency", "recall"]},
                    "target": {"type": "number"},
                    "sli": {"type": "number"},
                    "violated": {"type": "boolean"},
                    "budget_consumed": {"type": "number"},
                    "max_burn_rate": {"type": "number"},
                    "burn_rates": {
                        "type": "array",
                        "items": {"type": "number"},
                    },
                    "violating_windows": {
                        "type": "array",
                        "items": {"type": "integer"},
                    },
                },
            },
        },
        "violations": {"type": "array", "items": {"type": "string"}},
    },
}


def validate_metrics(payload: Any) -> None:
    validate(payload, METRICS_SCHEMA)


def validate_slo_spec(payload: Any) -> None:
    validate(payload, SLO_SPEC_SCHEMA)


def validate_serve_report(payload: Any) -> None:
    validate(payload, SERVE_REPORT_SCHEMA)


def validate_manifest(payload: Any) -> None:
    validate(payload, MANIFEST_SCHEMA)


def validate_trace(payload: Any) -> None:
    """Check the Trace-Event contract, including X-event timing fields."""
    validate(payload, TRACE_EVENT_SCHEMA)
    errors: list[str] = []
    for i, event in enumerate(payload["traceEvents"]):
        if event["ph"] != "X":
            continue
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                errors.append(f"$.traceEvents[{i}]: X event missing numeric {key!r}")
            elif event[key] < 0:
                errors.append(f"$.traceEvents[{i}]: negative {key!r}")
    if errors:
        raise SchemaError(errors)
