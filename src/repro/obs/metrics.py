"""Metrics registry: labelled counters, gauges and histograms.

Algorithms count behavioural events (AIR buffer writes/skips, early
stops, queue flushes), the runner tallies point statuses, the execution
engine records dispatch and drift — all against one process-global
registry installed by :func:`metrics_session`.  Pool workers use a
private registry (see :func:`repro.exec.worker.execute_chunk_telemetry`)
which the engine merges back, so ``workers=1`` and ``workers=N`` produce
identical aggregates.

Everything is a no-op while no registry is installed: the algorithm hot
paths guard on :func:`metrics_enabled`, so a plain sweep pays nothing
(pinned by tests/test_obs.py).

The JSON layout written by :meth:`MetricsRegistry.to_payload` is
validated by :func:`repro.obs.schema.validate_metrics`; metric names are
documented in docs/observability.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

#: histogram bucket upper bounds used when none are given; chosen for the
#: cost-model drift residuals (log2 of measured/predicted), symmetric
#: around 0 ("model exact")
DEFAULT_BOUNDS = (-8.0, -4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0, 8.0)

#: (metric name, sorted (label, value) pairs) — the registry key
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing total."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-observed value (merging keeps the merged-in value)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bound histogram with count/sum/min/max summary."""

    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must ascend, got {self.bounds}")
        if not self.counts:
            # one bucket per bound (value <= bound) plus the overflow bucket
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Holds every metric of one run, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels) -> Counter:
        return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(
        self, name: str, *, bounds: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = Histogram(bounds=tuple(bounds) if bounds else DEFAULT_BOUNDS)
            self._histograms[key] = hist
        return hist

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------ #
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold a worker's registry into this one.

        Counters and histograms add; gauges keep the merged-in value
        (workers report point-in-time facts the parent did not see).
        """
        for key, counter in other._counters.items():
            self._counters.setdefault(key, Counter()).value += counter.value
        for key, gauge in other._gauges.items():
            self._gauges[key] = Gauge(value=gauge.value)
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = Histogram(
                    bounds=hist.bounds,
                    counts=list(hist.counts),
                    count=hist.count,
                    sum=hist.sum,
                    min=hist.min,
                    max=hist.max,
                )
                continue
            if mine.bounds != hist.bounds:
                raise ValueError(
                    f"histogram {key[0]!r} bounds differ across workers: "
                    f"{mine.bounds} vs {hist.bounds}"
                )
            mine.counts = [a + b for a, b in zip(mine.counts, hist.counts)]
            mine.count += hist.count
            mine.sum += hist.sum
            mine.min = min(mine.min, hist.min)
            mine.max = max(mine.max, hist.max)

    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """JSON-ready dict (schema: ``repro.obs.metrics/v1``)."""

        def labels(key: MetricKey) -> dict:
            return dict(key[1])

        return {
            "schema": "repro.obs.metrics/v1",
            "counters": [
                {"name": key[0], "labels": labels(key), "value": c.value}
                for key, c in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": key[0], "labels": labels(key), "value": g.value}
                for key, g in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": key[0],
                    "labels": labels(key),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "buckets": [
                        {"le": bound, "count": n}
                        for bound, n in zip(list(h.bounds) + ["+inf"], h.counts)
                    ],
                }
                for key, h in sorted(self._histograms.items())
            ],
        }

    def write(self, path) -> Path:
        """Dump the registry as ``metrics.json`` (validated on write)."""
        import json

        from .schema import validate_metrics

        payload = self.to_payload()
        validate_metrics(payload)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1) + "\n")
        return path


# -------------------------------------------------------------------------- #
# process-global active registry
# -------------------------------------------------------------------------- #
_ACTIVE: MetricsRegistry | None = None


def metrics_enabled() -> bool:
    """True when a registry is installed (hot paths guard on this)."""
    return _ACTIVE is not None


def get_metrics() -> MetricsRegistry | None:
    """The installed registry, or None when metrics are disabled."""
    return _ACTIVE


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the process-global registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> None:
    global _ACTIVE
    _ACTIVE = None


def count(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a counter on the active registry; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name, **labels).inc(amount)


@contextmanager
def metrics_session():
    """Install a fresh registry for the ``with`` body; yields it."""
    global _ACTIVE
    previous = _ACTIVE
    registry = enable_metrics(MetricsRegistry())
    try:
        yield registry
    finally:
        _ACTIVE = previous
