"""Run manifests: provenance for every CSV a sweep or suite writes.

The CSVs under ``benchmarks/out/`` were previously unexplainable after
the fact — no record of the grid, the seed, the package version or the
machine behaviour that produced them.  ``manifest.json``, written next to
each sweep/suite CSV, captures:

* the full sweep **config** (algorithms, distributions, Ns, Ks, batches,
  cap, workers, timeout) and the base **seed**;
* the **grid shape** and per-status row tallies (ok / unsupported /
  error / timeout), so SOTA denominators stay auditable from the
  manifest alone;
* **wall time** and package + git **versions**;
* the sweep-wide aggregate :class:`repro.device.DeviceCounters` —
  simulated kernel launches, memory traffic, FLOPs, PCIe transfers and
  syncs summed over every measured point.

Schema: ``repro.obs.manifest/v1`` (:data:`repro.obs.schema.MANIFEST_SCHEMA`).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Iterable

from .schema import validate_manifest


def _git_revision() -> str | None:
    """Current git commit, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def versions() -> dict:
    """Package/interpreter versions identifying what produced a run."""
    import numpy

    from .. import __version__

    info = {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }
    rev = _git_revision()
    if rev is not None:
        info["git"] = rev
    return info


def counters_payload(counters) -> dict:
    """JSON-ready dump of a :class:`repro.device.DeviceCounters`."""
    return {
        "kernel_launches": int(counters.kernel_launches),
        "bytes_read": float(counters.bytes_read),
        "bytes_written": float(counters.bytes_written),
        "flops": float(counters.flops),
        "h2d_transfers": int(counters.h2d_transfers),
        "d2h_transfers": int(counters.d2h_transfers),
        "h2d_bytes": float(counters.h2d_bytes),
        "d2h_bytes": float(counters.d2h_bytes),
        "syncs": int(counters.syncs),
        "peak_workspace_bytes": float(counters.peak_workspace_bytes),
    }


def build_manifest(
    *,
    command: str,
    config: dict,
    seed: int,
    points: Iterable,
    wall_time_s: float,
    artifacts: dict | None = None,
) -> dict:
    """Assemble a schema-valid manifest for one sweep/suite run.

    ``points`` is any iterable of :class:`repro.bench.BenchPoint`-likes;
    the grid shape, status tallies and aggregate device counters are
    derived from it.  ``artifacts`` maps artifact kinds to the file names
    written alongside (csv, metrics, trace).
    """
    from ..device.counters import aggregate_counters

    points = list(points)
    status: dict[str, int] = {}
    for p in points:
        status[p.status] = status.get(p.status, 0) + 1

    def distinct(attr: str) -> list:
        seen: dict = {}
        for p in points:
            seen.setdefault(getattr(p, attr), None)
        return list(seen)

    manifest = {
        "schema": "repro.obs.manifest/v1",
        "created_unix": time.time(),
        "command": command,
        "argv": sys.argv[1:],
        "config": config,
        "seed": int(seed),
        "grid": {
            "total_points": len(points),
            "algos": distinct("algo"),
            "distributions": distinct("distribution"),
            "ns": distinct("n"),
            "ks": distinct("k"),
            "batches": distinct("batch"),
        },
        "status": status,
        "wall_time_s": float(wall_time_s),
        "versions": versions(),
        "device_counters": counters_payload(aggregate_counters(points)),
    }
    if artifacts:
        manifest["artifacts"] = artifacts
    return manifest


def write_manifest(manifest: dict, path) -> Path:
    """Validate and write ``manifest.json``; returns the path."""
    validate_manifest(manifest)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=1, default=str) + "\n")
    return path
