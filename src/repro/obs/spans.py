"""Span tracer: wall-clock instrumentation of the host side of a run.

The simulated device already records *simulated* time (its
:class:`repro.device.Timeline`); this module records *real* time — what
the engine, the workers and the CLI actually did, when, and for how long.
Both clock domains meet in :mod:`repro.obs.export`, which renders spans
and per-point device timelines into one Trace-Event-Format file: a
parallel sweep opens in Perfetto with one lane per pool worker alongside
the simulated GPU/CPU/PCIe streams of each point.

Concurrency model: **per-worker buffers, merged by the engine.**  There
is one process-global active tracer (installed by :func:`trace_session`);
a pool worker never writes to the parent's tracer — it opens a private
:func:`local_session`, runs its chunk, and ships the buffered events back
with the chunk result (see :mod:`repro.exec.worker`), where the engine
extends the parent buffer.  Timestamps come from ``time.perf_counter``,
which on Linux is a system-wide monotonic clock, so parent and worker
spans share a base.

Zero overhead when disabled: :func:`span` returns one shared no-op
handle when no tracer is installed — no allocation, no clock read — and
the algorithm hot paths additionally guard on :func:`tracing_enabled`
(pinned by tests/test_obs.py).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: lane of host spans recorded outside any worker ("<process>/<track>")
DEFAULT_LANE = "host/main"


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, in microseconds on the shared wall clock.

    ``lane`` is ``"<process label>/<track label>"`` — the exporter maps
    the process label to a Trace-Event ``pid`` and the full lane to a
    ``tid``, so lanes group naturally in Perfetto (all host workers under
    one "host" process, each point's simulated streams under its own).
    """

    name: str
    cat: str
    ts_us: float
    dur_us: float
    lane: str
    args: dict = field(default_factory=dict)


class _NullSpan:
    """Shared do-nothing span handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **kwargs) -> None:
        """Discard args (the live handle attaches them to the event)."""


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "name", "cat", "lane", "args", "start_us")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, lane: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.lane = lane
        self.args = args
        self.start_us = 0.0

    def __enter__(self) -> "_LiveSpan":
        self.start_us = self._tracer.now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer.emit(
            self.name,
            cat=self.cat,
            lane=self.lane,
            ts_us=self.start_us,
            dur_us=self._tracer.now_us() - self.start_us,
            **self.args,
        )
        return False

    def set(self, **kwargs) -> None:
        """Attach result args to the span before it closes."""
        self.args.update(kwargs)


class SpanTracer:
    """Buffer of :class:`SpanEvent` with a context-manager recording API."""

    def __init__(self, *, default_lane: str = DEFAULT_LANE) -> None:
        self.default_lane = default_lane
        self._events: list[SpanEvent] = []

    # ------------------------------------------------------------------ #
    def now_us(self) -> float:
        """Current wall time in microseconds (shared monotonic clock)."""
        return time.perf_counter() * 1e6

    def span(self, name: str, *, cat: str = "host", lane: str | None = None, **args):
        """Open a span; attach late args via the yielded handle's ``set``."""
        return _LiveSpan(self, name, cat, lane or self.default_lane, args)

    def emit(
        self,
        name: str,
        *,
        cat: str,
        lane: str,
        ts_us: float,
        dur_us: float,
        **args,
    ) -> SpanEvent:
        """Record an already-timed span (e.g. re-based simulated events)."""
        event = SpanEvent(
            name=name, cat=cat, ts_us=ts_us, dur_us=dur_us, lane=lane, args=args
        )
        self._events.append(event)
        return event

    def extend(self, events: Iterable[SpanEvent]) -> None:
        """Merge a worker's buffered events into this tracer."""
        self._events.extend(events)

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> tuple[SpanEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SpanEvent]:
        return iter(self._events)

    def lanes(self) -> list[str]:
        """Distinct lanes, in first-seen order."""
        seen: dict[str, None] = {}
        for e in self._events:
            seen.setdefault(e.lane, None)
        return list(seen)


# -------------------------------------------------------------------------- #
# process-global active tracer
# -------------------------------------------------------------------------- #
_ACTIVE: SpanTracer | None = None


def tracing_enabled() -> bool:
    """True when a tracer is installed (hot paths guard on this)."""
    return _ACTIVE is not None


def get_tracer() -> SpanTracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _ACTIVE


def enable_tracing(tracer: SpanTracer | None = None) -> SpanTracer:
    """Install (and return) the process-global tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else SpanTracer()
    return _ACTIVE


def disable_tracing() -> None:
    """Remove the global tracer; :func:`span` reverts to the no-op handle."""
    global _ACTIVE
    _ACTIVE = None


def span(name: str, *, cat: str = "host", lane: str | None = None, **args):
    """Record a span on the active tracer, or do nothing when disabled.

    Usage::

        with obs.span("execute", cat="exec", algo="air_topk") as s:
            ...
            s.set(status="ok")
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat=cat, lane=lane, **args)


@contextmanager
def trace_session(*, default_lane: str = DEFAULT_LANE):
    """Install a fresh tracer for the ``with`` body, restoring the previous
    one (usually None) afterwards.  Yields the tracer."""
    global _ACTIVE
    previous = _ACTIVE
    tracer = enable_tracing(SpanTracer(default_lane=default_lane))
    try:
        yield tracer
    finally:
        _ACTIVE = previous
