"""LRU result and dispatch-plan caches for the serving layer.

Two things are worth remembering between requests:

* **Dispatch plans** — the ``auto`` dispatcher's cost-model ranking is a
  pure function of (n, k, batch, GPU spec), so the ranking computed for
  one micro-batch can be reused for every later batch of the same shape.
  Plans are keyed on the problem shape with the batch size bucketed to a
  power of two (the cost model's batch sensitivity is coarse, and
  bucketing keeps the table small under jittery occupancy).
* **Results** — identical payloads recur in real serving traffic (hot
  queries, retries).  Served (values, indices) are keyed on a
  content fingerprint of the payload plus (n, k, dtype, largest) — the
  distribution hints that change the answer — plus the request's
  *quality class*: an approximate-tier answer and the exact answer for
  the same payload are different results and must never alias (an exact
  caller getting a cached approximate answer would be a silent
  correctness bug).  Entries carry a ``meta`` dict (``exact``,
  ``recall_bound``, ``algo``) so a cache hit reproduces the original
  outcome's quality annotations.

Both sit behind :class:`ServeCache`, a pair of bounded
:class:`LRUCache` maps with hit/miss counters the service exports as
``serve.cache`` metrics.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np


def fingerprint(data: np.ndarray) -> str:
    """Stable content hash of an array's bytes (blake2b, 16-byte digest)."""
    arr = np.ascontiguousarray(data)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency and counts hits/misses; ``put`` evicts the
    stalest entry once ``capacity`` is exceeded.  ``capacity <= 0``
    disables the cache (every get is a miss, puts are dropped).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]
        self.misses += 1
        return default

    def put(self, key, value) -> None:
        if self.capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1


@dataclass(frozen=True)
class DispatchPlan:
    """A cached ``auto`` decision for one problem-shape bucket."""

    #: concrete algorithm the cost model picked
    algo: str
    #: full (algo, predicted seconds) ranking behind the pick
    ranking: tuple[tuple[str, float], ...] = field(default_factory=tuple)
    #: algorithm tuning the plan runs with (approximate configs)
    params: tuple[tuple[str, object], ...] = ()
    #: analytic E[recall] of the plan (1.0 for exact plans)
    predicted_recall: float = 1.0
    #: whether the planned algorithm guarantees the exact top-k
    exact: bool = True
    #: the recall target the plan was made for (None = unconstrained)
    min_recall: float | None = None

    @property
    def predicted_time(self) -> float | None:
        return self.ranking[0][1] if self.ranking else None


def _batch_bucket(batch: int) -> int:
    """Round a batch size up to a power of two (plan-cache key bucket)."""
    return 1 << max(0, int(batch) - 1).bit_length()


class ServeCache:
    """Result + dispatch-plan LRU caches shared by a :class:`TopKService`."""

    def __init__(self, *, result_capacity: int = 256, plan_capacity: int = 64):
        self.results = LRUCache(result_capacity)
        self.plans = LRUCache(plan_capacity)
        #: optional :class:`repro.perf.adaptive.CorrectionStore`; when set,
        #: plan keys carry the regime's correction epoch, so a folded-in
        #: correction invalidates exactly the plans whose cost-model
        #: inputs changed — untouched regimes keep hitting (the PR-10
        #: staleness fix, pinned by tests/test_adaptive.py)
        self.corrections = None
        #: entries that failed their integrity checksum on read (each one
        #: was evicted and re-fetched — see :meth:`get_result`)
        self.corruptions = 0
        #: optional ``on_event(event)`` callback fired per lookup with
        #: "result_hit" / "result_miss" / "result_corrupt" / "plan_hit" /
        #: "plan_miss" — the service routes these into its ``serve.cache``
        #: metrics and the windowed hit-rate series
        self.on_event = None

    def _fire(self, event: str) -> None:
        if self.on_event is not None:
            self.on_event(event)

    @property
    def hit_rate(self) -> float | None:
        """Result-cache hit fraction so far, or None before any lookup."""
        lookups = self.results.hits + self.results.misses
        return self.results.hits / lookups if lookups else None

    # -- dispatch plans ------------------------------------------------- #
    def plan_key(
        self,
        *,
        n: int,
        k: int,
        batch: int,
        spec_name: str,
        largest: bool,
        min_recall: float | None = None,
        dtype: str = "float32",
    ) -> tuple:
        epoch = 0
        if self.corrections is not None:
            epoch = self.corrections.regime_epoch(
                n=n, k=k, batch=batch, spec_name=spec_name, dtype=dtype
            )
        return (
            n, k, _batch_bucket(batch), spec_name, largest, min_recall,
            dtype, epoch,
        )

    def get_plan(self, **key_fields) -> DispatchPlan | None:
        return self.plans.get(self.plan_key(**key_fields))

    def put_plan(self, plan: DispatchPlan, **key_fields) -> None:
        self.plans.put(self.plan_key(**key_fields), plan)

    def make_plan(
        self,
        *,
        n: int,
        k: int,
        batch: int,
        spec,
        largest: bool,
        min_recall: float | None = None,
        calibration=None,
        dtype: str = "float32",
    ) -> tuple[DispatchPlan, bool]:
        """Fetch or compute the plan for a shape; returns (plan, was_hit).

        Without ``min_recall`` this goes through
        :func:`repro.perf.costmodel.rank_algorithms` — the same exact-only
        ranking the ``auto`` algorithm would derive.  With a recall
        target the quality-aware planner
        (:func:`repro.approx.choose_plan`) picks the cheapest plan —
        exact or approximate — clearing the target with its safety
        margin.  Either way the batch size is bucketed so nearby
        occupancies share one entry.
        """
        fields = dict(
            n=n,
            k=k,
            batch=batch,
            spec_name=spec.name,
            largest=largest,
            min_recall=min_recall,
            dtype=dtype,
        )
        plan = self.get_plan(**fields)
        if plan is not None:
            self._fire("plan_hit")
            return plan, True
        self._fire("plan_miss")
        if min_recall is not None:
            from ..approx import choose_plan

            chosen = choose_plan(
                n=n,
                k=k,
                batch=_batch_bucket(batch),
                spec=spec,
                min_recall=min_recall,
                calibration=calibration,
            )
            plan = DispatchPlan(
                algo=chosen.algo,
                ranking=((chosen.algo, chosen.predicted_time),),
                params=tuple(sorted(chosen.params.items())),
                predicted_recall=chosen.predicted_recall,
                exact=chosen.exact,
                min_recall=min_recall,
            )
        else:
            from ..perf.costmodel import rank_algorithms

            ranking = rank_algorithms(
                n=n,
                k=k,
                batch=_batch_bucket(batch),
                spec=spec,
                calibration=calibration,
            )
            if self.corrections is not None:
                from ..perf.adaptive import corrected_ranking

                ranking = corrected_ranking(
                    ranking,
                    self.corrections,
                    n=n,
                    k=k,
                    batch=_batch_bucket(batch),
                    spec_name=spec.name,
                    dtype=dtype,
                )
            plan = DispatchPlan(
                algo=ranking[0].algo,
                ranking=tuple((p.algo, p.time) for p in ranking),
            )
        self.put_plan(plan, **fields)
        return plan, False

    # -- results -------------------------------------------------------- #
    def result_key(
        self,
        data: np.ndarray,
        k: int,
        largest: bool,
        quality: float | None = None,
    ) -> tuple:
        """Cache key of one (payload, k, largest, quality-class) result.

        ``quality`` is the request's quantised recall-target class
        (:func:`repro.serve.batcher.quality_class`); None for exact
        traffic.  Keeping it in the key is what guarantees an exact
        request can never be served a cached approximate answer for the
        same payload, and vice versa.
        """
        return (
            fingerprint(data),
            int(data.shape[-1]),
            int(k),
            bool(largest),
            quality,
        )

    @staticmethod
    def _checksum(values: np.ndarray, indices: np.ndarray) -> str:
        digest = hashlib.blake2b(digest_size=8)
        digest.update(np.ascontiguousarray(values).tobytes())
        digest.update(np.ascontiguousarray(indices).tobytes())
        return digest.hexdigest()

    def get_result(
        self,
        data: np.ndarray,
        k: int,
        largest: bool,
        quality: float | None = None,
    ):
        """The cached ``(values, indices, meta)``, or None on miss *or*
        when the stored entry fails its integrity checksum.

        ``meta`` reproduces the quality annotations of the originally
        served outcome (``exact``, ``recall_bound``, ``algo``).  A
        corrupt entry (bit-rot, or an injected ``cache_corruption`` fault
        — see :meth:`corrupt_result`) is counted, evicted (the *repair*
        half of the circuit-breaker policy) and reported as a miss, never
        served.
        """
        key = self.result_key(data, k, largest, quality)
        entry = self.results.get(key)
        if entry is None:
            self._fire("result_miss")
            return None
        values, indices, checksum, meta = entry
        if self._checksum(values, indices) != checksum:
            self.corruptions += 1
            self.results._data.pop(key, None)  # repair: drop the bad entry
            self._fire("result_corrupt")
            return None
        self._fire("result_hit")
        return values, indices, meta

    def put_result(
        self,
        data: np.ndarray,
        k: int,
        largest: bool,
        values: np.ndarray,
        indices: np.ndarray,
        quality: float | None = None,
        meta: dict | None = None,
    ) -> None:
        values = np.array(values, copy=True)
        indices = np.array(indices, copy=True)
        self.results.put(
            self.result_key(data, k, largest, quality),
            (values, indices, self._checksum(values, indices), dict(meta or {})),
        )

    def corrupt_result(
        self,
        data: np.ndarray,
        k: int,
        largest: bool,
        quality: float | None = None,
    ) -> bool:
        """Flip one byte of the cached values for this key (the
        ``cache_corruption`` fault seam); returns True when an entry was
        there to corrupt.  The stored checksum is left intact, so the
        next :meth:`get_result` detects and repairs the damage."""
        key = self.result_key(data, k, largest, quality)
        entry = self.results._data.get(key)
        if entry is None:
            return False
        values, indices, checksum, meta = entry
        corrupted = np.array(values, copy=True)
        raw = corrupted.view(np.uint8).reshape(-1)
        raw[0] ^= 0xFF
        self.results._data[key] = (corrupted, indices, checksum, meta)
        return True

    def stats(self) -> dict[str, int]:
        return {
            "result_hits": self.results.hits,
            "result_misses": self.results.misses,
            "result_evictions": self.results.evictions,
            "result_corruptions": self.corruptions,
            "plan_hits": self.plans.hits,
            "plan_misses": self.plans.misses,
            "plan_evictions": self.plans.evictions,
        }
