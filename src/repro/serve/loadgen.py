"""Closed-loop load generator and latency report for serve-bench.

Builds a deterministic virtual-time request trace (Poisson or uniform
arrivals), drives a :class:`TopKService` over it, runs the sequential
per-request baseline the paper's batched regime is measured against, and
condenses everything into a :class:`ServeBenchReport` — the p50/p95/p99
latency table and served/shed/timeout tallies that
``repro-topk serve-bench`` prints.

Payloads are drawn from a bounded pool (``LoadSpec.payload_pool``): real
serving traffic repeats hot queries, and a finite pool is what gives the
LRU result cache something to do.  The pool is materialised as distinct
sliding windows over one generated base buffer, so memory stays
O(n + pool) however large the pool is; shrink ``payload_pool`` to raise
the cache-hit rate, grow it toward the request count to make payloads
effectively unique.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bench.report import REPORT_QUANTILES
from ..datagen import generate
from .request import Request
from .service import ServeConfig, ServeStats, TopKService

#: arrival process names accepted by :func:`build_requests`
ARRIVALS = ("poisson", "uniform")


def poisson_arrivals(qps: float, duration_s: float, *, seed: int = 0) -> np.ndarray:
    """Virtual arrival times of a Poisson process at rate ``qps``.

    Gaps are i.i.d. exponential with mean ``1/qps``; the trace covers
    ``[0, duration_s)``.
    """
    if qps <= 0 or duration_s <= 0:
        raise ValueError(f"qps and duration must be positive, got {qps}, {duration_s}")
    rng = np.random.default_rng(seed)
    # draw in chunks until the horizon is passed
    times: list[np.ndarray] = []
    total = 0.0
    while total < duration_s:
        gaps = rng.exponential(1.0 / qps, size=max(16, int(qps * duration_s)))
        chunk = total + np.cumsum(gaps)
        times.append(chunk)
        total = float(chunk[-1])
    arrivals = np.concatenate(times)
    return arrivals[arrivals < duration_s]


def uniform_arrivals(qps: float, duration_s: float) -> np.ndarray:
    """Evenly spaced arrivals at rate ``qps`` over ``[0, duration_s)``."""
    if qps <= 0 or duration_s <= 0:
        raise ValueError(f"qps and duration must be positive, got {qps}, {duration_s}")
    count = int(round(qps * duration_s))
    return np.arange(count) / qps


@dataclass
class LoadSpec:
    """One serve-bench workload."""

    qps: float = 200.0
    duration_s: float = 2.0
    n: int = 1 << 16
    k: int = 64
    largest: bool = False
    distribution: str = "uniform"
    #: "poisson" | "uniform"
    arrival: str = "poisson"
    #: distinct payloads the trace draws from (repeats feed the cache)
    payload_pool: int = 4096
    #: per-request latency SLO; None disables timeouts
    deadline_s: float | None = None
    #: recall target attached (as ``Request.slo``) to a fraction of the
    #: trace — the mixed exact/approx load of quality-aware serving.
    #: ``min_recall=None`` or ``approx_fraction=0`` keeps the trace
    #: byte-identical to a pre-quality build
    min_recall: float | None = None
    approx_fraction: float = 0.0
    seed: int = 0


def build_requests(spec: LoadSpec) -> list[Request]:
    """Materialise the virtual-time request trace of a :class:`LoadSpec`."""
    if spec.arrival not in ARRIVALS:
        raise ValueError(f"arrival must be one of {ARRIVALS}, got {spec.arrival!r}")
    if spec.payload_pool < 1:
        raise ValueError(f"payload_pool must be >= 1, got {spec.payload_pool}")
    if not 1 <= spec.k <= spec.n:
        raise ValueError(f"k must be in [1, n={spec.n}], got k={spec.k}")
    if spec.arrival == "poisson":
        arrivals = poisson_arrivals(spec.qps, spec.duration_s, seed=spec.seed)
    else:
        arrivals = uniform_arrivals(spec.qps, spec.duration_s)
    # the payload pool: `payload_pool` distinct sliding windows over one
    # base buffer — O(n + pool) memory however large the pool is
    base = generate(
        spec.distribution,
        spec.n + spec.payload_pool - 1,
        batch=1,
        seed=spec.seed,
    )[0]
    rng = np.random.default_rng(spec.seed + 1)
    picks = rng.integers(0, spec.payload_pool, size=len(arrivals))
    # quality mix: a separate rng stream (seed + 2) decides which requests
    # carry the recall target, so enabling it never perturbs the arrival
    # or payload draws above — a quality-off trace stays byte-identical
    quality = np.zeros(len(arrivals), dtype=bool)
    if spec.min_recall is not None and spec.approx_fraction > 0:
        if not 0.0 < spec.min_recall <= 1.0:
            raise ValueError(
                f"min_recall must be in (0, 1], got {spec.min_recall}"
            )
        if spec.approx_fraction >= 1.0:
            quality[:] = True
        else:
            qrng = np.random.default_rng(spec.seed + 2)
            quality = qrng.random(len(arrivals)) < spec.approx_fraction
    return [
        Request(
            rid=rid,
            data=base[pick : pick + spec.n],
            k=spec.k,
            largest=spec.largest,
            arrival_s=float(t),
            deadline_s=(
                None if spec.deadline_s is None else float(t) + spec.deadline_s
            ),
            slo=((None, spec.min_recall) if quality[rid] else None),
        )
        for rid, (t, pick) in enumerate(zip(arrivals, picks))
    ]


@dataclass
class SequentialBaseline:
    """Per-request dispatch cost with no batching and no caching."""

    #: simulated seconds one single-query selection takes (mean of samples)
    per_request_s: float
    #: how many distinct payloads were sampled to estimate it
    sampled: int

    @property
    def capacity_rps(self) -> float:
        return 1.0 / self.per_request_s if self.per_request_s > 0 else 0.0


def sequential_baseline(
    spec: LoadSpec, config: ServeConfig, *, samples: int = 4
) -> SequentialBaseline:
    """Measure the one-request-per-launch dispatch the service replaces.

    Runs ``samples`` distinct single-query selections through the same
    algorithm/device the service uses (batch = 1, no cache) and averages
    their simulated times — the per-request cost of sequential dispatch.
    """
    from ..api import topk

    samples = max(1, min(samples, spec.payload_pool))
    pool = generate(spec.distribution, spec.n, batch=samples, seed=spec.seed)
    service = TopKService(config)  # reuse its plan resolution, fresh caches
    algo = config.algo
    if algo == "auto":
        plan, _ = service.cache.make_plan(
            n=spec.n, k=spec.k, batch=1, spec=service.spec, largest=spec.largest
        )
        algo = plan.algo
    times = []
    for row in range(samples):
        result = topk(
            pool[row],
            spec.k,
            algo=algo,
            device=service.spec,
            largest=spec.largest,
            seed=config.seed,
            params=config.params,
        )
        times.append(result.time)
    return SequentialBaseline(
        per_request_s=float(np.mean(times)), sampled=samples
    )


@dataclass
class ServeBenchReport:
    """Everything ``repro-topk serve-bench`` prints, as data."""

    spec: LoadSpec
    stats: ServeStats
    baseline: SequentialBaseline
    #: simulated-latency percentiles of served requests, {q: seconds}
    latency: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Micro-batched capacity over sequential per-request capacity."""
        if self.stats.capacity_rps <= 0 or self.baseline.capacity_rps <= 0:
            return 0.0
        return self.stats.capacity_rps / self.baseline.capacity_rps

    def lines(self) -> list[str]:
        s = self.stats
        counts = f"served={s.served} shed={s.shed} timeout={s.timeout}"
        if s.degraded or s.failed:
            counts += f" degraded={s.degraded} failed={s.failed}"
        out = [
            f"serve-bench: {self.spec.qps:g} qps x {self.spec.duration_s:g}s "
            f"(n={self.spec.n}, k={self.spec.k}, {self.spec.arrival} arrivals)",
            f"  requests: {s.total}  {counts}",
            f"  batches: {s.batches}  mean occupancy={s.mean_occupancy:.1f}",
        ]
        if self.latency:
            parts = "  ".join(
                f"p{q:g}={self.latency[q] * 1e3:.3f}ms"
                for q in sorted(self.latency)
            )
            out.append(f"  simulated latency: {parts}")
        out.append(
            f"  capacity: {s.capacity_rps:,.0f} req/s batched vs "
            f"{self.baseline.capacity_rps:,.0f} req/s sequential "
            f"(speedup {self.speedup:.1f}x)"
        )
        if s.cache:
            out.append(
                "  cache: "
                f"result {s.cache.get('result_hits', 0)} hit / "
                f"{s.cache.get('result_misses', 0)} miss, "
                f"plan {s.cache.get('plan_hits', 0)} hit / "
                f"{s.cache.get('plan_misses', 0)} miss"
            )
        # the quality report only appears once approximate traffic exists,
        # so an exact-only run prints byte-identically to a pre-quality
        # build (same convention as the availability block below)
        if s.approx_served or s.recall_violations:
            out.append(
                f"  quality: approx_served={s.approx_served} "
                f"recall_violations={s.recall_violations}"
            )
        # the availability report only appears once faults actually fired
        # or degraded/failed traffic exists, so a run with no fault plan
        # (or an empty one) prints byte-identically to a fault-free build
        if s.faults or s.degraded or s.failed or s.retries or s.hedges:
            fired = (
                " ".join(f"{kind}={count}" for kind, count in sorted(s.faults.items()))
                or "none"
            )
            out.append(
                f"  faults: {fired}  retries={s.retries} hedges={s.hedges} "
                f"breaker_trips={s.breaker_trips}"
            )
            out.append(
                f"  availability: {s.availability * 100:.2f}%  "
                f"(answered {s.answered}/{s.total}: {s.served} full + "
                f"{s.degraded} degraded)"
            )
        return out

    def format(self) -> str:
        return "\n".join(self.lines())


def run_serve_bench(
    spec: LoadSpec, config: ServeConfig | None = None
) -> tuple[ServeBenchReport, TopKService]:
    """Drive one full load test; returns (report, the finished service)."""
    config = config or ServeConfig()
    service = TopKService(config)
    requests = build_requests(spec)
    stats = service.run(requests)
    baseline = sequential_baseline(spec, config)
    # histogram-backed once the sample cap truncated the raw list, exact
    # order statistics otherwise (ServeStats.latency_percentiles)
    latency = (
        stats.latency_percentiles(REPORT_QUANTILES) if stats.answered else {}
    )
    return (
        ServeBenchReport(
            spec=spec, stats=stats, baseline=baseline, latency=latency
        ),
        service,
    )
