"""The top-k serving event loop: admission, batching, dispatch, SLOs.

:class:`TopKService` is a discrete-event simulation of a single-device
serving node.  Requests arrive on a **virtual clock**; the device is a
resource with a ``free-at`` cursor; service times are the simulated
device times of the underlying algorithms.  The loop interleaves three
event sources in time order:

1. **arrivals** — admission control sheds a request immediately when the
   queue is at ``queue_limit`` (bounded queue, load shedding);
2. **size triggers** — a batch group reaching ``max_batch`` flushes at
   once;
3. **delay triggers** — a group whose oldest request has waited
   ``max_delay_s`` flushes even if under-full.

A flushed batch starts when the device is free, runs for the simulated
batched-selection time, and completes; per-request latency is
``completion − arrival``.  Requests whose deadline passes before their
batch can start are timed out without burning device time.  Everything
is reported through ``serve.*`` metrics when a metrics session is
active, and summarised in :class:`ServeStats`.

Under faults (``ServeConfig.faults``, docs/faults.md) the loop degrades
instead of breaking: a crashing batch is retried with capped exponential
backoff and, past the retry budget, its requests are finished ``failed``
— never silently dropped; a sharded batch that loses a shard
irrecoverably comes back ``degraded`` with a recall bound; a corrupted
result-cache entry is detected by checksum, repaired, and — after
repeated corruption — the cache is bypassed behind a circuit breaker
until a cooldown passes.  Every request always gets exactly one terminal
outcome (pinned by tests/test_faults.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import resolve_device, topk
from ..faults import CircuitBreaker, FaultPlan, HedgePolicy, RetryPolicy
from ..obs import get_metrics
from .batcher import GroupKey, MicroBatcher
from .cache import ServeCache
from .request import Outcome, Request
from .sharder import AllShardsLost, sharded_topk

#: histogram bounds for serve.latency (simulated seconds)
_LATENCY_BOUNDS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)
#: histogram bounds for serve.batch_occupancy (requests per launch)
_OCCUPANCY_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class ServeConfig:
    """Policy knobs of one serving node."""

    #: registry algorithm; "auto" consults the cost model via the plan cache
    algo: str = "auto"
    #: device model — GPUSpec, preset name, or None for A100
    device: object = None
    #: size trigger: flush a group at this many requests
    max_batch: int = 64
    #: delay trigger: flush a group once its oldest request waited this long
    max_delay_s: float = 0.05
    #: admission bound: shed arrivals once this many requests are queued
    queue_limit: int = 512
    #: default per-request latency SLO; None disables timeouts
    default_deadline_s: float | None = None
    #: split each batch row-wise across this many simulated devices (>= 2
    #: enables sharded execution; results stay identical to single-shot)
    shards: int = 1
    #: only shard problems at least this large
    shard_min_n: int = 1 << 16
    #: LRU capacities (0 disables the respective cache)
    result_cache: int = 256
    plan_cache: int = 64
    #: seed forwarded to the algorithms' internal sampling
    seed: int = 0
    #: algorithm tuning params forwarded to the registry
    params: dict | None = None
    #: deterministic fault plan; None (and the empty plan) leaves every
    #: fault seam a strict no-op (docs/faults.md)
    faults: FaultPlan | None = None
    #: how many times a crashing batch execution is re-attempted before
    #: its requests are finished "failed"
    batch_retries: int = 1
    #: per-shard retry budget inside sharded execution
    shard_retries: int = 2
    #: capped-exponential backoff before retries, virtual seconds
    retry_backoff_s: float = 1e-4
    retry_backoff_cap_s: float = 1e-2
    #: hedge a shard slower than `hedge_factor` x the `hedge_quantile` of
    #: its siblings (no-op unless something is actually inflated)
    hedge_quantile: float = 0.5
    hedge_factor: float = 3.0
    #: open the result-cache circuit breaker after this many corruption
    #: detections, bypassing the cache for `breaker_cooldown_s`
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25


@dataclass
class BatchRecord:
    """One executed micro-batch (the serving analogue of a BenchPoint)."""

    batch_id: int
    algo: str
    n: int
    k: int
    size: int
    start_s: float
    finish_s: float
    duration_s: float
    largest: bool
    plan_hit: bool = False
    #: execution attempts this batch took (1 = first try succeeded)
    attempts: int = 1
    #: whether the batch came back degraded (a shard was lost)
    degraded: bool = False


@dataclass
class ServeStats:
    """Aggregate outcome of one :meth:`TopKService.run`."""

    served: int = 0
    degraded: int = 0
    shed: int = 0
    timeout: int = 0
    failed: int = 0
    batches: int = 0
    #: total simulated device-busy seconds across all batches
    busy_s: float = 0.0
    #: virtual time the last event finished
    makespan_s: float = 0.0
    #: served-request latencies, seconds (ordered by completion)
    latencies_s: list = field(default_factory=list)
    #: per-batch request counts
    occupancies: list = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    #: injected faults by kind (empty without a fault plan)
    faults: dict = field(default_factory=dict)
    #: recovery counters: batch/shard retries paid, hedges dispatched,
    #: circuit-breaker trips
    retries: int = 0
    hedges: int = 0
    breaker_trips: int = 0

    @property
    def total(self) -> int:
        return self.served + self.degraded + self.shed + self.timeout + self.failed

    @property
    def answered(self) -> int:
        """Requests that got results back (full fidelity or degraded)."""
        return self.served + self.degraded

    @property
    def availability(self) -> float:
        """Answered fraction of all requests — the serve-bench SLO."""
        return self.answered / self.total if self.total else 1.0

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancies:
            return 0.0
        return sum(self.occupancies) / len(self.occupancies)

    @property
    def capacity_rps(self) -> float:
        """Served requests per second of device-busy time.

        The device-limited throughput ceiling — what the node could
        sustain at 100% utilisation — independent of the offered load's
        idle gaps, so it is comparable across arrival patterns.
        """
        if self.busy_s <= 0:
            return 0.0
        # cache hits consume no device time; count only executed requests
        executed = sum(self.occupancies)
        return executed / self.busy_s


class TopKService:
    """Discrete-event top-k serving node over the simulated device."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        run_device, spec = resolve_device(self.config.device)
        if run_device is not None:
            raise ValueError(
                "TopKService owns its device timeline; pass a GPUSpec or "
                "preset name, not an existing Device"
            )
        self.spec = spec
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
        )
        self.cache = ServeCache(
            result_capacity=self.config.result_cache,
            plan_capacity=self.config.plan_cache,
        )
        self.injector = (
            self.config.faults.injector() if self.config.faults is not None else None
        )
        self.retry = RetryPolicy(
            retries=self.config.shard_retries,
            backoff_base_s=self.config.retry_backoff_s,
            backoff_cap_s=self.config.retry_backoff_cap_s,
        )
        self.hedge = HedgePolicy(
            quantile=self.config.hedge_quantile,
            factor=self.config.hedge_factor,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.outcomes: list[Outcome] = []
        self.batch_records: list[BatchRecord] = []
        self.stats = ServeStats()
        self._device_free_s = 0.0
        #: monotone batch sequence — namespaces fault draws per batch, so
        #: it must tick for failed batches too (they drew from the plan)
        self._batch_seq = 0

    # -- metrics helpers ------------------------------------------------ #
    def _count(self, name: str, amount: float = 1.0, **labels) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.counter(name, **labels).inc(amount)

    def _observe(self, name: str, value: float, bounds) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.histogram(name, bounds=bounds).observe(value)

    def _gauge(self, name: str, value: float) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.gauge(name).set(value)

    # -- outcome bookkeeping -------------------------------------------- #
    def _finish(self, outcome: Outcome) -> Outcome:
        self.outcomes.append(outcome)
        setattr(self.stats, outcome.status, getattr(self.stats, outcome.status) + 1)
        self.stats.makespan_s = max(self.stats.makespan_s, outcome.finish_s)
        self._count("serve.requests", status=outcome.status)
        if outcome.latency_s is not None:
            self.stats.latencies_s.append(outcome.latency_s)
            self._observe("serve.latency", outcome.latency_s, _LATENCY_BOUNDS)
        return outcome

    # -- admission ------------------------------------------------------ #
    def _cached_result(self, request: Request):
        """Result-cache lookup through the corruption/breaker seams.

        Returns the cached ``(values, indices)`` or None; detects
        injected corruption by checksum, repairs (evicts) the entry, and
        feeds the circuit breaker that bypasses the cache entirely while
        open.
        """
        cfg = self.config
        if cfg.result_cache <= 0:
            return None
        now_s = request.arrival_s
        if not self.breaker.allow(now_s):
            self._count("serve.breaker", event="bypass")
            return None
        if self.injector is not None and self.cache.result_key(
            request.data, request.k, request.largest
        ) in self.cache.results:
            if self.injector.decide(
                "cache_corruption", "serve.cache", f"rid={request.rid}"
            ):
                self.cache.corrupt_result(request.data, request.k, request.largest)
        before = self.cache.corruptions
        cached = self.cache.get_result(request.data, request.k, request.largest)
        if self.cache.corruptions > before:
            # checksum caught a corrupt entry: repaired (evicted) above,
            # count it toward the breaker and report a miss
            self._count("serve.cache", event="result_corrupt")
            if self.breaker.record_failure(now_s):
                self.stats.breaker_trips = self.breaker.trips
                self._count("serve.breaker", event="open")
            return None
        self._count(
            "serve.cache",
            event="result_hit" if cached is not None else "result_miss",
        )
        if cached is not None:
            self.breaker.record_success()
        return cached

    def submit(self, request: Request) -> Outcome | None:
        """Admit one request at its virtual arrival time.

        Returns an :class:`Outcome` immediately for a shed request or a
        result-cache hit; returns None when the request was queued.
        """
        cfg = self.config
        if request.deadline_s is None and cfg.default_deadline_s is not None:
            request.deadline_s = request.arrival_s + cfg.default_deadline_s
        cached = self._cached_result(request)
        if cached is not None:
            values, indices = cached
            return self._finish(
                Outcome(
                    rid=request.rid,
                    status="served",
                    finish_s=request.arrival_s,
                    latency_s=0.0,
                    batch_size=1,
                    algo="cache",
                    cache_hit=True,
                    values=values,
                    indices=indices,
                )
            )
        if self.batcher.pending >= cfg.queue_limit:
            return self._finish(
                Outcome(
                    rid=request.rid,
                    status="shed",
                    finish_s=request.arrival_s,
                )
            )
        self.batcher.add(request)
        self._gauge("serve.queue_depth", self.batcher.pending)
        return None

    # -- execution ------------------------------------------------------ #
    def _run_batch(self, data, key: GroupKey, algo: str, batch_id: int):
        """One batch execution through the fault seams.

        Returns ``(result, start_delay_s, attempts, error)``: on success
        ``result`` is the TopKResult (possibly degraded) and ``error`` is
        empty; past the retry budget ``result`` is None and ``error``
        records the last failure.  ``start_delay_s`` is the virtual-time
        backoff paid before the successful (or final) attempt.
        """
        cfg = self.config
        attempts = 1 + max(0, cfg.batch_retries)
        delay_s = 0.0
        last_error = ""
        for attempt in range(attempts):
            if attempt:
                delay_s += self.retry.backoff(attempt - 1)
                self.stats.retries += 1
                self._count("serve.retries", site="serve.batch")
            if self.injector is not None and self.injector.decide(
                "worker_crash",
                "serve.batch",
                f"batch={batch_id}",
                f"attempt={attempt}",
            ):
                last_error = "injected worker crash"
                continue
            try:
                if cfg.shards > 1 and key.n >= cfg.shard_min_n:
                    result = sharded_topk(
                        data,
                        key.k,
                        shards=cfg.shards,
                        algo=algo,
                        device=self.spec,
                        largest=key.largest,
                        seed=cfg.seed,
                        params=cfg.params,
                        injector=self.injector,
                        retry=self.retry,
                        hedge=self.hedge,
                        fault_scope=f"batch={batch_id}/try={attempt}",
                    )
                else:
                    result = topk(
                        data,
                        key.k,
                        algo=algo,
                        device=self.spec,
                        largest=key.largest,
                        seed=cfg.seed,
                        params=cfg.params,
                    )
            except AllShardsLost as exc:
                last_error = str(exc)
                continue
            except Exception as exc:  # noqa: BLE001 — becomes failed outcomes
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            shard_retries = result.meta.get("retries", 0)
            if shard_retries:
                self.stats.retries += shard_retries
                self._count(
                    "serve.retries", amount=shard_retries, site="serve.shard"
                )
            hedges = result.meta.get("hedges", 0)
            if hedges:
                self.stats.hedges += hedges
                self._count("serve.hedges", amount=hedges)
            return result, delay_s, attempt + 1, ""
        return None, delay_s, attempts, last_error

    def _execute(self, key: GroupKey, trigger_s: float) -> None:
        """Flush one group: drop expired requests, run the rest as a batch.

        A batch whose execution keeps crashing past ``batch_retries``
        finishes every surviving request as ``failed`` — outcomes are
        never silently dropped (the PR-4 regression pin).
        """
        cfg = self.config
        batch = self.batcher.pop(key)
        start_s = max(trigger_s, self._device_free_s)
        alive = []
        for request in batch:
            if request.deadline_s is not None and request.deadline_s < start_s:
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="timeout",
                        finish_s=min(request.deadline_s, start_s),
                    )
                )
            else:
                alive.append(request)
        self._gauge("serve.queue_depth", self.batcher.pending)
        if not alive:
            return

        data = np.stack([r.data for r in alive])
        algo, plan_hit = cfg.algo, False
        if cfg.algo == "auto":
            plan, plan_hit = self.cache.make_plan(
                n=key.n,
                k=key.k,
                batch=len(alive),
                spec=self.spec,
                largest=key.largest,
            )
            algo = plan.algo
            self._count(
                "serve.cache", event="plan_hit" if plan_hit else "plan_miss"
            )
        batch_id = self._batch_seq
        self._batch_seq += 1
        result, delay_s, attempts, error = self._run_batch(
            data, key, algo, batch_id
        )
        start_s += delay_s
        if result is None:
            # retries exhausted: fail every surviving request explicitly
            for request in alive:
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="failed",
                        finish_s=start_s,
                        batch_size=len(alive),
                        error=error,
                    )
                )
            return
        duration_s = result.time
        if self.injector is not None:
            slow = self.injector.decide(
                "timeout", "serve.batch", f"batch={batch_id}"
            )
            if slow is not None:
                duration_s = duration_s * slow.factor
        finish_s = start_s + duration_s
        self._device_free_s = finish_s
        self.stats.batches += 1
        self.stats.busy_s += duration_s
        self.stats.occupancies.append(len(alive))
        self._observe("serve.batch_occupancy", len(alive), _OCCUPANCY_BOUNDS)
        self.batch_records.append(
            BatchRecord(
                batch_id=len(self.batch_records),
                algo=result.algo,
                n=key.n,
                k=key.k,
                size=len(alive),
                start_s=start_s,
                finish_s=finish_s,
                duration_s=duration_s,
                largest=key.largest,
                plan_hit=plan_hit,
                attempts=attempts,
                degraded=result.degraded,
            )
        )
        for row, request in enumerate(alive):
            values = np.array(result.values[row], copy=True)
            indices = np.array(result.indices[row], copy=True)
            if request.deadline_s is not None and request.deadline_s < finish_s:
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="timeout",
                        finish_s=request.deadline_s,
                    )
                )
                continue
            if result.degraded:
                # a lossy result must neither be cached nor reported as
                # full fidelity: flag it and attach its recall contract
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="degraded",
                        finish_s=finish_s,
                        latency_s=finish_s - request.arrival_s,
                        batch_size=len(alive),
                        algo=result.algo,
                        values=values,
                        indices=indices,
                        recall_bound=result.recall_bound,
                    )
                )
                continue
            if self.breaker.allow(request.arrival_s):
                self.cache.put_result(
                    request.data, request.k, request.largest, values, indices
                )
            self._finish(
                Outcome(
                    rid=request.rid,
                    status="served",
                    finish_s=finish_s,
                    latency_s=finish_s - request.arrival_s,
                    batch_size=len(alive),
                    algo=result.algo,
                    values=values,
                    indices=indices,
                )
            )

    # -- the event loop -------------------------------------------------- #
    def run(self, requests: list[Request]) -> ServeStats:
        """Serve a full virtual-time trace of requests to completion."""
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        i = 0
        while i < len(pending) or self.batcher.pending:
            next_arrival = pending[i].arrival_s if i < len(pending) else None
            flush = self.batcher.next_flush_time()
            if next_arrival is not None and (
                flush is None or next_arrival <= flush[0]
            ):
                request = pending[i]
                i += 1
                self.submit(request)
                key = self.batcher.size_ready()
                if key is not None:
                    self._execute(key, request.arrival_s)
            else:
                deadline, key = flush
                self._execute(key, deadline)
        self.stats.cache = self.cache.stats()
        if self.injector is not None:
            self.stats.faults = self.injector.fault_counts()
            for kind, count in self.stats.faults.items():
                self._count("serve.faults", amount=count, kind=kind)
        return self.stats
