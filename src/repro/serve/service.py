"""The top-k serving event loop: admission, batching, dispatch, SLOs.

:class:`TopKService` is a discrete-event simulation of a single-device
serving node.  Requests arrive on a **virtual clock**; the device is a
resource with a ``free-at`` cursor; service times are the simulated
device times of the underlying algorithms.  The loop interleaves three
event sources in time order:

1. **arrivals** — admission control sheds a request immediately when the
   queue is at ``queue_limit`` (bounded queue, load shedding);
2. **size triggers** — a batch group reaching ``max_batch`` flushes at
   once;
3. **delay triggers** — a group whose oldest request has waited
   ``max_delay_s`` flushes even if under-full.

A flushed batch starts when the device is free, runs for the simulated
batched-selection time, and completes; per-request latency is
``completion − arrival``.  Requests whose deadline passes before their
batch can start are timed out without burning device time.  Everything
is reported through ``serve.*`` metrics when a metrics session is
active, and summarised in :class:`ServeStats`.

Under faults (``ServeConfig.faults``, docs/faults.md) the loop degrades
instead of breaking: a crashing batch is retried with capped exponential
backoff and, past the retry budget, its requests are finished ``failed``
— never silently dropped; a sharded batch that loses a shard
irrecoverably comes back ``degraded`` with a recall bound; a corrupted
result-cache entry is detected by checksum, repaired, and — after
repeated corruption — the cache is bypassed behind a circuit breaker
until a cooldown passes.  Every request always gets exactly one terminal
outcome (pinned by tests/test_faults.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import resolve_device, topk
from ..faults import CircuitBreaker, FaultPlan, HedgePolicy, RetryPolicy
from ..obs import get_metrics, tracing_enabled
from ..obs.serve import ServeTelemetry
from .batcher import GroupKey, MicroBatcher, quality_class
from .cache import ServeCache
from .request import Outcome, Request
from .sharder import AllShardsLost, sharded_topk

#: histogram bounds for serve.latency (simulated seconds)
_LATENCY_BOUNDS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)
#: histogram bounds for serve.batch_occupancy (requests per launch)
_OCCUPANCY_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class ServeConfig:
    """Policy knobs of one serving node."""

    #: registry algorithm; "auto" consults the cost model via the plan cache
    algo: str = "auto"
    #: device model — GPUSpec, preset name, or None for A100
    device: object = None
    #: size trigger: flush a group at this many requests
    max_batch: int = 64
    #: delay trigger: flush a group once its oldest request waited this long
    max_delay_s: float = 0.05
    #: admission bound: shed arrivals once this many requests are queued
    queue_limit: int = 512
    #: default per-request latency SLO; None disables timeouts
    default_deadline_s: float | None = None
    #: split each batch row-wise across this many simulated devices (>= 2
    #: enables sharded execution; results stay identical to single-shot)
    shards: int = 1
    #: only shard problems at least this large
    shard_min_n: int = 1 << 16
    #: LRU capacities (0 disables the respective cache)
    result_cache: int = 256
    plan_cache: int = 64
    #: seed forwarded to the algorithms' internal sampling
    seed: int = 0
    #: algorithm tuning params forwarded to the registry
    params: dict | None = None
    #: windowed-telemetry bucket width, virtual seconds (the serve_report
    #: time series resolution — docs/serving-observability.md)
    window_s: float = 0.25
    #: cap on the raw served-latency samples kept in ``ServeStats``; past
    #: it the list stops growing and percentiles come from the bounded
    #: latency histogram instead (``latency_truncated``).  None keeps
    #: every sample.
    latency_sample_cap: int | None = 65536
    #: host threads for sharded execution's numpy fan-out; never changes
    #: results or the serve report (pinned by tests/test_serve_obs.py)
    workers: int = 1
    #: deterministic fault plan; None (and the empty plan) leaves every
    #: fault seam a strict no-op (docs/faults.md)
    faults: FaultPlan | None = None
    #: how many times a crashing batch execution is re-attempted before
    #: its requests are finished "failed"
    batch_retries: int = 1
    #: per-shard retry budget inside sharded execution
    shard_retries: int = 2
    #: capped-exponential backoff before retries, virtual seconds
    retry_backoff_s: float = 1e-4
    retry_backoff_cap_s: float = 1e-2
    #: hedge a shard slower than `hedge_factor` x the `hedge_quantile` of
    #: its siblings (no-op unless something is actually inflated)
    hedge_quantile: float = 0.5
    hedge_factor: float = 3.0
    #: open the result-cache circuit breaker after this many corruption
    #: detections, bypassing the cache for `breaker_cooldown_s`
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25
    #: online adaptation (docs/adaptive.md): fold each executed batch's
    #: drift residual into a per-regime correction on the cost model and
    #: explore alternative algorithms epsilon-greedily.  Requires
    #: ``algo="auto"`` and an active metrics session — with telemetry off
    #: the whole path is a strict no-op (pinned by tests/test_adaptive.py)
    adaptive: bool = False
    #: exploration probability of the adaptive dispatcher
    adapt_epsilon: float = 0.1
    #: residuals accumulated per regime before a correction folds in
    adapt_min_window: int = 8
    #: seed of the pure exploration draws; None reuses ``seed``
    adapt_seed: int | None = None
    #: optional pre-built :class:`repro.perf.adaptive.CorrectionStore`
    #: shared across services (cluster nodes) or loaded from a prior run
    corrections: object = None


@dataclass
class BatchRecord:
    """One executed micro-batch (the serving analogue of a BenchPoint)."""

    batch_id: int
    algo: str
    n: int
    k: int
    size: int
    start_s: float
    finish_s: float
    duration_s: float
    largest: bool
    plan_hit: bool = False
    #: execution attempts this batch took (1 = first try succeeded)
    attempts: int = 1
    #: whether the batch came back degraded (a shard was lost)
    degraded: bool = False
    #: whether the batch's results are exact (False for the approximate
    #: tier and for degraded sharded results)
    exact: bool = True


@dataclass
class ServeStats:
    """Aggregate outcome of one :meth:`TopKService.run`."""

    served: int = 0
    degraded: int = 0
    shed: int = 0
    timeout: int = 0
    failed: int = 0
    batches: int = 0
    #: total simulated device-busy seconds across all batches
    busy_s: float = 0.0
    #: virtual time the last event finished
    makespan_s: float = 0.0
    #: answered-request latencies, seconds (ordered by completion).  The
    #: list stops growing at ``ServeConfig.latency_sample_cap``; after
    #: that ``latency_truncated`` flips and quantiles come from
    #: ``latency_hist``
    latencies_s: list = field(default_factory=list)
    #: bounded latency histogram covering *every* answered request (the
    #: run's :class:`~repro.obs.serve.ServeTelemetry` shares this object)
    latency_hist: object = None
    #: True once ``latencies_s`` hit the sample cap and stopped recording
    latency_truncated: bool = False
    #: per-batch request counts
    occupancies: list = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    #: injected faults by kind (empty without a fault plan)
    faults: dict = field(default_factory=dict)
    #: recovery counters: batch/shard retries paid, hedges dispatched,
    #: circuit-breaker trips
    retries: int = 0
    hedges: int = 0
    breaker_trips: int = 0
    #: "served" outcomes answered by the approximate tier (exact=False
    #: but not degraded); a subset of ``served``
    approx_served: int = 0
    #: answered requests carrying a ``min_recall`` target whose plan's
    #: expected recall fell below it — zero by planner construction
    #: unless a fixed-algo config overrides the quality dispatch
    recall_violations: int = 0
    #: adaptation activity (zero without ``ServeConfig.adaptive`` + an
    #: active metrics session): batch residuals fed back, correction
    #: folds triggered, and exploration overrides taken
    adapt_observations: int = 0
    adapt_folds: int = 0
    adapt_explored: int = 0

    @property
    def total(self) -> int:
        return self.served + self.degraded + self.shed + self.timeout + self.failed

    @property
    def answered(self) -> int:
        """Requests that got results back (full fidelity or degraded)."""
        return self.served + self.degraded

    @property
    def availability(self) -> float:
        """Answered fraction of all requests — the serve-bench SLO."""
        return self.answered / self.total if self.total else 1.0

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancies:
            return 0.0
        return sum(self.occupancies) / len(self.occupancies)

    @property
    def capacity_rps(self) -> float:
        """Served requests per second of device-busy time.

        The device-limited throughput ceiling — what the node could
        sustain at 100% utilisation — independent of the offered load's
        idle gaps, so it is comparable across arrival patterns.
        """
        if self.busy_s <= 0:
            return 0.0
        # cache hits consume no device time; count only executed requests
        executed = sum(self.occupancies)
        return executed / self.busy_s

    def latency_percentiles(self, qs=(50.0, 95.0, 99.0)) -> dict:
        """``{q: seconds}`` over answered requests (None values if none).

        Exact order statistics while every sample was kept; once the
        sample cap truncated ``latencies_s`` the estimates come from the
        bounded histogram (16 buckets/decade — within ~7.5% of exact).
        """
        if self.latency_truncated and self.latency_hist is not None:
            from ..obs.serve import histogram_quantile

            return {q: histogram_quantile(self.latency_hist, q) for q in qs}
        if not self.latencies_s:
            return {q: None for q in qs}
        from ..bench.report import percentiles

        return percentiles(self.latencies_s, qs)


class TopKService:
    """Discrete-event top-k serving node over the simulated device."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        run_device, spec = resolve_device(self.config.device)
        if run_device is not None:
            raise ValueError(
                "TopKService owns its device timeline; pass a GPUSpec or "
                "preset name, not an existing Device"
            )
        self.spec = spec
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
        )
        self.cache = ServeCache(
            result_capacity=self.config.result_cache,
            plan_capacity=self.config.plan_cache,
        )
        self.injector = (
            self.config.faults.injector() if self.config.faults is not None else None
        )
        self.retry = RetryPolicy(
            retries=self.config.shard_retries,
            backoff_base_s=self.config.retry_backoff_s,
            backoff_cap_s=self.config.retry_backoff_cap_s,
        )
        self.hedge = HedgePolicy(
            quantile=self.config.hedge_quantile,
            factor=self.config.hedge_factor,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        #: the online learner; None unless the config opts in.  The
        #: correction store also hooks the plan cache so plan keys carry
        #: each regime's correction epoch (stale plans miss, not serve)
        self.adaptation = None
        if self.config.adaptive:
            from ..perf.adaptive import AdaptiveDispatcher, CorrectionStore

            store = self.config.corrections
            if store is None:
                store = CorrectionStore(min_window=self.config.adapt_min_window)
            self.adaptation = AdaptiveDispatcher(
                corrections=store,
                epsilon=self.config.adapt_epsilon,
                seed=(
                    self.config.adapt_seed
                    if self.config.adapt_seed is not None
                    else self.config.seed
                ),
            )
            self.cache.corrections = store
        self.outcomes: list[Outcome] = []
        self.batch_records: list[BatchRecord] = []
        #: windowed telemetry + request-span buffer; span recording is
        #: locked to whether a tracing session is active *now* so a plain
        #: run stays a strict no-op (pinned by tests/test_serve_obs.py)
        self.telemetry = ServeTelemetry(
            window_s=self.config.window_s, trace=tracing_enabled()
        )
        self.stats = ServeStats(latency_hist=self.telemetry.latency_hist)
        self._device_free_s = 0.0
        #: monotone batch sequence — namespaces fault draws per batch, so
        #: it must tick for failed batches too (they drew from the plan)
        self._batch_seq = 0
        #: virtual "now" — the batcher/cache hooks carry no timestamp, so
        #: the event loop keeps this current for them
        self._now_s = 0.0
        #: injector fault totals already folded into the windows
        self._faults_seen: dict[str, int] = {}
        self.batcher.observer = self._on_queue_event
        self.cache.on_event = self._on_cache_event

    # -- metrics helpers ------------------------------------------------ #
    def _count(self, name: str, amount: float = 1.0, **labels) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.counter(name, **labels).inc(amount)

    def _observe(self, name: str, value: float, bounds, **labels) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.histogram(name, bounds=bounds, **labels).observe(value)

    def _gauge(self, name: str, value: float) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.gauge(name).set(value)

    # -- telemetry hooks ------------------------------------------------- #
    def _on_queue_event(self, event: str, key, pending: int) -> None:
        """Batcher observer: queue depth at every admission and flush."""
        self._gauge("serve.queue_depth", pending)
        self.telemetry.on_queue_depth(self._now_s, pending)

    def _on_cache_event(self, event: str) -> None:
        """Cache hook: ``serve.cache`` metrics plus the windowed hit rate
        (a corrupt read counts as a miss — it was not served)."""
        self._count("serve.cache", event=event)
        if event in ("result_hit", "result_miss", "result_corrupt"):
            self.telemetry.on_cache_lookup(self._now_s, event == "result_hit")

    def _drain_faults(self, t_s: float) -> dict[str, int]:
        """New injector fault counts since the last drain, folded into
        the telemetry windows; returns ``{kind: delta}`` so callers can
        annotate the spans around the seam that just fired."""
        if self.injector is None:
            return {}
        delta: dict[str, int] = {}
        for kind, count in self.injector.fault_counts().items():
            seen = self._faults_seen.get(kind, 0)
            if count > seen:
                delta[kind] = count - seen
                self._faults_seen[kind] = count
                self.telemetry.on_fault(t_s, kind, count - seen)
        return delta

    def telemetry_spans(self, base_us: float = 0.0):
        """The run's virtual-time request/node spans re-based onto the
        wall clock for trace export (same convention as
        :func:`repro.device.timeline_spans`)."""
        return self.telemetry.spans(base_us)

    # -- outcome bookkeeping -------------------------------------------- #
    def _finish(
        self,
        outcome: Outcome,
        *,
        recall_target: bool = False,
        recall_met: bool = True,
    ) -> Outcome:
        self.outcomes.append(outcome)
        setattr(self.stats, outcome.status, getattr(self.stats, outcome.status) + 1)
        self.stats.makespan_s = max(self.stats.makespan_s, outcome.finish_s)
        if outcome.status == "served" and not outcome.exact:
            self.stats.approx_served += 1
            self._count("serve.approx")
        if recall_target and not recall_met:
            self.stats.recall_violations += 1
        self._count("serve.requests", status=outcome.status)
        self.telemetry.on_outcome(
            outcome.status,
            outcome.finish_s,
            outcome.latency_s,
            exact=outcome.exact,
            recall_target=recall_target,
            recall_met=recall_met,
        )
        # the status-labelled latency series also charges non-served
        # verdicts with the time the caller actually waited
        wait_s = outcome.latency_s
        if wait_s is None and outcome.arrival_s is not None:
            wait_s = outcome.finish_s - outcome.arrival_s
        if wait_s is not None:
            self._observe(
                "serve.latency", wait_s, _LATENCY_BOUNDS, status=outcome.status
            )
        if outcome.latency_s is not None:
            cap = self.config.latency_sample_cap
            if cap is None or len(self.stats.latencies_s) < cap:
                self.stats.latencies_s.append(outcome.latency_s)
            else:
                self.stats.latency_truncated = True
            self._observe("serve.latency", outcome.latency_s, _LATENCY_BOUNDS)
        if self.telemetry.trace:
            lane = self.telemetry.request_lane(outcome.rid)
            self.telemetry.emit(
                "finish",
                cat="serve.request",
                lane=lane,
                ts_s=outcome.finish_s,
                status=outcome.status,
            )
            args: dict = {"rid": outcome.rid, "status": outcome.status}
            if outcome.latency_s is not None:
                args["latency_s"] = outcome.latency_s
            if outcome.cache_hit:
                args["cache_hit"] = True
            if outcome.recall_bound is not None:
                args["recall_bound"] = outcome.recall_bound
            if outcome.error:
                args["error"] = outcome.error
            start_s = (
                outcome.arrival_s
                if outcome.arrival_s is not None
                else outcome.finish_s
            )
            self.telemetry.emit(
                "request",
                cat="serve.request",
                lane=lane,
                ts_s=start_s,
                dur_s=outcome.finish_s - start_s,
                **args,
            )
        return outcome

    # -- admission ------------------------------------------------------ #
    def _cached_result(self, request: Request):
        """Result-cache lookup through the corruption/breaker seams.

        Returns the cached ``(values, indices)`` or None; detects
        injected corruption by checksum, repairs (evicts) the entry, and
        feeds the circuit breaker that bypasses the cache entirely while
        open.
        """
        cfg = self.config
        if cfg.result_cache <= 0:
            return None
        now_s = request.arrival_s
        quality = quality_class(request.min_recall)
        if not self.breaker.allow(now_s):
            self._count("serve.breaker", event="bypass")
            self.telemetry.on_breaker(now_s)
            self.telemetry.emit(
                "breaker_bypass",
                cat="serve.fault",
                lane=self.telemetry.request_lane(request.rid),
                ts_s=now_s,
            )
            return None
        if self.injector is not None and self.cache.result_key(
            request.data, request.k, request.largest, quality
        ) in self.cache.results:
            if self.injector.decide(
                "cache_corruption", "serve.cache", f"rid={request.rid}"
            ):
                self.cache.corrupt_result(
                    request.data, request.k, request.largest, quality
                )
        before = self.cache.corruptions
        cached = self.cache.get_result(
            request.data, request.k, request.largest, quality
        )
        if self.cache.corruptions > before:
            # checksum caught a corrupt entry: repaired (evicted) above,
            # count it toward the breaker and report a miss (the cache
            # hook already counted the serve.cache result_corrupt event)
            self._drain_faults(now_s)
            self.telemetry.emit(
                "fault:cache_corruption",
                cat="serve.fault",
                lane=self.telemetry.request_lane(request.rid),
                ts_s=now_s,
            )
            if self.breaker.record_failure(now_s):
                self.stats.breaker_trips = self.breaker.trips
                self._count("serve.breaker", event="open")
                self.telemetry.on_breaker(now_s)
                self.telemetry.emit(
                    "breaker_open",
                    cat="serve.fault",
                    lane=self.telemetry.node_lane("cache"),
                    ts_s=now_s,
                )
            return None
        if cached is not None:
            self.breaker.record_success()
        return cached

    def submit(self, request: Request) -> Outcome | None:
        """Admit one request at its virtual arrival time.

        Returns an :class:`Outcome` immediately for a shed request or a
        result-cache hit; returns None when the request was queued.
        """
        cfg = self.config
        self._now_s = request.arrival_s
        if (
            request.deadline_s is None
            and request.slo is not None
            and request.slo[0] is not None
        ):
            request.deadline_s = request.arrival_s + float(request.slo[0])
        if request.deadline_s is None and cfg.default_deadline_s is not None:
            request.deadline_s = request.arrival_s + cfg.default_deadline_s
        cached = self._cached_result(request)
        if cached is not None:
            values, indices, meta = cached
            exact = bool(meta.get("exact", True))
            min_recall = request.min_recall
            self._admission_span(request, "cache_hit")
            return self._finish(
                Outcome(
                    rid=request.rid,
                    status="served",
                    finish_s=request.arrival_s,
                    arrival_s=request.arrival_s,
                    latency_s=0.0,
                    batch_size=1,
                    algo="cache",
                    cache_hit=True,
                    values=values,
                    indices=indices,
                    exact=exact,
                    recall_bound=meta.get("recall_bound"),
                ),
                recall_target=min_recall is not None,
                recall_met=(
                    min_recall is None
                    or exact
                    or meta.get("expected_recall", 1.0) >= min_recall
                ),
            )
        if self.batcher.pending >= cfg.queue_limit:
            self._admission_span(request, "shed")
            # a shed admission leaves the queue untouched but is still a
            # depth observation (the queue *was* full when we looked)
            self._gauge("serve.queue_depth", self.batcher.pending)
            self.telemetry.on_queue_depth(request.arrival_s, self.batcher.pending)
            return self._finish(
                Outcome(
                    rid=request.rid,
                    status="shed",
                    finish_s=request.arrival_s,
                    arrival_s=request.arrival_s,
                )
            )
        self._admission_span(request, "queued")
        # the batcher observer emits the queue-depth gauge + window sample
        self.batcher.add(request)
        return None

    def _admission_span(self, request: Request, verdict: str) -> None:
        self.telemetry.emit(
            "admission",
            cat="serve.admission",
            lane=self.telemetry.request_lane(request.rid),
            ts_s=request.arrival_s,
            verdict=verdict,
        )

    # -- execution ------------------------------------------------------ #
    def _run_batch(
        self,
        data,
        key: GroupKey,
        algo: str,
        batch_id: int,
        *,
        params: dict | None = None,
        allow_shard: bool = True,
    ):
        """One batch execution through the fault seams.

        Returns ``(result, start_delay_s, attempts, error)``: on success
        ``result`` is the TopKResult (possibly degraded) and ``error`` is
        empty; past the retry budget ``result`` is None and ``error``
        records the last failure.  ``start_delay_s`` is the virtual-time
        backoff paid before the successful (or final) attempt.

        ``params`` overrides the service-level tuning when the quality
        planner chose the plan; ``allow_shard=False`` keeps approximate
        plans on a single device — sharded execution's merge/recall
        contract assumes exact per-shard results, and stacking the two
        loss models would invalidate both bounds.
        """
        cfg = self.config
        run_params = params if params is not None else cfg.params
        attempts = 1 + max(0, cfg.batch_retries)
        delay_s = 0.0
        last_error = ""
        for attempt in range(attempts):
            if attempt:
                delay_s += self.retry.backoff(attempt - 1)
                self.stats.retries += 1
                self._count("serve.retries", site="serve.batch")
            if self.injector is not None and self.injector.decide(
                "worker_crash",
                "serve.batch",
                f"batch={batch_id}",
                f"attempt={attempt}",
            ):
                last_error = "injected worker crash"
                continue
            try:
                if allow_shard and cfg.shards > 1 and key.n >= cfg.shard_min_n:
                    result = sharded_topk(
                        data,
                        key.k,
                        shards=cfg.shards,
                        algo=algo,
                        device=self.spec,
                        largest=key.largest,
                        seed=cfg.seed,
                        params=run_params,
                        workers=cfg.workers,
                        injector=self.injector,
                        retry=self.retry,
                        hedge=self.hedge,
                        fault_scope=f"batch={batch_id}/try={attempt}",
                    )
                else:
                    result = topk(
                        data,
                        key.k,
                        algo=algo,
                        device=self.spec,
                        largest=key.largest,
                        seed=cfg.seed,
                        params=run_params,
                    )
            except AllShardsLost as exc:
                last_error = str(exc)
                continue
            except Exception as exc:  # noqa: BLE001 — becomes failed outcomes
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            shard_retries = result.meta.get("retries", 0)
            if shard_retries:
                self.stats.retries += shard_retries
                self._count(
                    "serve.retries", amount=shard_retries, site="serve.shard"
                )
            hedges = result.meta.get("hedges", 0)
            if hedges:
                self.stats.hedges += hedges
                self._count("serve.hedges", amount=hedges)
            return result, delay_s, attempt + 1, ""
        return None, delay_s, attempts, last_error

    def _execute(self, key: GroupKey, trigger_s: float) -> None:
        """Flush one group: drop expired requests, run the rest as a batch.

        A batch whose execution keeps crashing past ``batch_retries``
        finishes every surviving request as ``failed`` — outcomes are
        never silently dropped (the PR-4 regression pin).
        """
        cfg = self.config
        self._now_s = max(self._now_s, trigger_s)
        batch = self.batcher.pop(key)
        start_s = max(trigger_s, self._device_free_s)
        alive = []
        for request in batch:
            if request.deadline_s is not None and request.deadline_s < start_s:
                finish_s = min(request.deadline_s, start_s)
                self._queued_span(request, finish_s)
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="timeout",
                        finish_s=finish_s,
                        arrival_s=request.arrival_s,
                    )
                )
            else:
                alive.append(request)
        if not alive:
            return

        data = np.stack([r.data for r in alive])
        algo, plan_hit = cfg.algo, False
        plan_params: dict | None = None
        plan_exact = True
        explored = False
        if cfg.algo == "auto":
            # the cache hook counts the serve.cache plan_hit/plan_miss;
            # a group carrying a recall target (key.quality) goes through
            # the quality-aware planner, which may pick an approximate
            # plan — exact-only traffic never does
            plan, plan_hit = self.cache.make_plan(
                n=key.n,
                k=key.k,
                batch=len(alive),
                spec=self.spec,
                largest=key.largest,
                min_recall=key.quality,
                dtype=key.dtype,
            )
            algo = plan.algo
            plan_exact = plan.exact
            if plan.params:
                plan_params = dict(plan.params)
            if (
                self.adaptation is not None
                and get_metrics() is not None
                and plan.exact
                and key.quality is None
                and len(plan.ranking) > 1
            ):
                # the bandit step over the plan's (already corrected)
                # ranking: exploit the regime's observed winner, explore
                # epsilon-greedily via pure seeded draws (workers=1 ==
                # workers=N, byte-identical replays — docs/adaptive.md)
                decision = self.adaptation.decide(
                    plan.ranking,
                    n=key.n,
                    k=key.k,
                    batch=len(alive),
                    spec_name=self.spec.name,
                    dtype=key.dtype,
                    site="serve.dispatch",
                )
                algo = decision.algo
                explored = decision.explored
        batch_id = self._batch_seq
        self._batch_seq += 1
        result, delay_s, attempts, error = self._run_batch(
            data,
            key,
            algo,
            batch_id,
            params=plan_params,
            allow_shard=plan_exact,
        )
        start_s += delay_s
        duration_s = 0.0
        hedges = 0
        if result is not None:
            duration_s = result.time
            if self.injector is not None:
                slow = self.injector.decide(
                    "timeout", "serve.batch", f"batch={batch_id}"
                )
                if slow is not None:
                    duration_s = duration_s * slow.factor
            hedges = result.meta.get("hedges", 0)
        # fold this batch's recovery activity into the telemetry windows
        # and annotate the trace around the seams that fired
        faults = self._drain_faults(start_s)
        retries_paid = (attempts - 1) + (
            result.meta.get("retries", 0) if result is not None else 0
        )
        if retries_paid:
            self.telemetry.on_retry(start_s, retries_paid)
        if hedges:
            self.telemetry.on_hedge(start_s, hedges)
        if self.telemetry.trace:
            node = self.telemetry.node_lane("device")
            for kind, fired in sorted(faults.items()):
                self.telemetry.emit(
                    f"fault:{kind}",
                    cat="serve.fault",
                    lane=node,
                    ts_s=start_s,
                    count=fired,
                    batch_id=batch_id,
                )
            if retries_paid:
                self.telemetry.emit(
                    "retry",
                    cat="serve.fault",
                    lane=node,
                    ts_s=start_s,
                    count=retries_paid,
                    batch_id=batch_id,
                )
            if hedges:
                self.telemetry.emit(
                    "hedge",
                    cat="serve.fault",
                    lane=node,
                    ts_s=start_s,
                    count=hedges,
                    batch_id=batch_id,
                )
        if result is None:
            # retries exhausted: fail every surviving request explicitly
            for request in alive:
                self._queued_span(request, start_s)
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="failed",
                        finish_s=start_s,
                        arrival_s=request.arrival_s,
                        batch_size=len(alive),
                        error=error,
                    )
                )
            return
        finish_s = start_s + duration_s
        self._device_free_s = finish_s
        self._now_s = max(self._now_s, finish_s)
        self.stats.batches += 1
        self.stats.busy_s += duration_s
        self.stats.occupancies.append(len(alive))
        self.telemetry.on_batch(start_s, len(alive))
        self._observe("serve.batch_occupancy", len(alive), _OCCUPANCY_BOUNDS)
        if self.telemetry.trace:
            self._batch_spans(
                alive, result, batch_id, attempts, start_s, finish_s, duration_s
            )
        self.batch_records.append(
            BatchRecord(
                batch_id=len(self.batch_records),
                algo=result.algo,
                n=key.n,
                k=key.k,
                size=len(alive),
                start_s=start_s,
                finish_s=finish_s,
                duration_s=duration_s,
                largest=key.largest,
                plan_hit=plan_hit,
                attempts=attempts,
                degraded=result.degraded,
                exact=result.exact,
            )
        )
        if (
            self.adaptation is not None
            and get_metrics() is not None
            and cfg.algo == "auto"
            and not result.degraded
            and result.exact
            and not result.meta.get("shard_times_s")
        ):
            # feed the measured wall time (including any injected slowdown
            # — that *is* live drift) back into the learner; sharded and
            # degraded results measure a different code path and are
            # excluded so residuals stay attributable to one algorithm
            self._adapt_feedback(
                key, len(alive), result.algo, duration_s, start_s, explored
            )
        result_exact = bool(result.exact)
        expected_recall = result.meta.get("expected_recall", 1.0)
        for row, request in enumerate(alive):
            values = np.array(result.values[row], copy=True)
            indices = np.array(result.indices[row], copy=True)
            min_recall = request.min_recall
            recall_target = min_recall is not None
            recall_met = (
                min_recall is None
                or result_exact
                or expected_recall >= min_recall
            )
            if request.deadline_s is not None and request.deadline_s < finish_s:
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="timeout",
                        finish_s=request.deadline_s,
                        arrival_s=request.arrival_s,
                    )
                )
                continue
            if result.degraded:
                # a lossy result must neither be cached nor reported as
                # full fidelity: flag it and attach its recall contract
                self._finish(
                    Outcome(
                        rid=request.rid,
                        status="degraded",
                        finish_s=finish_s,
                        arrival_s=request.arrival_s,
                        latency_s=finish_s - request.arrival_s,
                        batch_size=len(alive),
                        algo=result.algo,
                        values=values,
                        indices=indices,
                        recall_bound=result.recall_bound,
                        exact=False,
                    ),
                    recall_target=recall_target,
                    recall_met=not recall_target
                    or (result.recall_bound or 0.0) >= min_recall,
                )
                continue
            if self.breaker.allow(request.arrival_s):
                # approximate results are cached under the request's
                # quality class with their quality annotations, so an
                # exact lookup for the same payload can never alias them
                quality = quality_class(min_recall)
                meta = None
                if not result_exact:
                    meta = {
                        "exact": False,
                        "recall_bound": result.recall_bound,
                        "expected_recall": expected_recall,
                        "algo": result.algo,
                    }
                self.cache.put_result(
                    request.data,
                    request.k,
                    request.largest,
                    values,
                    indices,
                    quality,
                    meta,
                )
            self._finish(
                Outcome(
                    rid=request.rid,
                    status="served",
                    finish_s=finish_s,
                    arrival_s=request.arrival_s,
                    latency_s=finish_s - request.arrival_s,
                    batch_size=len(alive),
                    algo=result.algo,
                    values=values,
                    indices=indices,
                    exact=result_exact,
                    recall_bound=None if result_exact else result.recall_bound,
                ),
                recall_target=recall_target,
                recall_met=recall_met,
            )

    # -- online adaptation feedback --------------------------------------- #
    def _adapt_feedback(
        self,
        key: GroupKey,
        size: int,
        algo: str,
        duration_s: float,
        t_s: float,
        explored: bool,
    ) -> None:
        """Fold one executed batch's measured time into the learner.

        Updates the per-regime EMA and (through the dispatcher's
        :class:`~repro.perf.adaptive.CorrectionStore`) the windowed
        residual fold, then emits the same ``costmodel.log2_ratio``
        drift histogram the offline sweep pipeline produces — so the
        serve loop and ``repro-topk drift`` read one stream.
        """
        registry = get_metrics()
        if registry is None or self.adaptation is None:
            return
        folded = self.adaptation.observe(
            algo,
            n=key.n,
            k=key.k,
            batch=size,
            measured_s=duration_s,
            spec=self.spec,
            dtype=key.dtype,
        )
        self.stats.adapt_observations += 1
        self._count("serve.adapt", event="observe")
        if folded:
            self.stats.adapt_folds += 1
            self._count("serve.adapt", event="fold")
        if explored:
            self.stats.adapt_explored += 1
            self._count("serve.adapt", event="explore")
        self.telemetry.on_adaptation(
            t_s,
            observations=1,
            folds=1 if folded else 0,
            explored=1 if explored else 0,
        )
        from types import SimpleNamespace

        from ..obs.drift import record_point_drift

        record_point_drift(
            registry,
            SimpleNamespace(
                algo=algo,
                n=key.n,
                k=key.k,
                batch=size,
                time=duration_s,
                status="ok",
                detail="",
            ),
            spec=self.spec,
        )

    # -- request-trace emission ------------------------------------------ #
    def _queued_span(self, request: Request, until_s: float) -> None:
        """The time one request sat in the micro-batcher's queue."""
        self.telemetry.emit(
            "queued",
            cat="serve.queue",
            lane=self.telemetry.request_lane(request.rid),
            ts_s=request.arrival_s,
            dur_s=max(0.0, until_s - request.arrival_s),
        )

    def _batch_spans(
        self, alive, result, batch_id, attempts, start_s, finish_s, duration_s
    ) -> None:
        """Per-request batch/shard/merge spans plus the node-lane view of
        one executed micro-batch (only called with tracing on)."""
        telemetry = self.telemetry
        shard_times = result.meta.get("shard_times_s") or {}
        slowest = max(shard_times.values()) if shard_times else 0.0
        node = telemetry.node_lane("device")
        telemetry.emit(
            "batch",
            cat="serve.batch",
            lane=node,
            ts_s=start_s,
            dur_s=duration_s,
            batch_id=batch_id,
            algo=result.algo,
            size=len(alive),
            attempts=attempts,
        )
        for shard_id, shard_s in sorted(shard_times.items()):
            telemetry.emit(
                "shard",
                cat="serve.shard",
                lane=telemetry.node_lane(f"shard{shard_id}"),
                ts_s=start_s,
                dur_s=shard_s,
                batch_id=batch_id,
                shard=shard_id,
            )
        for request in alive:
            lane = telemetry.request_lane(request.rid)
            self._queued_span(request, start_s)
            telemetry.emit(
                "batch",
                cat="serve.batch",
                lane=lane,
                ts_s=start_s,
                dur_s=duration_s,
                batch_id=batch_id,
                algo=result.algo,
                size=len(alive),
                attempts=attempts,
            )
            if shard_times:
                telemetry.emit(
                    "shards",
                    cat="serve.shard",
                    lane=lane,
                    ts_s=start_s,
                    dur_s=slowest,
                    shards=len(shard_times),
                    lost=len(result.meta.get("lost_shards", ())),
                )
                telemetry.emit(
                    "merge",
                    cat="serve.merge",
                    lane=lane,
                    ts_s=start_s + slowest,
                    dur_s=max(0.0, finish_s - (start_s + slowest)),
                    merge_s=result.meta.get("merge_s"),
                )
            else:
                telemetry.emit(
                    "execute",
                    cat="serve.batch",
                    lane=lane,
                    ts_s=start_s,
                    dur_s=duration_s,
                    algo=result.algo,
                )

    # -- the event loop -------------------------------------------------- #
    def run(self, requests: list[Request]) -> ServeStats:
        """Serve a full virtual-time trace of requests to completion."""
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        i = 0
        while i < len(pending) or self.batcher.pending:
            next_arrival = pending[i].arrival_s if i < len(pending) else None
            flush = self.batcher.next_flush_time()
            if next_arrival is not None and (
                flush is None or next_arrival <= flush[0]
            ):
                request = pending[i]
                i += 1
                self.submit(request)
                key = self.batcher.size_ready()
                if key is not None:
                    self._execute(key, request.arrival_s)
            else:
                deadline, key = flush
                self._execute(key, deadline)
        self.stats.cache = self.cache.stats()
        if self.injector is not None:
            # catch any seam that fired after the last per-batch drain so
            # the windowed fault totals match the injector's
            self._drain_faults(self.stats.makespan_s)
            self.stats.faults = self.injector.fault_counts()
            for kind, count in self.stats.faults.items():
                self._count("serve.faults", amount=count, kind=kind)
        return self.stats
