"""Request and outcome records of the serving layer.

A :class:`Request` is one caller's top-k query with its virtual-time
arrival and deadline; an :class:`Outcome` is what the service reports
back — served with results and latency (full-fidelity or *degraded*, see
docs/faults.md), shed at admission, timed out, or failed after the
execution retries were exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: every status an Outcome can carry.  "served" is full fidelity;
#: "degraded" carries results that satisfy only the reported
#: ``recall_bound`` (a shard was irrecoverably lost); "failed" means
#: execution kept crashing past the retry budget — the terminal verdict
#: the caller can retry against, never a silent drop.
OUTCOMES = ("served", "degraded", "shed", "timeout", "failed")


@dataclass
class Request:
    """One top-k query in flight."""

    #: monotonically increasing request id (submission order)
    rid: int
    #: the query payload, shape (n,)
    data: np.ndarray
    #: results wanted
    k: int
    #: direction flag
    largest: bool
    #: virtual arrival time, seconds
    arrival_s: float
    #: absolute virtual deadline, or None for no deadline
    deadline_s: float | None = None
    #: optional quality SLO as ``(deadline_s, min_recall)`` — a *relative*
    #: latency budget (applied on admission when ``deadline_s`` is unset)
    #: and the minimum recall the caller will accept.  Either half may be
    #: None; ``slo=None`` is a plain exact request.  Requests carrying a
    #: ``min_recall`` are eligible for the approximate tier and are
    #: batched/cached separately from exact traffic (see GroupKey and
    #: ServeCache.result_key).
    slo: tuple | None = None

    @property
    def n(self) -> int:
        return int(self.data.shape[-1])

    @property
    def min_recall(self) -> float | None:
        """The request's recall target, or None for exact-only traffic."""
        if self.slo is None:
            return None
        return self.slo[1]


@dataclass
class Outcome:
    """The service's verdict on one request."""

    rid: int
    #: one of :data:`OUTCOMES`: "served", "degraded" (lossy but bounded —
    #: see ``recall_bound``), "shed" (rejected at admission, queue full),
    #: "timeout" (deadline passed while queued or before the batch
    #: completed) or "failed" (execution retries exhausted)
    status: str
    #: virtual completion time (served), or the time the verdict was made
    finish_s: float
    #: the request's virtual arrival time — lets telemetry attribute an
    #: effective wait to non-served verdicts too (a timeout's
    #: ``finish_s - arrival_s`` is how long the caller actually waited)
    arrival_s: float | None = None
    #: completion - arrival, seconds; None unless served
    latency_s: float | None = None
    #: requests sharing the executed micro-batch (served only)
    batch_size: int = 0
    #: concrete algorithm the batch ran (served only)
    algo: str = ""
    #: whether the result came from the LRU result cache
    cache_hit: bool = False
    #: selected values/indices, best first (served/degraded only)
    values: np.ndarray | None = field(default=None, repr=False)
    indices: np.ndarray | None = field(default=None, repr=False)
    #: high-probability recall floor of a lossy result — attached both by
    #: degraded sharded execution (docs/faults.md) and by the approximate
    #: tier (docs/approximate.md); None for exact full-fidelity outcomes
    recall_bound: float | None = None
    #: whether the results are guaranteed to equal the exact top-k; False
    #: for approximate-tier and degraded results (which also carry
    #: ``recall_bound``)
    exact: bool = True
    #: why a failed outcome failed (exception text), empty otherwise
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the caller got results back (served or degraded)."""
        return self.status in ("served", "degraded")

    def __post_init__(self) -> None:
        if self.status not in OUTCOMES:
            raise ValueError(f"status must be one of {OUTCOMES}, got {self.status!r}")
