"""Request and outcome records of the serving layer.

A :class:`Request` is one caller's top-k query with its virtual-time
arrival and deadline; an :class:`Outcome` is what the service reports
back — served with results and latency, shed at admission, or timed out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: every status an Outcome can carry
OUTCOMES = ("served", "shed", "timeout")


@dataclass
class Request:
    """One top-k query in flight."""

    #: monotonically increasing request id (submission order)
    rid: int
    #: the query payload, shape (n,)
    data: np.ndarray
    #: results wanted
    k: int
    #: direction flag
    largest: bool
    #: virtual arrival time, seconds
    arrival_s: float
    #: absolute virtual deadline, or None for no deadline
    deadline_s: float | None = None

    @property
    def n(self) -> int:
        return int(self.data.shape[-1])


@dataclass
class Outcome:
    """The service's verdict on one request."""

    rid: int
    #: "served", "shed" (rejected at admission, queue full) or "timeout"
    #: (deadline passed while queued or before the batch completed)
    status: str
    #: virtual completion time (served), or the time the verdict was made
    finish_s: float
    #: completion - arrival, seconds; None unless served
    latency_s: float | None = None
    #: requests sharing the executed micro-batch (served only)
    batch_size: int = 0
    #: concrete algorithm the batch ran (served only)
    algo: str = ""
    #: whether the result came from the LRU result cache
    cache_hit: bool = False
    #: selected values/indices, best first (served only)
    values: np.ndarray | None = field(default=None, repr=False)
    indices: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.status not in OUTCOMES:
            raise ValueError(f"status must be one of {OUTCOMES}, got {self.status!r}")
