"""Hierarchical k-way merge of per-shard top-k candidates.

Dr. Top-k (Gaihre et al., SC '21) decomposes a large selection into
per-delegate sub-selections whose candidates are merged hierarchically;
the same tree shape is how a multi-device sharded top-k combines its
per-shard (value, index) candidates.  Each merge level folds pairs of
sorted candidate lists into one, so ``S`` shards take ``ceil(log2 S)``
levels and every level's work is O(k) per pair.

Ordering is exact and deterministic: candidates are compared by their
monotone priority key (:func:`repro.primitives.priority_keys`, the same
encoding every algorithm selects in) with the original index as the tie
breaker, so a merged result over unique values is byte-identical to a
single-shot selection (pinned by tests/test_serve.py).
"""

from __future__ import annotations

import numpy as np

from ..primitives import priority_keys


def _order_candidates(
    values: np.ndarray, indices: np.ndarray, *, largest: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Sort candidate columns by (priority key, index), per row."""
    keys = priority_keys(np.ascontiguousarray(values), largest=largest)
    # lexicographic (key, index): stable-sort by the secondary key first,
    # then stable-sort by the primary — ties in `keys` keep index order
    by_index = np.argsort(indices, axis=1, kind="stable")
    keys = np.take_along_axis(keys, by_index, axis=1)
    values = np.take_along_axis(values, by_index, axis=1)
    indices = np.take_along_axis(indices, by_index, axis=1)
    by_key = np.argsort(keys, axis=1, kind="stable")
    return (
        np.take_along_axis(values, by_key, axis=1),
        np.take_along_axis(indices, by_key, axis=1),
    )


def merge_pair(
    a: tuple[np.ndarray, np.ndarray],
    b: tuple[np.ndarray, np.ndarray],
    k: int,
    *,
    largest: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two (values, indices) candidate sets, keeping the best k.

    Inputs are ``(batch, m)`` arrays (any m); the output is the best
    ``min(k, m_a + m_b)`` columns, best first.
    """
    values = np.concatenate([a[0], b[0]], axis=1)
    indices = np.concatenate([a[1], b[1]], axis=1)
    values, indices = _order_candidates(values, indices, largest=largest)
    keep = min(k, values.shape[1])
    return values[:, :keep], indices[:, :keep]


def hierarchical_merge(
    partials: list[tuple[np.ndarray, np.ndarray]],
    k: int,
    *,
    largest: bool = False,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Tree-reduce per-shard candidates to one global top-k.

    ``partials`` is one ``(values, indices)`` pair per shard, each
    ``(batch, k_s)`` best-first with *global* indices.  Returns
    ``(values, indices, levels)`` where ``levels`` is the merge-tree
    depth (what a coordinator charges to the simulated device).
    """
    if not partials:
        raise ValueError("hierarchical_merge needs at least one partial")
    level = list(partials)
    levels = 0
    if len(level) == 1:
        # single shard: still normalise ordering through the same path
        values, indices = _order_candidates(*level[0], largest=largest)
        return values[:, :k], indices[:, :k], 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(merge_pair(level[i], level[i + 1], k, largest=largest))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        levels += 1
    values, indices = level[0]
    return values[:, :k], indices[:, :k], levels
